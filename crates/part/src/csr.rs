//! Compressed sparse row storage over a dense key range.
//!
//! Every subgraph component is stored as one or two [`Csr`] indexes
//! (by source for push, by destination for pull). Keys are dense ids in
//! a half-open range (hub ids, or a rank's owned vertex interval);
//! targets are whatever the component's other endpoint space is.
//!
//! Construction is a counting sort by key followed by an in-place
//! PARADIS radix sort of each adjacency list's target ids (§5: "local
//! sort implemented with PARADIS") — the preprocessing must stay
//! in-place because on the real machine the edge list nearly fills
//! main memory.

/// CSR adjacency over keys `key_base .. key_base + num_keys`.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    key_base: u64,
    offsets: Vec<u64>,
    targets: Vec<u64>,
}

impl Csr {
    /// Build from `(key, target)` pairs. Keys outside the range panic.
    /// When `dedup` is set, duplicate `(key, target)` pairs collapse to
    /// one (the input edge list is a multigraph; adjacency is simple).
    pub fn from_pairs(key_base: u64, num_keys: u64, pairs: Vec<(u64, u64)>, dedup: bool) -> Csr {
        // Counting sort by key...
        let nk = num_keys as usize;
        let mut counts = vec![0u64; nk + 1];
        for &(k, _) in &pairs {
            assert!(
                k >= key_base && k < key_base + num_keys,
                "key {k} outside [{key_base}, {})",
                key_base + num_keys
            );
            counts[(k - key_base) as usize + 1] += 1;
        }
        for i in 0..nk {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut targets = vec![0u64; pairs.len()];
        let mut cursor = offsets.clone();
        for (k, t) in pairs {
            let idx = (k - key_base) as usize;
            targets[cursor[idx] as usize] = t;
            cursor[idx] += 1;
        }
        // ...then in-place PARADIS radix sort per adjacency list.
        let mut csr = Csr {
            key_base,
            offsets,
            targets,
        };
        for k in 0..nk {
            let lo = csr.offsets[k] as usize;
            let hi = csr.offsets[k + 1] as usize;
            sunbfs_sort::radix_sort_in_place(&mut csr.targets[lo..hi], &|t: &u64| *t, 1, 8);
        }
        if dedup {
            csr.dedup_targets();
        }
        csr
    }

    fn dedup_targets(&mut self) {
        let nk = self.num_keys();
        let mut new_targets = Vec::with_capacity(self.targets.len());
        let mut new_offsets = vec![0u64; nk + 1];
        for k in 0..nk {
            let lo = self.offsets[k] as usize;
            let hi = self.offsets[k + 1] as usize;
            let mut prev: Option<u64> = None;
            for &t in &self.targets[lo..hi] {
                if prev != Some(t) {
                    new_targets.push(t);
                    prev = Some(t);
                }
            }
            new_offsets[k + 1] = new_targets.len() as u64;
        }
        self.offsets = new_offsets;
        self.targets = new_targets;
    }

    /// Rebuild a CSR from its raw arrays (the persistent-store decode
    /// path). The arrays must already satisfy the CSR invariants —
    /// `offsets` non-empty, starting at 0, non-decreasing, and ending
    /// at `targets.len()`; callers deserializing untrusted bytes must
    /// validate *before* constructing (the store does), because a
    /// violated invariant here is a panic, not a typed error.
    pub fn from_raw(key_base: u64, offsets: Vec<u64>, targets: Vec<u64>) -> Csr {
        assert!(
            !offsets.is_empty(),
            "offsets must hold num_keys + 1 entries"
        );
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "last offset must equal the target count"
        );
        Csr {
            key_base,
            offsets,
            targets,
        }
    }

    /// The raw offset array (`num_keys + 1` entries, first 0, last
    /// `num_edges`). Exposed for serialization.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw target array, concatenated per-key adjacency lists.
    /// Exposed for serialization.
    #[inline]
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// First key of the range.
    #[inline]
    pub fn key_base(&self) -> u64 {
        self.key_base
    }

    /// Number of keys in the range.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Neighbors of `key` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, key: u64) -> &[u64] {
        debug_assert!(key >= self.key_base);
        let idx = (key - self.key_base) as usize;
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `key` in this component.
    #[inline]
    pub fn degree(&self, key: u64) -> u64 {
        let idx = (key - self.key_base) as usize;
        self.offsets[idx + 1] - self.offsets[idx]
    }

    /// Iterate `(key, target)` over all stored edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.num_keys()).flat_map(move |k| {
            let key = self.key_base + k as u64;
            self.neighbors(key).iter().map(move |&t| (key, t))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries() {
        let pairs = vec![(10, 3), (12, 1), (10, 2), (12, 5), (10, 2)];
        let csr = Csr::from_pairs(10, 4, pairs, false);
        assert_eq!(csr.num_keys(), 4);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.neighbors(10), &[2, 2, 3]);
        assert_eq!(csr.neighbors(11), &[] as &[u64]);
        assert_eq!(csr.neighbors(12), &[1, 5]);
        assert_eq!(csr.degree(10), 3);
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let pairs = vec![(0, 7), (0, 7), (0, 7), (1, 1), (1, 2), (1, 1)];
        let csr = Csr::from_pairs(0, 2, pairs, true);
        assert_eq!(csr.neighbors(0), &[7]);
        assert_eq!(csr.neighbors(1), &[1, 2]);
        assert_eq!(csr.num_edges(), 3);
    }

    #[test]
    fn empty_component() {
        let csr = Csr::from_pairs(5, 3, vec![], true);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.neighbors(6), &[] as &[u64]);
    }

    #[test]
    fn iter_edges_roundtrips() {
        let pairs = vec![(2, 9), (0, 4), (2, 1)];
        let csr = Csr::from_pairs(0, 3, pairs.clone(), false);
        let mut got: Vec<(u64, u64)> = csr.iter_edges().collect();
        let mut want = pairs;
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic]
    fn out_of_range_key_panics() {
        Csr::from_pairs(0, 2, vec![(2, 0)], false);
    }
}
