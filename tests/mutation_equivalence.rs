//! Mutation equivalence: a session that has accepted live edge-insert
//! batches must answer BFS queries exactly as a graph freshly built
//! from the union edge list would — before compaction (results served
//! off base CSRs + delta overlay), after a promotion-forced compaction,
//! and across mesh shapes and worker counts. Compaction itself must be
//! byte-identical to a fresh `build_1p5d` pass over the same
//! deduplicated canonical union, pinned through `encode_store`.

use std::collections::BTreeSet;

use sunbfs::common::{pool, Edge};
use sunbfs::core::validate_parents;
use sunbfs::mutate::{canonical_edge_set, generate_batch};
use sunbfs::net::{Cluster, FaultPlan};
use sunbfs::part::build_1p5d;
use sunbfs::serve::{GraphSession, SessionConfig};
use sunbfs::store::encode_store;

/// The session's resident edge multiset as one deduplicated canonical
/// list: base CSR edges plus whatever still sits in the delta log.
/// Valid in every overlay state — after a compaction the log is empty
/// and the base already holds the union.
fn union_edges(session: &GraphSession) -> Vec<Edge> {
    let mut set = canonical_edge_set(session.partitions());
    set.extend(session.delta_log().iter().map(|e| (e.u, e.v)));
    set.into_iter().map(|(u, v)| Edge::new(u, v)).collect()
}

/// Sequential reference BFS depths over an explicit edge list.
fn sequential_depths(n: u64, edges: &[Edge], root: u64) -> Vec<u64> {
    let mut adj = vec![Vec::new(); n as usize];
    for e in edges.iter().filter(|e| !e.is_self_loop()) {
        adj[e.u as usize].push(e.v);
        adj[e.v as usize].push(e.u);
    }
    let mut depths = vec![u64::MAX; n as usize];
    depths[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if depths[w as usize] == u64::MAX {
                depths[w as usize] = depths[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    depths
}

/// Depth identity and full Graph 500 validation of the session's
/// union-view BFS against the sequential reference, for several roots.
fn assert_session_matches_reference(session: &GraphSession, label: &str) {
    let n = session.num_vertices();
    let edges = union_edges(session);
    for root in [0, n / 2, n - 1] {
        let (parents, depths) = session.union_bfs(root);
        assert_eq!(
            depths,
            sequential_depths(n, &edges, root),
            "{label}: depths from root {root} diverge from the fresh union reference"
        );
        validate_parents(n, &edges, root, &parents)
            .unwrap_or_else(|e| panic!("{label}: Graph 500 validation from {root}: {e:?}"));
    }
}

/// A fan of inserts onto the lightest vertex that is guaranteed to push
/// it across `h_threshold`, whatever its starting degree below it was.
fn promotion_fan(session: &GraphSession) -> (u64, Vec<Edge>) {
    let n = session.num_vertices();
    let mut degree = vec![0u64; n as usize];
    for (u, v) in canonical_edge_set(session.partitions()) {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let hub = (0..n)
        .find(|&v| degree[v as usize] >= 1 && degree[v as usize] < 32)
        .expect("some light vertex below half the H threshold");
    let fan = (0..80)
        .map(|i| Edge::new(hub, (hub + 1 + i * 3) % n))
        .filter(|e| !e.is_self_loop())
        .collect();
    (hub, fan)
}

#[test]
fn mutated_bfs_is_depth_identical_across_meshes_and_workers() {
    // 2x2 and 2x3 meshes (near_square(4) / near_square(6)), each under
    // a serial and a parallel worker pool: the update path must be
    // worker-count invariant like the build it reuses.
    for ranks in [4usize, 6] {
        for workers in [1usize, 4] {
            pool::set_workers(workers);
            let label = format!("ranks {ranks} workers {workers}");
            let cfg = SessionConfig::small(10, ranks);
            let mut session = GraphSession::load(cfg, FaultPlan::none()).expect("session builds");
            let n = session.num_vertices();

            // Round 1: a seeded random batch, normally staying in the
            // overlay (pre-compaction serving path).
            let batch = generate_batch(7, 0, 48, n);
            let epoch = session.apply_updates(&batch).expect("commit");
            assert_eq!(epoch, 1, "{label}: first commit is epoch 1");
            assert_session_matches_reference(&session, &format!("{label} pre-compaction"));

            // Round 2: a promotion-forcing fan — the commit must
            // compact immediately and still stay depth-identical.
            let (hub, fan) = promotion_fan(&session);
            let compactions_before = session.compactions();
            session.apply_updates(&fan).expect("promoting commit");
            assert!(
                session.compactions() > compactions_before,
                "{label}: the fan onto {hub} must promote and force a compaction"
            );
            assert!(
                !session.has_delta(),
                "{label}: compaction drains the overlay"
            );
            assert_session_matches_reference(&session, &format!("{label} post-compaction"));
            assert_eq!(session.epoch(), 2, "{label}: epochs survive compaction");
        }
    }
    pool::set_workers(0); // restore the default (auto) pool
}

#[test]
fn compaction_is_byte_identical_to_a_fresh_build_from_the_union() {
    pool::set_workers(0);
    let cfg = SessionConfig::small(9, 4);
    let mut session = GraphSession::load(cfg, FaultPlan::none()).expect("session builds");
    let n = session.num_vertices();
    let base: BTreeSet<(u64, u64)> = canonical_edge_set(session.partitions());

    let batch = generate_batch(11, 0, 40, n);
    session.apply_updates(&batch).expect("commit");
    if session.has_delta() {
        session.compact().expect("explicit compaction");
    }

    // The same deduplicated canonical union, in the same sorted order
    // compaction derives it, through the same rank-strided chunking.
    let mut expected = base;
    expected.extend(batch.iter().filter(|e| !e.is_self_loop()).map(|e| {
        let c = e.canonical();
        (c.u, c.v)
    }));
    let union: Vec<Edge> = expected.into_iter().map(|(u, v)| Edge::new(u, v)).collect();
    let p = cfg.mesh.num_ranks();
    let cluster = Cluster::new(cfg.mesh, cfg.machine);
    let fresh = cluster.run(|ctx| {
        let chunk: Vec<Edge> = union
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        build_1p5d(ctx, n, &chunk, cfg.thresholds)
    });

    let header = cfg.store_header();
    assert_eq!(
        encode_store(&header, session.partitions()),
        encode_store(&header, &fresh),
        "compacted partitions must serialize byte-identical to a fresh union build"
    );
}
