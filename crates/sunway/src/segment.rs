//! CG-aware core-subgraph segmenting, §4.3.
//!
//! The hot kernel of the paper is the bottom-up (pull) sweep of the
//! EH2EH core subgraph: random reads of the column E∪H activeness bit
//! vector. That vector (≤ 12.5 MB per column) does not fit one CPE's
//! 256 KB LDM, so the paper segments the subgraph by destination into
//! six pieces — one per core group — and distributes each segment's bit
//! vector over the 64 CPE LDMs of its CG in 1024-byte lines,
//! round-robin by line (Figure 7):
//!
//! ```text
//! bit offset = [ line number | CPE number (6 bits) | offset in line (13 bits) ]
//! ```
//!
//! A CPE then reads any bit of the segment with one RMA `get` from a
//! peer LDM (≈ 9× cheaper than the GLD main-memory access it replaces).
//!
//! [`SegmentedBitvec`] implements the mapping functionally (bits are
//! stored per-CPE exactly as the mapping dictates) and exposes the
//! access-cost classification the BFS engine charges.

use sunbfs_common::{Bitmap, MachineConfig};

/// Bits per LDM line (1024 bytes).
pub const BITS_PER_LINE: u64 = 1024 * 8;

/// Where a bit of the segment lives on the core group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitLocation {
    /// Owning CPE (0..cpes).
    pub cpe: usize,
    /// Line index within that CPE's LDM slice.
    pub local_line: usize,
    /// Bit offset inside the line.
    pub offset_in_line: u64,
}

/// A bit vector distributed over the LDMs of one core group.
#[derive(Clone, Debug)]
pub struct SegmentedBitvec {
    num_bits: u64,
    cpes: usize,
    /// Per-CPE LDM content: `lines_per_cpe * BITS_PER_LINE / 64` words each.
    ldm: Vec<Vec<u64>>,
}

impl SegmentedBitvec {
    /// Distribute `num_bits` over `cpes` LDMs.
    pub fn new(num_bits: u64, cpes: usize) -> Self {
        assert!(cpes > 0);
        let lines = num_bits.div_ceil(BITS_PER_LINE);
        let lines_per_cpe = lines.div_ceil(cpes as u64).max(1) as usize;
        let words_per_cpe = lines_per_cpe * (BITS_PER_LINE as usize / 64);
        SegmentedBitvec {
            num_bits,
            cpes,
            ldm: vec![vec![0u64; words_per_cpe]; cpes],
        }
    }

    /// Build from a plain bitmap (the column activeness vector).
    pub fn from_bitmap(bm: &Bitmap, cpes: usize) -> Self {
        let mut s = SegmentedBitvec::new(bm.len(), cpes);
        for i in bm.iter_ones() {
            s.set(i);
        }
        s
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> u64 {
        self.num_bits
    }

    /// True when capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_bits == 0
    }

    /// Number of CPEs the vector is spread over.
    #[inline]
    pub fn cpes(&self) -> usize {
        self.cpes
    }

    /// LDM bytes each CPE dedicates to this vector.
    pub fn ldm_bytes_per_cpe(&self) -> usize {
        self.ldm[0].len() * 8
    }

    /// Whether a segment of `num_bits` fits the per-CPE LDM budget.
    pub fn fits_budget(num_bits: u64, cpes: usize, budget_bytes: usize) -> bool {
        let lines = num_bits.div_ceil(BITS_PER_LINE);
        let lines_per_cpe = lines.div_ceil(cpes as u64).max(1);
        (lines_per_cpe * 1024) as usize <= budget_bytes
    }

    /// The Figure 7 offset mapping: line number round-robins over CPEs.
    #[inline]
    pub fn location_of(&self, bit: u64) -> BitLocation {
        debug_assert!(
            bit < self.num_bits,
            "bit {bit} out of range {}",
            self.num_bits
        );
        let line = bit / BITS_PER_LINE;
        BitLocation {
            cpe: (line % self.cpes as u64) as usize,
            local_line: (line / self.cpes as u64) as usize,
            offset_in_line: bit % BITS_PER_LINE,
        }
    }

    /// Set a bit (host-side construction path).
    pub fn set(&mut self, bit: u64) {
        let loc = self.location_of(bit);
        let word =
            loc.local_line * (BITS_PER_LINE as usize / 64) + (loc.offset_in_line / 64) as usize;
        self.ldm[loc.cpe][word] |= 1u64 << (loc.offset_in_line % 64);
    }

    /// Read a bit as CPE `from_cpe` would: returns the value and whether
    /// the read crossed to another CPE's LDM (an RMA get) or stayed
    /// local.
    #[inline]
    pub fn get_from(&self, from_cpe: usize, bit: u64) -> (bool, bool) {
        let loc = self.location_of(bit);
        let word =
            loc.local_line * (BITS_PER_LINE as usize / 64) + (loc.offset_in_line / 64) as usize;
        let v = (self.ldm[loc.cpe][word] >> (loc.offset_in_line % 64)) & 1 == 1;
        (v, loc.cpe != from_cpe)
    }

    /// Plain read (cost-agnostic).
    #[inline]
    pub fn get(&self, bit: u64) -> bool {
        self.get_from(0, bit).0
    }

    /// Expected cost in seconds of one random probe from a uniformly
    /// chosen CPE: mostly an RMA get, occasionally LDM-local.
    pub fn expected_probe_cost(&self, machine: &MachineConfig) -> f64 {
        let remote_fraction = 1.0 - 1.0 / self.cpes as f64;
        // Local LDM access is a couple of cycles; fold it into the
        // scalar-work constant rather than double-charging here.
        remote_fraction * machine.rma_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::SplitMix64;

    #[test]
    fn mapping_matches_figure7_fields() {
        let s = SegmentedBitvec::new(64 * BITS_PER_LINE * 3, 64);
        // Bit 0 → line 0 → CPE 0.
        assert_eq!(
            s.location_of(0),
            BitLocation {
                cpe: 0,
                local_line: 0,
                offset_in_line: 0
            }
        );
        // Last bit of line 0 stays on CPE 0.
        let l = s.location_of(BITS_PER_LINE - 1);
        assert_eq!(
            (l.cpe, l.local_line, l.offset_in_line),
            (0, 0, BITS_PER_LINE - 1)
        );
        // First bit of line 1 hops to CPE 1.
        let l = s.location_of(BITS_PER_LINE);
        assert_eq!((l.cpe, l.local_line, l.offset_in_line), (1, 0, 0));
        // Line 64 wraps back to CPE 0, local line 1.
        let l = s.location_of(64 * BITS_PER_LINE);
        assert_eq!((l.cpe, l.local_line, l.offset_in_line), (0, 1, 0));
    }

    #[test]
    fn set_get_roundtrip_random_bits() {
        let n = 1_000_000u64;
        let mut s = SegmentedBitvec::new(n, 64);
        let mut rng = SplitMix64::new(9);
        let bits: Vec<u64> = (0..1000).map(|_| rng.next_below(n)).collect();
        for &b in &bits {
            s.set(b);
        }
        for &b in &bits {
            assert!(s.get(b), "bit {b} lost in the LDM mapping");
        }
        // Bits we never set stay clear.
        let set: std::collections::HashSet<u64> = bits.iter().copied().collect();
        for _ in 0..1000 {
            let b = rng.next_below(n);
            if !set.contains(&b) {
                assert!(!s.get(b));
            }
        }
    }

    #[test]
    fn from_bitmap_preserves_contents() {
        let mut bm = Bitmap::new(100_000);
        for i in (0..100_000).step_by(37) {
            bm.set(i);
        }
        let s = SegmentedBitvec::from_bitmap(&bm, 64);
        for i in 0..100_000 {
            assert_eq!(s.get(i), bm.get(i), "mismatch at bit {i}");
        }
    }

    #[test]
    fn remote_reads_are_flagged() {
        let s = SegmentedBitvec::new(64 * BITS_PER_LINE, 64);
        // Bit in line 5 belongs to CPE 5.
        let bit = 5 * BITS_PER_LINE + 17;
        assert!(!s.get_from(5, bit).1, "owner read must be local");
        assert!(s.get_from(4, bit).1, "peer read must be RMA");
    }

    #[test]
    fn ldm_budget_check_matches_paper_sizes() {
        // §4.3: a ~2 MB per-CG segment over 64 CPEs → 32 KB per CPE,
        // comfortably inside 256 KB LDM.
        let bits_2mb = 2 * 1024 * 1024 * 8u64;
        assert!(SegmentedBitvec::fits_budget(bits_2mb, 64, 256 * 1024));
        let s = SegmentedBitvec::new(bits_2mb, 64);
        assert_eq!(s.ldm_bytes_per_cpe(), 32 * 1024);
        // A 12.5 MB undivided column vector does NOT fit a 256 KB LDM
        // budget on one CPE — the reason segmenting exists.
        assert!(!SegmentedBitvec::fits_budget(100_000_000, 1, 256 * 1024));
    }

    #[test]
    fn probe_cost_is_mostly_rma() {
        let m = MachineConfig::new_sunway();
        let s = SegmentedBitvec::new(1 << 20, 64);
        let c = s.expected_probe_cost(&m);
        assert!(c > 0.9 * m.rma_latency && c < m.rma_latency);
    }
}
