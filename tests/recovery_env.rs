//! End-to-end checkpoint/resume through the driver: a rank killed at a
//! known iteration boundary costs one retry that resumes from the
//! checkpoint instead of re-running the completed iterations.
//!
//! Kept as a single-test file: every `tests/*.rs` file is its own
//! process, so mutating the environment here cannot race the other
//! integration suites.

use sunbfs::driver::{run_benchmark, RunConfig};

#[test]
fn panic_at_an_iteration_boundary_resumes_and_salvages_completed_iterations() {
    let mut cfg = RunConfig::small_test(9, 4);
    cfg.num_roots = 1;
    cfg.max_root_retries = 2;

    // Fault-free reference run: learn the iteration boundaries and the
    // ground-truth traversal statistics.
    std::env::remove_var("SUNBFS_FAULT_PLAN");
    let clean = run_benchmark(&cfg).expect("clean run");
    assert!(clean.validated);
    let iters = &clean.runs[0].iterations;
    assert!(
        iters.len() >= 3,
        "need a multi-iteration traversal, got {}",
        iters.len()
    );
    // Kill rank 2 just after iteration k completed (k = all but the
    // last two, so the retry still has work left to do).
    let k = iters.len() - 2;
    let boundary = iters[k - 1].end_op;

    std::env::set_var("SUNBFS_FAULT_PLAN", format!("panic@2:{boundary}"));
    let report = run_benchmark(&cfg).expect("fault is absorbed by resume");
    std::env::remove_var("SUNBFS_FAULT_PLAN");

    assert!(report.validated, "resumed run must still validate");
    assert!(!report.faults.degraded());
    assert_eq!(report.faults.total_retries, 1);
    let outcome = &report.faults.outcomes[0];
    assert_eq!(outcome.attempts, 2);
    assert_eq!(
        outcome.iterations_salvaged, k as u32,
        "the retry must inherit exactly the {k} checkpointed iterations"
    );
    assert_eq!(report.recovery.iterations_salvaged, k as u64);
    assert!(
        report.recovery.checkpoints_taken > 0,
        "both attempts checkpoint every completed iteration"
    );

    // The resumed traversal is the same traversal: identical coverage.
    assert_eq!(
        report.runs[0].traversed_edges,
        clean.runs[0].traversed_edges
    );
    assert_eq!(
        report.runs[0].visited_vertices,
        clean.runs[0].visited_vertices
    );

    // And the salvage is visible in the JSON artifact.
    let js = report.to_json().render();
    assert!(
        js.contains(&format!("\"iterations_salvaged\":{k}")),
        "missing salvage count in {js}"
    );
    assert!(js.contains("\"checkpoints_taken\":"));
}
