//! Delta-overlay correctness on small deterministic graphs: routed
//! inserts land in the right components, the union adjacency sees
//! exactly base ∪ delta, incremental repair is depth-identical to a
//! full recompute, and crossing a degree threshold is reported as a
//! promotion.

use std::collections::BTreeSet;

use sunbfs_common::{Edge, MachineConfig, SplitMix64};
use sunbfs_mutate::{
    canonical_edge_set, repair_in_place, route_update_batch, DeltaPartition, UnionAdjacency,
};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, RankPartition, Thresholds};

fn skewed_edges(n: u64, m: usize, seed: u64) -> Vec<Edge> {
    let mut rng = SplitMix64::new(seed);
    (0..m)
        .map(|_| {
            let u = match rng.next_below(10) {
                0..=3 => 0,
                4..=6 => 1 + rng.next_below(4),
                _ => rng.next_below(n),
            };
            Edge::new(u, rng.next_below(n))
        })
        .collect()
}

fn build(rows: usize, cols: usize, n: u64, edges: &[Edge], th: Thresholds) -> Vec<RankPartition> {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        build_1p5d(ctx, n, &chunk, th)
    })
}

/// Route `batch` over a fresh cluster of the same mesh and merge into
/// per-rank overlays, returning the overlays and any promotions.
fn route(
    rows: usize,
    cols: usize,
    parts: &[RankPartition],
    th: Thresholds,
    batch: &[Edge],
) -> (Vec<DeltaPartition>, Vec<u64>) {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let mut deltas: Vec<DeltaPartition> = (0..parts.len()).map(DeltaPartition::new).collect();
    let updates = {
        let deltas = &deltas;
        cluster
            .run(|ctx| route_update_batch(ctx, &parts[ctx.rank()], &deltas[ctx.rank()], th, batch))
    };
    let mut promoted = Vec::new();
    for upd in &updates {
        promoted.extend_from_slice(&upd.promoted);
        deltas[upd.rank].merge(upd);
    }
    (deltas, promoted)
}

fn sequential_depths(n: u64, edges: &[Edge], root: u64) -> Vec<u64> {
    let mut adj = vec![Vec::new(); n as usize];
    for e in edges.iter().filter(|e| !e.is_self_loop()) {
        adj[e.u as usize].push(e.v);
        adj[e.v as usize].push(e.u);
    }
    let mut depths = vec![u64::MAX; n as usize];
    depths[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if depths[w as usize] == u64::MAX {
                depths[w as usize] = depths[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    depths
}

#[test]
fn union_adjacency_sees_exactly_base_plus_delta() {
    let n = 256;
    let th = Thresholds::new(100, 20);
    let base = skewed_edges(n, 1500, 1);
    let parts = build(2, 2, n, &base, th);
    // Inserts spanning every component pairing: hub-hub, hub-light,
    // light-light, plus a self loop that must be ignored.
    let batch = vec![
        Edge::new(0, 1),
        Edge::new(0, 200),
        Edge::new(1, 201),
        Edge::new(202, 203),
        Edge::new(204, 204),
        Edge::new(205, 0),
    ];
    let (deltas, _) = route(2, 2, &parts, th, &batch);
    let adj = UnionAdjacency::new(&parts, &deltas);

    let mut union_edges: Vec<Edge> = base.clone();
    union_edges.extend_from_slice(&batch);
    for root in [0, 200, 203, 77] {
        let (_, depths) = adj.full_bfs(root);
        assert_eq!(
            depths,
            sequential_depths(n, &union_edges, root),
            "union BFS from {root} diverges from the sequential reference"
        );
    }
}

#[test]
fn repair_is_depth_identical_to_full_recompute() {
    let n = 512;
    let th = Thresholds::new(100, 20);
    let base = skewed_edges(n, 1200, 3);
    let parts = build(2, 3, n, &base, th);
    let mut rng = SplitMix64::new(99);
    let batch: Vec<Edge> = (0..64)
        .map(|_| Edge::new(rng.next_below(n), rng.next_below(n)))
        .collect();
    let (deltas, _) = route(2, 3, &parts, th, &batch);
    let adj = UnionAdjacency::new(&parts, &deltas);
    let base_adj = UnionAdjacency::base(&parts);

    for root in [0, 5, 300, 499] {
        let (mut parents, mut depths) = base_adj.full_bfs(root);
        let stats = repair_in_place(&adj, &batch, &mut parents, &mut depths);
        let (_, fresh) = adj.full_bfs(root);
        assert_eq!(depths, fresh, "repair from {root} diverges from recompute");
        // Repaired parents must still form a valid BFS tree: every
        // reached vertex's parent sits exactly one level shallower.
        for v in 0..n as usize {
            if depths[v] != u64::MAX && v as u64 != root {
                let p = parents[v] as usize;
                assert_eq!(depths[p] + 1, depths[v], "broken tree edge at {v}");
            }
        }
        assert!(stats.improved >= stats.seeds);
    }
}

#[test]
fn repair_of_an_irrelevant_insert_touches_nothing() {
    let n = 128;
    let th = Thresholds::new(60, 12);
    let base = skewed_edges(n, 800, 5);
    let parts = build(1, 2, n, &base, th);
    // An edge between two vertices already adjacent: no depth improves.
    let already = base
        .iter()
        .find(|e| !e.is_self_loop())
        .copied()
        .expect("some edge");
    let (deltas, _) = route(1, 2, &parts, th, &[already]);
    let adj = UnionAdjacency::new(&parts, &deltas);
    let (mut parents, mut depths) = UnionAdjacency::base(&parts).full_bfs(0);
    let before = depths.clone();
    let stats = repair_in_place(&adj, &[already], &mut parents, &mut depths);
    assert_eq!(stats.seeds, 0);
    assert_eq!(stats.improved, 0);
    assert_eq!(depths, before);
}

#[test]
fn crossing_a_threshold_is_reported_as_a_promotion() {
    let n = 64;
    let th = Thresholds::new(16, 8);
    // A near-regular graph: vertex 7 one edge short of the H threshold.
    let mut base = Vec::new();
    for i in 0..7u64 {
        base.push(Edge::new(7, 32 + i));
    }
    for i in 0..40u64 {
        base.push(Edge::new(8 + (i % 20), 40 + (i % 20)));
    }
    let parts = build(2, 2, n, &base, th);
    assert!(
        parts[0].directory.hub_id(7).is_none(),
        "vertex 7 must start light for the promotion to be observable"
    );
    let (_, promoted) = route(2, 2, &parts, th, &[Edge::new(7, 60)]);
    assert_eq!(promoted, vec![7], "vertex 7 crossed h_threshold");
    // A batch that does not cross any boundary reports none.
    let (_, quiet) = route(2, 2, &parts, th, &[Edge::new(50, 51)]);
    assert!(quiet.is_empty());
}

#[test]
fn canonical_edge_set_matches_the_deduplicated_input() {
    let n = 256;
    let edges = skewed_edges(n, 2000, 8);
    let parts = build(2, 2, n, &edges, Thresholds::new(100, 20));
    let expect: BTreeSet<(u64, u64)> = edges
        .iter()
        .filter(|e| !e.is_self_loop())
        .map(|e| {
            let c = e.canonical();
            (c.u, c.v)
        })
        .collect();
    assert_eq!(canonical_edge_set(&parts), expect);
}
