//! Closed-duration open-loop load generator for the TCP server, plus
//! the chaos soak harness built on top of it.
//!
//! Opens N connections and offers a configured total queries/sec for a
//! configured duration, then settles (waits for every outstanding
//! reply), optionally triggers a graceful server shutdown, and folds
//! what it saw into a [`LoadgenReport`] — accepted/rejected counts,
//! rejection classes, backoff-hint coverage, and p50/p99/p999
//! end-to-end latency. The report renders as the `serve_load` section
//! of the schema-v9 metrics JSON (`docs/METRICS.md`), which is what
//! the committed saturation artifact and the CI sustained-load smoke
//! regression-gate.
//!
//! Clients honor the server's `retry_after_ticks` backoff hints: a
//! rejection that carries one is re-offered after the hinted wait (up
//! to [`LoadgenConfig::retry_max`] attempts) instead of being counted
//! terminal on first sight, which is how a well-behaved client rides
//! out a quarantined service.
//!
//! Accounting invariants the overload tests pin:
//!
//! * every offered query is acknowledged exactly once (`unacked == 0`),
//! * every accepted query gets exactly one result
//!   (`lost_replies == 0`, `duplicate_replies == 0`),
//! * a reply line is never malformed (`protocol_errors == 0`).
//!
//! [`run_chaos_soak`] wraps the whole stack end to end: it builds a
//! resident session with an **armed** fault plan, wires a seeded
//! [`ChaosConfig`] into the service so rank panics, stragglers, and
//! payload corruption fire against live traffic, polls the `health`
//! request from a side connection while the load runs, drives recovery
//! to `healthy` after the chaos schedule exhausts, and folds
//! everything into a [`ChaosSoakReport`] (the `serve_chaos` section of
//! the schema-v9 metrics JSON) with availability and recovery-time
//! gates.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sunbfs_common::{JsonValue, SplitMix64, ToJson};
use sunbfs_net::FaultPlan;

use crate::net::{serve, NetConfig, NetSummary};
use crate::report::{HealthTransition, ServeReport};
use crate::service::{BfsService, ChaosConfig, ServeConfig};
use crate::session::{GraphSession, SessionConfig};

/// Knobs for one load run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4700`.
    pub addr: String,
    /// Connections to open; offered load is split evenly across them.
    pub connections: usize,
    /// Total offered queries/sec across all connections.
    pub qps: u64,
    /// How long to offer load.
    pub duration: Duration,
    /// Roots are drawn uniformly from `[0, root_max)`.
    pub root_max: u64,
    /// Deterministic root sequence seed.
    pub seed: u64,
    /// Send `{"cmd":"shutdown"}` after settling, exercising the
    /// server's graceful drain.
    pub shutdown_at_end: bool,
    /// How long to wait for outstanding replies after the offered-load
    /// window closes.
    pub settle_timeout: Duration,
    /// Attach this deadline budget to every offered query.
    pub deadline_ticks: Option<u32>,
    /// Times a rejected query carrying a `retry_after_ticks` hint is
    /// re-offered before the rejection counts as terminal (0 = never
    /// retry, the pre-chaos behavior).
    pub retry_max: u32,
    /// Wall-clock estimate of one server tick, used to turn a
    /// `retry_after_ticks` hint into a backoff sleep (the server ticks
    /// every `NetConfig::tick_interval` when idle).
    pub tick_hint: Duration,
    /// Extra wall time after the offered-load window in which pending
    /// retries are still drained before the run settles.
    pub retry_grace: Duration,
    /// Interleave one `{"cmd":"update",...}` edge-insert batch into the
    /// paced query stream every N queries per connection (0 = never,
    /// the read-only behavior). Update replies use their own distinct
    /// shapes (`committed` / `update_rejected`), so interleaving them
    /// never perturbs the query-offer accounting invariants.
    pub update_every: u64,
    /// Edges per interleaved update batch (endpoints drawn uniformly
    /// from `[0, root_max)` off the same seeded stream as the roots).
    pub update_batch: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:4700".into(),
            connections: 4,
            qps: 200,
            duration: Duration::from_secs(3),
            root_max: 1 << 10,
            seed: 42,
            shutdown_at_end: true,
            settle_timeout: Duration::from_secs(30),
            deadline_ticks: None,
            retry_max: 0,
            tick_hint: Duration::from_millis(10),
            retry_grace: Duration::from_secs(2),
            update_every: 0,
            update_batch: 4,
        }
    }
}

/// End-to-end latency distribution (accepted → result), milliseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    /// Samples (== queries that went accepted → result).
    pub count: u64,
    /// Fastest sample.
    pub min_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let n = samples.len();
        let pct = |q: f64| {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        LatencySummary {
            count: n as u64,
            min_ms: samples[0],
            mean_ms: samples.iter().sum::<f64>() / n as f64,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            p999_ms: pct(0.999),
            max_ms: samples[n - 1],
        }
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("count", self.count)
            .field("min_ms", self.min_ms)
            .field("mean_ms", self.mean_ms)
            .field("p50_ms", self.p50_ms)
            .field("p99_ms", self.p99_ms)
            .field("p999_ms", self.p999_ms)
            .field("max_ms", self.max_ms)
            .build()
    }
}

/// What one load run saw, end to end. Renders as the `serve_load`
/// JSON section.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Connections opened.
    pub connections: u64,
    /// Configured total offered queries/sec.
    pub target_qps: u64,
    /// Configured offered-load window, seconds.
    pub duration_s: f64,
    /// Observed wall time of the whole run (offer + settle), seconds.
    pub elapsed_s: f64,
    /// Query lines actually written.
    pub offered: u64,
    /// `offered / duration_s`.
    pub offered_qps: f64,
    /// Queries the server admitted.
    pub accepted: u64,
    /// `accepted / duration_s`.
    pub accepted_qps: f64,
    /// Rejections with reason `queue_full`.
    pub rejected_full: u64,
    /// Rejections with reason `client_backlog`.
    pub rejected_backlog: u64,
    /// Rejections with reason `shutting_down`.
    pub rejected_shutdown: u64,
    /// Rejections with reason `service_degraded` (the health breaker).
    pub rejected_degraded: u64,
    /// Rejections with any other reason (e.g. `invalid_root`).
    pub rejected_other: u64,
    /// Rejections that carried a non-null `retry_after_ticks` hint.
    pub rejects_with_hint: u64,
    /// Every rejection reply seen, terminal or retried (the terminal
    /// `rejected_*` classes exclude retried ones when retry is on).
    pub rejections_seen: u64,
    /// Rejected offers re-sent after honoring their backoff hint.
    pub retried: u64,
    /// Retried offers the server eventually accepted.
    pub retry_successes: u64,
    /// Retries still waiting out their backoff when the run ended
    /// (terminal: they were never re-offered).
    pub retries_abandoned: u64,
    /// Results with status `served`.
    pub served: u64,
    /// Results with status `quarantined`.
    pub quarantined: u64,
    /// Results with status `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Of the served results, ones that rode per-root fallback
    /// (salvaged from a degraded batch).
    pub salvaged: u64,
    /// Accepted queries that never got a result — must be 0.
    pub lost_replies: u64,
    /// Offered queries never acknowledged at all — must be 0.
    pub unacked: u64,
    /// Results for ids not awaiting one — must be 0.
    pub duplicate_replies: u64,
    /// Error replies or unparseable reply lines — must be 0.
    pub protocol_errors: u64,
    /// Query lines that failed to write.
    pub write_errors: u64,
    /// `{"cmd":"update"}` batches written into the paced stream.
    pub updates_offered: u64,
    /// Update batches the server committed (`reply":"committed"`).
    pub updates_committed: u64,
    /// Edges across all committed batches (the server's own count).
    pub update_edges: u64,
    /// Update batches refused with `update_rejected`.
    pub updates_rejected: u64,
    /// Epoch values (on `committed` and `result` replies) that went
    /// *backwards* on a connection — the torn-read proxy; must be 0.
    pub epoch_regressions: u64,
    /// Highest epoch observed on any reply.
    pub final_epoch: u64,
    /// End-to-end accepted→result latency distribution.
    pub latency: LatencySummary,
}

impl ToJson for LoadgenReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("connections", self.connections)
            .field("target_qps", self.target_qps)
            .field("duration_s", self.duration_s)
            .field("elapsed_s", self.elapsed_s)
            .field("offered", self.offered)
            .field("offered_qps", self.offered_qps)
            .field("accepted", self.accepted)
            .field("accepted_qps", self.accepted_qps)
            .field("rejected_full", self.rejected_full)
            .field("rejected_backlog", self.rejected_backlog)
            .field("rejected_shutdown", self.rejected_shutdown)
            .field("rejected_degraded", self.rejected_degraded)
            .field("rejected_other", self.rejected_other)
            .field("rejects_with_hint", self.rejects_with_hint)
            .field("rejections_seen", self.rejections_seen)
            .field("retried", self.retried)
            .field("retry_successes", self.retry_successes)
            .field("retries_abandoned", self.retries_abandoned)
            .field("served", self.served)
            .field("quarantined", self.quarantined)
            .field("deadline_exceeded", self.deadline_exceeded)
            .field("salvaged", self.salvaged)
            .field("lost_replies", self.lost_replies)
            .field("unacked", self.unacked)
            .field("duplicate_replies", self.duplicate_replies)
            .field("protocol_errors", self.protocol_errors)
            .field("write_errors", self.write_errors)
            .field("updates_offered", self.updates_offered)
            .field("updates_committed", self.updates_committed)
            .field("update_edges", self.update_edges)
            .field("updates_rejected", self.updates_rejected)
            .field("epoch_regressions", self.epoch_regressions)
            .field("final_epoch", self.final_epoch)
            .field("latency", self.latency.to_json())
            .build()
    }
}

impl LoadgenReport {
    /// True when every accounting invariant held: nothing lost,
    /// nothing duplicated, nothing malformed, nothing unacknowledged.
    pub fn clean(&self) -> bool {
        self.lost_replies == 0
            && self.duplicate_replies == 0
            && self.protocol_errors == 0
            && self.unacked == 0
            && self.write_errors == 0
            && self.epoch_regressions == 0
    }

    /// Terminal rejections per offered query. Rejections that were
    /// retried into an eventual accept don't count — this is the rate
    /// a hint-honoring client actually experiences.
    pub fn terminal_rejection_rate(&self) -> f64 {
        let terminal = self.rejected_full
            + self.rejected_backlog
            + self.rejected_shutdown
            + self.rejected_degraded
            + self.rejected_other
            + self.retries_abandoned;
        if self.offered == 0 {
            0.0
        } else {
            terminal as f64 / self.offered as f64
        }
    }
}

/// One offered query awaiting its accepted/rejected acknowledgment.
struct Offer {
    t0: Instant,
    root: u64,
    /// Retries already spent on this root (0 = first offer).
    attempts: u32,
}

/// A rejected offer waiting out its backoff hint before re-sending.
struct RetryItem {
    root: u64,
    attempts: u32,
    due: Instant,
}

/// How the receiver turns `retry_after_ticks` hints into retries.
#[derive(Clone, Copy)]
struct RetryPolicy {
    max: u32,
    tick_hint: Duration,
}

/// Send times and in-flight ids shared between one connection's sender
/// and receiver. Replies to one connection arrive in submission order
/// for the accepted/rejected acknowledgment (the service thread is a
/// single serialized stream), so a FIFO of send timestamps matches
/// acks to offers; results carry ids and match through the map. The
/// retry queue flows the other way: the receiver parks rejected offers
/// whose hint it honors, the sender re-offers them when due.
#[derive(Default)]
struct ConnShared {
    /// Offers awaiting accepted/rejected, in send order.
    awaiting_ack: Mutex<std::collections::VecDeque<Offer>>,
    /// Accepted id → send instant, awaiting its result.
    awaiting_result: Mutex<HashMap<u64, Instant>>,
    /// Rejected offers waiting out their backoff before re-sending.
    retry_queue: Mutex<std::collections::VecDeque<RetryItem>>,
}

/// Per-connection receiver tallies, merged into the report at the end.
#[derive(Default)]
struct ConnStats {
    accepted: u64,
    rejected_full: u64,
    rejected_backlog: u64,
    rejected_shutdown: u64,
    rejected_degraded: u64,
    rejected_other: u64,
    rejects_with_hint: u64,
    rejections_seen: u64,
    retried: u64,
    retry_successes: u64,
    served: u64,
    quarantined: u64,
    deadline_exceeded: u64,
    salvaged: u64,
    duplicate_replies: u64,
    protocol_errors: u64,
    updates_committed: u64,
    update_edges: u64,
    updates_rejected: u64,
    epoch_regressions: u64,
    /// Highest epoch this connection has seen on any stamped reply.
    last_epoch: u64,
    latency_ms: Vec<f64>,
}

impl ConnStats {
    /// Fold one stamped epoch into the monotonicity check: a reply
    /// carrying an epoch older than one already observed on this
    /// connection means the snapshot went backwards (a torn read —
    /// impossible while commits serialize on the service thread).
    fn observe_epoch(&mut self, epoch: u64) {
        if epoch < self.last_epoch {
            self.epoch_regressions += 1;
        }
        self.last_epoch = self.last_epoch.max(epoch);
    }
}

/// Render one update line: a batch of edge inserts drawn from the
/// seeded stream, e.g. `{"cmd":"update","edges":[[3,9],[0,5]]}`.
fn update_line(rng: &mut SplitMix64, batch: usize, root_max: u64) -> String {
    let n = root_max.max(2);
    let edges: Vec<String> = (0..batch.max(1))
        .map(|_| format!("[{},{}]", rng.next_below(n), rng.next_below(n)))
        .collect();
    format!("{{\"cmd\":\"update\",\"edges\":[{}]}}\n", edges.join(","))
}

/// Render one query line, with the configured deadline budget if any.
fn query_line(root: u64, deadline_ticks: Option<u32>) -> String {
    match deadline_ticks {
        Some(d) => format!("{{\"cmd\":\"query\",\"root\":{root},\"deadline_ticks\":{d}}}\n"),
        None => format!("{{\"cmd\":\"query\",\"root\":{root}}}\n"),
    }
}

/// Offer one root: record it in the ack FIFO, then write the line.
/// Recording first means the receiver can never see the ack while the
/// FIFO is still empty. Returns false on a write error (offer undone).
fn offer_root(
    stream: &mut TcpStream,
    shared: &ConnShared,
    root: u64,
    attempts: u32,
    deadline_ticks: Option<u32>,
) -> bool {
    let line = query_line(root, deadline_ticks);
    shared.awaiting_ack.lock().unwrap().push_back(Offer {
        t0: Instant::now(),
        root,
        attempts,
    });
    if stream.write_all(line.as_bytes()).is_err() {
        shared.awaiting_ack.lock().unwrap().pop_back();
        return false;
    }
    true
}

/// Re-offer every due retry. Returns false on a write error.
fn drain_due_retries(stream: &mut TcpStream, shared: &ConnShared, offered: &mut u64) -> bool {
    loop {
        let item = {
            let mut q = shared.retry_queue.lock().unwrap();
            match q.front() {
                Some(r) if r.due <= Instant::now() => q.pop_front(),
                _ => None,
            }
        };
        let Some(r) = item else { return true };
        // Retries keep their original deadline-free shape: the query
        // already waited out a backoff, a fresh deadline would be
        // misleadingly generous and none at all matches a client that
        // still wants the answer.
        if !offer_root(stream, shared, r.root, r.attempts, None) {
            return false;
        }
        *offered += 1;
    }
}

fn sender_loop(
    mut stream: TcpStream,
    shared: &ConnShared,
    mut rng: SplitMix64,
    per_conn_interval: Duration,
    cfg: &LoadgenConfig,
) -> (u64, u64, u64) {
    let start = Instant::now();
    let mut offered = 0u64;
    let mut updates_offered = 0u64;
    let mut write_errors = 0u64;
    let mut paced = 0u64;
    while start.elapsed() < cfg.duration {
        if !drain_due_retries(&mut stream, shared, &mut offered) {
            write_errors += 1;
            break;
        }
        // Interleave a live edge-insert batch into the paced stream.
        // Its reply shapes are distinct from the query offer/result
        // shapes, so the ack FIFO stays query-only.
        if cfg.update_every > 0 && paced > 0 && paced.is_multiple_of(cfg.update_every) {
            let line = update_line(&mut rng, cfg.update_batch, cfg.root_max);
            if stream.write_all(line.as_bytes()).is_err() {
                write_errors += 1;
                break;
            }
            updates_offered += 1;
        }
        let root = rng.next_below(cfg.root_max.max(1));
        if !offer_root(&mut stream, shared, root, 0, cfg.deadline_ticks) {
            write_errors += 1;
            break;
        }
        offered += 1;
        paced += 1;
        let target = start + per_conn_interval.mul_f64(paced as f64);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
    // Post-window retry drain: rejected offers still waiting out their
    // backoff get their re-send before the run settles. Bounded by the
    // grace window — retries are capped per offer, so this terminates.
    if write_errors == 0 && cfg.retry_max > 0 {
        let grace_deadline = Instant::now() + cfg.retry_grace;
        loop {
            if !drain_due_retries(&mut stream, shared, &mut offered) {
                write_errors += 1;
                break;
            }
            let (queued, unacked) = (
                shared.retry_queue.lock().unwrap().len(),
                shared.awaiting_ack.lock().unwrap().len(),
            );
            if (queued == 0 && unacked == 0) || Instant::now() >= grace_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    // Flush whatever partial batch our last queries are sitting in.
    let _ = stream.write_all(b"{\"cmd\":\"drain\"}\n");
    (offered, updates_offered, write_errors)
}

fn receiver_loop(stream: TcpStream, shared: &ConnShared, retry: RetryPolicy) -> ConnStats {
    let mut stats = ConnStats::default();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(reply) = JsonValue::parse(trimmed) else {
            stats.protocol_errors += 1;
            continue;
        };
        match reply.get("reply").and_then(JsonValue::as_str) {
            Some("accepted") => {
                let offer = shared.awaiting_ack.lock().unwrap().pop_front();
                let Some(id) = reply.get("id").and_then(JsonValue::as_u64) else {
                    stats.protocol_errors += 1;
                    continue;
                };
                match offer {
                    Some(offer) => {
                        shared.awaiting_result.lock().unwrap().insert(id, offer.t0);
                        stats.accepted += 1;
                        if offer.attempts > 0 {
                            stats.retry_successes += 1;
                        }
                    }
                    None => stats.protocol_errors += 1,
                }
            }
            Some("rejected") => {
                let Some(offer) = shared.awaiting_ack.lock().unwrap().pop_front() else {
                    stats.protocol_errors += 1;
                    continue;
                };
                stats.rejections_seen += 1;
                let hint = reply.get("retry_after_ticks").and_then(JsonValue::as_u64);
                if hint.is_some() {
                    stats.rejects_with_hint += 1;
                }
                // Honor the backoff hint with bounded retry; only a
                // rejection we won't (or can't) retry is terminal.
                if let Some(ticks) = hint.filter(|_| offer.attempts < retry.max) {
                    stats.retried += 1;
                    shared.retry_queue.lock().unwrap().push_back(RetryItem {
                        root: offer.root,
                        attempts: offer.attempts + 1,
                        due: Instant::now() + retry.tick_hint.mul_f64(ticks.max(1) as f64),
                    });
                    continue;
                }
                match reply.get("reason").and_then(JsonValue::as_str) {
                    Some("queue_full") => stats.rejected_full += 1,
                    Some("client_backlog") => stats.rejected_backlog += 1,
                    Some("shutting_down") => stats.rejected_shutdown += 1,
                    Some("service_degraded") => stats.rejected_degraded += 1,
                    _ => stats.rejected_other += 1,
                }
            }
            Some("result") => {
                let Some(id) = reply.get("id").and_then(JsonValue::as_u64) else {
                    stats.protocol_errors += 1;
                    continue;
                };
                if let Some(epoch) = reply.get("epoch").and_then(JsonValue::as_u64) {
                    stats.observe_epoch(epoch);
                }
                match shared.awaiting_result.lock().unwrap().remove(&id) {
                    Some(t0) => {
                        stats.latency_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        match reply.get("status").and_then(JsonValue::as_str) {
                            Some("served") => {
                                stats.served += 1;
                                if reply.get("via_fallback").and_then(JsonValue::as_bool)
                                    == Some(true)
                                {
                                    stats.salvaged += 1;
                                }
                            }
                            Some("deadline_exceeded") => stats.deadline_exceeded += 1,
                            _ => stats.quarantined += 1,
                        }
                    }
                    None => stats.duplicate_replies += 1,
                }
            }
            // Update acknowledgments: distinct shapes by design, so
            // they never pop the query-offer FIFO.
            Some("committed") => {
                stats.updates_committed += 1;
                stats.update_edges += reply
                    .get("edges")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or_default();
                match reply.get("epoch").and_then(JsonValue::as_u64) {
                    Some(epoch) => stats.observe_epoch(epoch),
                    None => stats.protocol_errors += 1,
                }
            }
            Some("update_rejected") => stats.updates_rejected += 1,
            // Lifecycle acknowledgments, not per-query accounting.
            Some("drained" | "shutting_down" | "shutdown" | "stats" | "health") => {}
            Some("error") | Some(_) | None => stats.protocol_errors += 1,
        }
    }
    stats
}

/// Drive one configured load run against a listening server.
///
/// # Errors
/// Connection setup errors; a run that connects always returns a
/// report (individual socket failures surface as its counters).
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let started = Instant::now();
    let connections = cfg.connections.max(1);
    let per_conn_interval = Duration::from_secs_f64(connections as f64 / cfg.qps.max(1) as f64);

    let mut streams = Vec::with_capacity(connections);
    let mut shareds = Vec::with_capacity(connections);
    for _ in 0..connections {
        streams.push(TcpStream::connect(&cfg.addr)?);
        shareds.push(Arc::new(ConnShared::default()));
    }

    let retry = RetryPolicy {
        max: cfg.retry_max,
        tick_hint: cfg.tick_hint.max(Duration::from_millis(1)),
    };
    let mut receivers = Vec::with_capacity(connections);
    let mut senders = Vec::with_capacity(connections);
    for (i, stream) in streams.iter().enumerate() {
        let shared = Arc::clone(&shareds[i]);
        let read_half = stream.try_clone()?;
        receivers.push(std::thread::spawn(move || {
            receiver_loop(read_half, &shared, retry)
        }));
        let shared = Arc::clone(&shareds[i]);
        let write_half = stream.try_clone()?;
        let rng = SplitMix64::new(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let cfg = cfg.clone();
        senders.push(std::thread::spawn(move || {
            sender_loop(write_half, &shared, rng, per_conn_interval, &cfg)
        }));
    }

    let mut offered = 0u64;
    let mut updates_offered = 0u64;
    let mut write_errors = 0u64;
    for s in senders {
        let (o, u, w) = s.join().expect("sender thread panicked");
        offered += o;
        updates_offered += u;
        write_errors += w;
    }

    // Settle: wait until every offer is acknowledged and every accepted
    // query has its result, or give up at the settle deadline.
    let settle_deadline = Instant::now() + cfg.settle_timeout;
    loop {
        let outstanding: usize = shareds
            .iter()
            .map(|s| s.awaiting_ack.lock().unwrap().len() + s.awaiting_result.lock().unwrap().len())
            .sum();
        if outstanding == 0 || Instant::now() >= settle_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    if cfg.shutdown_at_end {
        // Exercise the graceful drain; the server answers with a final
        // shutdown line and closes every connection (receiver EOF).
        let _ = (&streams[0]).write_all(b"{\"cmd\":\"shutdown\"}\n");
    } else {
        for s in &streams {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    let mut report = LoadgenReport {
        connections: connections as u64,
        target_qps: cfg.qps,
        duration_s: cfg.duration.as_secs_f64(),
        offered,
        updates_offered,
        write_errors,
        ..LoadgenReport::default()
    };
    let mut samples = Vec::new();
    for r in receivers {
        let s = r.join().expect("receiver thread panicked");
        report.accepted += s.accepted;
        report.rejected_full += s.rejected_full;
        report.rejected_backlog += s.rejected_backlog;
        report.rejected_shutdown += s.rejected_shutdown;
        report.rejected_degraded += s.rejected_degraded;
        report.rejected_other += s.rejected_other;
        report.rejects_with_hint += s.rejects_with_hint;
        report.rejections_seen += s.rejections_seen;
        report.retried += s.retried;
        report.retry_successes += s.retry_successes;
        report.served += s.served;
        report.quarantined += s.quarantined;
        report.deadline_exceeded += s.deadline_exceeded;
        report.salvaged += s.salvaged;
        report.duplicate_replies += s.duplicate_replies;
        report.protocol_errors += s.protocol_errors;
        report.updates_committed += s.updates_committed;
        report.update_edges += s.update_edges;
        report.updates_rejected += s.updates_rejected;
        report.epoch_regressions += s.epoch_regressions;
        report.final_epoch = report.final_epoch.max(s.last_epoch);
        samples.extend(s.latency_ms);
    }
    for s in &shareds {
        report.unacked += s.awaiting_ack.lock().unwrap().len() as u64;
        report.lost_replies += s.awaiting_result.lock().unwrap().len() as u64;
        report.retries_abandoned += s.retry_queue.lock().unwrap().len() as u64;
    }
    report.latency = LatencySummary::from_samples(samples);
    report.elapsed_s = started.elapsed().as_secs_f64();
    let window = report.duration_s.max(1e-9);
    report.offered_qps = report.offered as f64 / window;
    report.accepted_qps = report.accepted as f64 / window;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Chaos soak: the whole stack under live faults, end to end.
// ---------------------------------------------------------------------------

/// Knobs for one chaos soak run ([`run_chaos_soak`]).
#[derive(Clone, Debug)]
pub struct ChaosSoakConfig {
    /// The resident graph to serve. Loaded with an **armed**
    /// [`FaultPlan`] so chaos events injected mid-run keep payload
    /// framing SPMD-consistent.
    pub session: SessionConfig,
    /// Service knobs (health thresholds included).
    pub serve: ServeConfig,
    /// Transport knobs.
    pub net: NetConfig,
    /// The seeded fault schedule the service arms against itself.
    /// Bound `max_events` so the soak tail is chaos-free and recovery
    /// can close.
    pub chaos: ChaosConfig,
    /// The offered load (`addr` and `shutdown_at_end` are overridden).
    pub load: LoadgenConfig,
    /// Minimum acceptable `served / completed` ratio.
    pub availability_gate: f64,
    /// Maximum acceptable single recovery episode, in service ticks.
    pub recovery_gate_ticks: u64,
    /// How often the side connection polls the `health` request.
    pub health_poll: Duration,
    /// Wall-clock bound on driving the service back to `healthy`
    /// after the load window closes.
    pub recovery_timeout: Duration,
}

/// What one chaos soak saw, end to end: the load generator's view, the
/// service's own report, the transport summary, and the availability /
/// recovery verdicts. Renders as the `serve_chaos` section of the
/// schema-v9 metrics JSON.
#[derive(Debug)]
pub struct ChaosSoakReport {
    /// The client-side view of the run.
    pub load: LoadgenReport,
    /// The service's own report (empty when the service thread died).
    pub serve: ServeReport,
    /// The transport summary.
    pub net: NetSummary,
    /// `served / (served + quarantined + deadline_exceeded)`.
    pub availability: f64,
    /// The configured availability gate.
    pub availability_gate: f64,
    /// Health round trips that left and re-reached `healthy`.
    pub recovery_episodes: u64,
    /// The longest such episode, in service ticks.
    pub max_recovery_ticks: u64,
    /// The configured recovery-time gate.
    pub recovery_gate_ticks: u64,
    /// Deduped health-state sequence the side poller observed.
    pub observed_states: Vec<String>,
    /// Health state at shutdown.
    pub final_health: String,
    /// True when the service ended the run `healthy`.
    pub recovered: bool,
    /// True when a server thread panicked (automatic failure).
    pub server_panicked: bool,
    /// The panic payload, when one did.
    pub join_error: Option<String>,
}

impl ChaosSoakReport {
    /// The soak's verdict: no crash, clean accounting, availability at
    /// or above the gate, recovered to `healthy`, and every recovery
    /// episode inside the tick budget.
    pub fn passed(&self) -> bool {
        !self.server_panicked
            && self.load.clean()
            && self.availability >= self.availability_gate
            && self.recovered
            && self.max_recovery_ticks <= self.recovery_gate_ticks
    }
}

impl ToJson for ChaosSoakReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("availability", self.availability)
            .field("availability_gate", self.availability_gate)
            .field("recovery_episodes", self.recovery_episodes)
            .field("max_recovery_ticks", self.max_recovery_ticks)
            .field("recovery_gate_ticks", self.recovery_gate_ticks)
            .field(
                "observed_states",
                JsonValue::Array(
                    self.observed_states
                        .iter()
                        .map(|s| JsonValue::from(s.as_str()))
                        .collect(),
                ),
            )
            .field("final_health", self.final_health.as_str())
            .field("recovered", self.recovered)
            .field("server_panicked", self.server_panicked)
            .field(
                "join_error",
                match &self.join_error {
                    Some(e) => JsonValue::from(e.as_str()),
                    None => JsonValue::Null,
                },
            )
            .field("passed", self.passed())
            .field("load", self.load.to_json())
            // Aggregates only: a soak records thousands of queries, and
            // the committed artifact must stay reviewable.
            .field("serve", self.serve.to_summary_json())
            .field("net", self.net.to_json())
            .build()
    }
}

/// Poll `{"cmd":"health"}` on a dedicated connection, recording the
/// deduped state sequence, until `stop` flips or the socket dies.
fn health_poller(addr: &str, poll: Duration, stop: &AtomicBool, observed: &Mutex<Vec<String>>) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    while !stop.load(Ordering::SeqCst) {
        if stream.write_all(b"{\"cmd\":\"health\"}\n").is_err() {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if let Ok(reply) = JsonValue::parse(line.trim()) {
            if reply.get("reply").and_then(JsonValue::as_str) == Some("health") {
                if let Some(state) = reply.get("state").and_then(JsonValue::as_str) {
                    let mut seen = observed.lock().unwrap();
                    if seen.last().map(String::as_str) != Some(state) {
                        seen.push(state.to_string());
                    }
                }
            }
        }
        std::thread::sleep(poll);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// After the load window, feed the service small clean batches until
/// the poller sees `healthy` (or the deadline passes): quarantine
/// probes fire on idle ticks by themselves, but `Recovering → Healthy`
/// needs clean traffic to prove.
fn drive_recovery(addr: &str, deadline: Instant, observed: &Mutex<Vec<String>>) -> bool {
    let healthy_now = || observed.lock().unwrap().last().map(String::as_str) == Some("healthy");
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return healthy_now();
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return healthy_now();
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    while Instant::now() < deadline && !healthy_now() {
        for root in 0..4u64 {
            if stream.write_all(query_line(root, None).as_bytes()).is_err() {
                return healthy_now();
            }
        }
        let _ = stream.write_all(b"{\"cmd\":\"drain\"}\n");
        // Drain replies until the short read deadline; we only care
        // that the service executes clean batches, not about matching.
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    healthy_now()
}

/// Recovery episodes from the transition log: every span from leaving
/// `healthy` to re-reaching it, in ticks. A run that never got back is
/// not an episode — [`ChaosSoakReport::recovered`] catches it instead.
fn recovery_episodes(transitions: &[HealthTransition]) -> (u64, u64) {
    let mut episodes = 0u64;
    let mut max_ticks = 0u64;
    let mut left_at: Option<u64> = None;
    for t in transitions {
        if t.from == "healthy" && left_at.is_none() {
            left_at = Some(t.at_tick);
        }
        if t.to == "healthy" {
            if let Some(start) = left_at.take() {
                episodes += 1;
                max_ticks = max_ticks.max(t.at_tick.saturating_sub(start));
            }
        }
    }
    (episodes, max_ticks)
}

/// Run the whole chaos soak: build the session with an armed fault
/// plan, serve it over TCP with the seeded chaos schedule, offer load
/// while polling health from the side, drive recovery closed, shut
/// down gracefully, and fold every view into a [`ChaosSoakReport`].
///
/// # Errors
/// Session build and listener setup errors; everything after the
/// server is up folds into the report instead.
pub fn run_chaos_soak(cfg: &ChaosSoakConfig) -> io::Result<ChaosSoakReport> {
    let session = GraphSession::load(cfg.session, FaultPlan::armed())
        .map_err(|e| io::Error::other(format!("session load: {e}")))?;
    let svc = BfsService::new(session, cfg.serve).with_chaos(cfg.chaos);
    let server = serve(svc, "127.0.0.1:0", cfg.net)?;
    let addr = server.local_addr().to_string();

    let stop_poller = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(Mutex::new(Vec::<String>::new()));
    let poller = {
        let (addr, poll) = (addr.clone(), cfg.health_poll);
        let stop = Arc::clone(&stop_poller);
        let observed = Arc::clone(&observed);
        std::thread::spawn(move || health_poller(&addr, poll, &stop, &observed))
    };

    let mut load_cfg = cfg.load.clone();
    load_cfg.addr = addr.clone();
    load_cfg.shutdown_at_end = false;
    let load = run_loadgen(&load_cfg)?;

    let recovered_by_drive =
        drive_recovery(&addr, Instant::now() + cfg.recovery_timeout, &observed);

    stop_poller.store(true, Ordering::SeqCst);
    server.shutdown();
    let outcome = server.join();
    let _ = poller.join();

    let serve_report = outcome
        .service
        .as_ref()
        .map(|svc| svc.report())
        .unwrap_or_default();
    let (recovery_episodes, max_recovery_ticks) =
        recovery_episodes(&serve_report.health_transitions);
    let final_health = outcome
        .service
        .as_ref()
        .map(|svc| svc.health().label().to_string())
        .unwrap_or_default();
    let recovered = recovered_by_drive || final_health == "healthy";
    let server_panicked = outcome.panicked();
    let join_error = outcome
        .service_join_error
        .clone()
        .or(outcome.accept_join_error.clone());
    let observed_states = observed.lock().unwrap().clone();
    Ok(ChaosSoakReport {
        availability: serve_report.availability(),
        availability_gate: cfg.availability_gate,
        recovery_episodes,
        max_recovery_ticks,
        recovery_gate_ticks: cfg.recovery_gate_ticks,
        observed_states,
        final_health,
        recovered: recovered && !server_panicked,
        server_panicked,
        join_error,
        load,
        serve: serve_report,
        net: outcome.summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_rejection_rate_excludes_successful_retries() {
        let mut r = LoadgenReport {
            offered: 100,
            rejections_seen: 20,
            retried: 15,
            retry_successes: 12,
            rejected_degraded: 5,
            ..LoadgenReport::default()
        };
        assert_eq!(r.terminal_rejection_rate(), 0.05);
        r.retries_abandoned = 3;
        assert_eq!(r.terminal_rejection_rate(), 0.08);
        let empty = LoadgenReport::default();
        assert_eq!(empty.terminal_rejection_rate(), 0.0);
    }

    #[test]
    fn recovery_episodes_measure_healthy_round_trips() {
        let t = |from: &'static str, to: &'static str, at_tick: u64| HealthTransition {
            from,
            to,
            at_tick,
            reason: String::new(),
        };
        assert_eq!(recovery_episodes(&[]), (0, 0));
        // One full round trip of 9 ticks, one of 4.
        let trail = vec![
            t("healthy", "degraded", 10),
            t("degraded", "quarantined", 12),
            t("quarantined", "recovering", 17),
            t("recovering", "healthy", 19),
            t("healthy", "degraded", 30),
            t("degraded", "recovering", 32),
            t("recovering", "healthy", 34),
        ];
        assert_eq!(recovery_episodes(&trail), (2, 9));
        // Never recovered: no episode closes.
        let open = vec![t("healthy", "degraded", 5)];
        assert_eq!(recovery_episodes(&open), (0, 0));
    }

    #[test]
    fn query_lines_carry_the_deadline_budget() {
        assert_eq!(query_line(7, None), "{\"cmd\":\"query\",\"root\":7}\n");
        assert_eq!(
            query_line(7, Some(3)),
            "{\"cmd\":\"query\",\"root\":7,\"deadline_ticks\":3}\n"
        );
    }

    #[test]
    fn loadgen_report_json_carries_the_chaos_fields() {
        let js = LoadgenReport::default().to_json().render();
        for key in [
            "rejected_degraded",
            "rejections_seen",
            "retried",
            "retry_successes",
            "retries_abandoned",
            "deadline_exceeded",
            "salvaged",
            "updates_offered",
            "updates_committed",
            "update_edges",
            "updates_rejected",
            "epoch_regressions",
            "final_epoch",
        ] {
            assert!(js.contains(&format!("\"{key}\"")), "missing {key} in {js}");
        }
    }

    #[test]
    fn update_lines_are_valid_update_requests() {
        let mut rng = SplitMix64::new(7);
        let line = update_line(&mut rng, 3, 64);
        let parsed = crate::proto::parse_request(line.trim()).expect("parses");
        match parsed {
            crate::proto::Request::Update { edges } => {
                assert_eq!(edges.len(), 3);
                assert!(edges.iter().all(|&(u, v)| u < 64 && v < 64));
            }
            other => panic!("expected an update request, got {other:?}"),
        }
    }

    #[test]
    fn epoch_regressions_count_backwards_stamps_and_gate_clean() {
        let mut stats = ConnStats::default();
        for e in [1, 2, 2, 5] {
            stats.observe_epoch(e);
        }
        assert_eq!(stats.epoch_regressions, 0);
        assert_eq!(stats.last_epoch, 5);
        stats.observe_epoch(3);
        assert_eq!(stats.epoch_regressions, 1);
        assert_eq!(stats.last_epoch, 5);
        let report = LoadgenReport {
            epoch_regressions: 1,
            ..LoadgenReport::default()
        };
        assert!(!report.clean(), "a torn read must fail the clean gate");
    }
}
