//! **Figure 2** — degree distribution of a Graph 500 synthetic graph.
//!
//! Paper (§2.2): at SCALE 40 the R-MAT degree distribution is extremely
//! skewed yet *discrete* — "multiple hypergeometric distributions
//! centered at numerous peaks". Only thresholds between peaks are
//! meaningful for E/H selection (§6.2.1).
//!
//! This harness regenerates the log-log histogram at SCALE 18 and also
//! locates the inter-peak valleys a threshold search would use.

use sunbfs_rmat::{degree_frequencies, degrees, generate_edges, RmatParams};

fn main() {
    let scale = 18;
    let params = RmatParams::graph500(scale, 42);
    println!(
        "=== Figure 2: degree distribution, SCALE {scale} ({} vertices, {} edges) ===\n",
        params.num_vertices(),
        params.num_edges()
    );
    let edges = generate_edges(&params);
    let degs = degrees(params.num_vertices(), &edges);

    // Log-log histogram, the figure's axes.
    let hist = sunbfs_rmat::degree_histogram(&degs);
    println!("  degree >=   vertices    (log-log shape)");
    for (lo, count) in hist.buckets() {
        if count > 0 {
            let logbar = (count as f64).log10().max(0.0);
            println!(
                "  {lo:>9}   {count:>9}   {}",
                "#".repeat((logbar * 8.0) as usize)
            );
        }
    }

    // Headline skew facts.
    let max_deg = *degs.iter().max().unwrap();
    let isolated = degs.iter().filter(|&&d| d == 0).count();
    let mean = 2.0 * edges.len() as f64 / params.num_vertices() as f64;
    println!(
        "\n  max degree: {max_deg} ({}x the mean {mean:.1})",
        (max_deg as f64 / mean) as u64
    );
    println!(
        "  isolated vertices: {isolated} ({:.1}% of all)",
        100.0 * isolated as f64 / params.num_vertices() as f64
    );

    // Discreteness: find the five deepest gaps between consecutive
    // populated degrees in the upper tail — candidate E/H thresholds.
    let freqs = degree_frequencies(&degs);
    let tail: Vec<(u32, u64)> = freqs.iter().copied().filter(|(d, _)| *d >= 64).collect();
    let mut gaps: Vec<(u32, u32)> = tail.windows(2).map(|w| (w[0].0, w[1].0)).collect();
    gaps.sort_by_key(|(a, b)| std::cmp::Reverse(b - a));
    println!("\n  largest empty degree gaps in the tail (threshold candidates sit inside):");
    for (lo, hi) in gaps.iter().take(5) {
        println!("    ({lo}, {hi})  width {}", hi - lo);
    }
}
