#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

# The fault suites prove every injected failure terminates in a typed
# outcome instead of a hung barrier — so they run under a hard wall
# timeout: a hang is a regression, not a slow test.
echo "==> fault containment suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-net --test fault_matrix
timeout 300 cargo test -q --test fault_e2e --test fault_env

echo "CI green."
