//! Iteration-level checkpointing for fault-tolerant traversals.
//!
//! A BFS that loses a rank mid-traversal currently pays for the whole
//! root again on retry. This module captures the engine's loop-carried
//! state after every *completed* iteration so the driver's retry can
//! resume from the last verified checkpoint instead:
//!
//! * [`CheckpointState`] is the complete per-rank snapshot — frontier
//!   and visited bitmaps for both the replicated hub classes and the
//!   owner-local L class, the delegate-local parent buffers, and the
//!   loop-carried global counters.
//! * Snapshots are stored *encoded*: a fixed-layout little-endian `u64`
//!   stream sealed with a trailing FNV-1a checksum. [`decode`] refuses
//!   anything damaged, so a resume never starts from corrupt state —
//!   "last verified checkpoint" is literal.
//! * [`CheckpointStore`] holds one slot per rank. Saves are rank-local
//!   (no extra collectives: the engine saves right after its closing
//!   iteration allreduce, and faults unwind *at* collectives, so every
//!   rank holds the same last iteration — see
//!   [`CheckpointStore::common_iter`]).
//!
//! Consistency argument: the engine's only unwind points are
//! collectives (injected panics fire inside `exchange`, corruption
//! escalation poisons at the deposit barrier, SPMD violations unwind at
//! collect). A checkpoint is taken between an iteration's closing
//! allreduce and the next collective, so either every rank saved
//! iteration `k` or none did — the store can never hold a torn
//! cross-rank state.
//!
//! [`decode`]: CheckpointState::decode

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sunbfs_common::{Bitmap, TimeAccumulator};
use sunbfs_net::{fnv1a, CommStats};

use crate::config::Direction;
use crate::stats::IterationStats;

/// Envelope magic: "SBFSCKPT" little-endian.
const MAGIC: u64 = u64::from_le_bytes(*b"SBFSCKPT");
/// Envelope layout version (v2 added the measured-heuristic masses and
/// the per-component direction hysteresis word).
const VERSION: u64 = 2;

/// One rank's complete BFS loop state after a finished iteration.
///
/// Everything the engine's iteration loop carries is here; the
/// sub-iteration scratch (`hub_update`, `hub_next`, `l_next`) is
/// guaranteed clear at the capture point and is therefore not stored.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointState {
    /// Last completed iteration (1-based).
    pub iter: u32,
    /// Global active-L count after the closing allreduce.
    pub active_l: u64,
    /// Global visited-L count after the closing allreduce.
    pub visited_l: u64,
    /// Simulated seconds spent in the traversal up to this point
    /// (across the original run and any earlier resumed segments).
    pub sim_seconds: f64,
    /// Replicated hub frontier (already swapped to the next iteration).
    pub hub_curr: Bitmap,
    /// Replicated hub visited bits.
    pub hub_visited: Bitmap,
    /// Delegate-local hub parents (reduced only after the traversal).
    pub hub_parent: Vec<u64>,
    /// Owner-local L frontier.
    pub l_curr: Bitmap,
    /// Owner-local L visited bits.
    pub l_visited: Bitmap,
    /// Owner-local L parents.
    pub l_parent: Vec<u64>,
    /// Measured-heuristic frontier degree masses per class (E, H, L) —
    /// global sums; zeros under the fixed heuristic.
    pub frontier_mass: [u64; 3],
    /// Measured-heuristic accumulated visited degree masses per class
    /// (E, H, L); zeros under the fixed heuristic.
    pub visited_mass: [u64; 3],
    /// Previous per-component directions, the measured heuristic's
    /// hysteresis state ([`crate::config::Component::ALL`] order).
    pub prev_dirs: [Direction; 6],
}

/// Pack the hysteresis directions into one `u64` (bit `i` = pull).
fn pack_dirs(dirs: &[Direction; 6]) -> u64 {
    dirs.iter()
        .enumerate()
        .map(|(i, d)| ((*d == Direction::Pull) as u64) << i)
        .sum()
}

/// Inverse of [`pack_dirs`]; `None` when bits past the six are set
/// (corrupt despite a valid checksum shape).
fn unpack_dirs(word: u64) -> Option<[Direction; 6]> {
    if word >> 6 != 0 {
        return None;
    }
    let mut dirs = [Direction::Push; 6];
    for (i, d) in dirs.iter_mut().enumerate() {
        if word >> i & 1 == 1 {
            *d = Direction::Pull;
        }
    }
    Some(dirs)
}

impl CheckpointState {
    /// Serialize to the checksummed envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for x in [
            MAGIC,
            VERSION,
            self.iter as u64,
            self.active_l,
            self.visited_l,
            self.sim_seconds.to_bits(),
            self.frontier_mass[0],
            self.frontier_mass[1],
            self.frontier_mass[2],
            self.visited_mass[0],
            self.visited_mass[1],
            self.visited_mass[2],
            pack_dirs(&self.prev_dirs),
        ] {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for bm in [
            &self.hub_curr,
            &self.hub_visited,
            &self.l_curr,
            &self.l_visited,
        ] {
            encode_bitmap(&mut out, bm);
        }
        for v in [&self.hub_parent, &self.l_parent] {
            encode_vec(&mut out, v);
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parse and verify an envelope; `None` on any damage — bad magic
    /// or version, inconsistent lengths, trailing garbage, or a
    /// checksum mismatch.
    pub fn decode(bytes: &[u8]) -> Option<CheckpointState> {
        // Verify the seal first: the checksum covers everything before
        // its own 8 bytes.
        if bytes.len() < 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let checksum = u64::from_le_bytes(tail.try_into().ok()?);
        if fnv1a(body) != checksum {
            return None;
        }
        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        if r.u64()? != MAGIC || r.u64()? != VERSION {
            return None;
        }
        let iter = u32::try_from(r.u64()?).ok()?;
        let active_l = r.u64()?;
        let visited_l = r.u64()?;
        let sim_seconds = f64::from_bits(r.u64()?);
        let frontier_mass = [r.u64()?, r.u64()?, r.u64()?];
        let visited_mass = [r.u64()?, r.u64()?, r.u64()?];
        let prev_dirs = unpack_dirs(r.u64()?)?;
        let hub_curr = decode_bitmap(&mut r)?;
        let hub_visited = decode_bitmap(&mut r)?;
        let l_curr = decode_bitmap(&mut r)?;
        let l_visited = decode_bitmap(&mut r)?;
        let hub_parent = decode_vec(&mut r)?;
        let l_parent = decode_vec(&mut r)?;
        if r.pos != body.len() {
            return None; // trailing garbage is damage too
        }
        Some(CheckpointState {
            iter,
            active_l,
            visited_l,
            sim_seconds,
            hub_curr,
            hub_visited,
            hub_parent,
            l_curr,
            l_visited,
            l_parent,
            frontier_mass,
            visited_mass,
            prev_dirs,
        })
    }
}

fn encode_bitmap(out: &mut Vec<u8>, bm: &Bitmap) {
    out.extend_from_slice(&bm.len().to_le_bytes());
    out.extend_from_slice(&(bm.words().len() as u64).to_le_bytes());
    for w in bm.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn decode_bitmap(r: &mut Reader<'_>) -> Option<Bitmap> {
    let bits = r.u64()?;
    let nwords = r.u64()?;
    // Internal-consistency and allocation guards BEFORE `Bitmap::new`:
    // a corrupted length must not become a multi-gigabyte allocation.
    if nwords != bits.div_ceil(64) || nwords > r.remaining() / 8 {
        return None;
    }
    let mut bm = Bitmap::new(bits);
    for w in bm.words_mut() {
        *w = r.u64()?;
    }
    Some(bm)
}

fn encode_vec(out: &mut Vec<u8>, v: &[u64]) {
    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn decode_vec(r: &mut Reader<'_>) -> Option<Vec<u64>> {
    let len = r.u64()?;
    if len > r.remaining() / 8 {
        return None; // allocation guard
    }
    let mut v = Vec::with_capacity(len as usize);
    for _ in 0..len {
        v.push(r.u64()?);
    }
    Some(v)
}

/// Bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(chunk.try_into().ok()?))
    }

    fn remaining(&self) -> u64 {
        (self.bytes.len() - self.pos) as u64
    }
}

/// The statistics a resumed run inherits from the checkpointed
/// segment: the completed iteration series plus the simulated time and
/// communication volume already spent, so a resumed traversal is
/// charged like one continuous run.
#[derive(Clone, Debug, Default)]
pub struct ResumeStats {
    /// Per-iteration counters of every completed iteration.
    pub iterations: Vec<IterationStats>,
    /// Per-category simulated time spent before the checkpoint.
    pub times: TimeAccumulator,
    /// Collective calls and byte volumes before the checkpoint.
    pub comm: CommStats,
}

struct Saved {
    encoded: Vec<u8>,
    stats: ResumeStats,
}

/// Per-root checkpoint storage shared by every rank of one SPMD phase:
/// one slot per rank, written after each completed iteration, read at
/// the start of a retry.
pub struct CheckpointStore {
    slots: Vec<Mutex<Option<Saved>>>,
    saves: AtomicU64,
}

impl CheckpointStore {
    /// An empty store for a cluster of `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        CheckpointStore {
            slots: (0..nranks).map(|_| Mutex::new(None)).collect(),
            saves: AtomicU64::new(0),
        }
    }

    /// Overwrite `rank`'s slot with a snapshot (encoded and sealed).
    pub fn save(&self, rank: usize, state: &CheckpointState, stats: ResumeStats) {
        let encoded = state.encode();
        *lock(&self.slots[rank]) = Some(Saved { encoded, stats });
        self.saves.fetch_add(1, Ordering::Relaxed);
    }

    /// Decode-verify and return `rank`'s snapshot; `None` when the slot
    /// is empty or its envelope fails verification.
    pub fn load(&self, rank: usize) -> Option<(CheckpointState, ResumeStats)> {
        let slot = lock(&self.slots[rank]);
        let saved = slot.as_ref()?;
        let state = CheckpointState::decode(&saved.encoded)?;
        Some((state, saved.stats.clone()))
    }

    /// The iteration every rank's slot verifiably holds — `Some(k)`
    /// only when all slots decode and agree. This is the resume gate:
    /// the engine's unwind points guarantee agreement (see module doc),
    /// so `None` means "no usable checkpoint", never "partial one".
    pub fn common_iter(&self) -> Option<u32> {
        let mut common: Option<u32> = None;
        for slot in &self.slots {
            let guard = lock(slot);
            let iter = CheckpointState::decode(&guard.as_ref()?.encoded)?.iter;
            match common {
                None => common = Some(iter),
                Some(c) if c != iter => return None,
                Some(_) => {}
            }
        }
        common
    }

    /// Total snapshots taken over this store's lifetime.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }
}

/// A rank that panics never does so while holding a slot lock (saves
/// and loads are short, between collectives), but the unwinding of a
/// *different* rank must not wedge this one: take the data regardless.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        let mut hub_curr = Bitmap::new(130);
        hub_curr.set(0);
        hub_curr.set(129);
        let mut hub_visited = Bitmap::new(130);
        hub_visited.set(64);
        let mut l_curr = Bitmap::new(10);
        l_curr.set(3);
        let l_visited = Bitmap::new(10);
        CheckpointState {
            iter: 4,
            active_l: 7,
            visited_l: 21,
            sim_seconds: 0.125,
            hub_curr,
            hub_visited,
            hub_parent: vec![5, u64::MAX, 9],
            l_curr,
            l_visited,
            l_parent: vec![1, 2, 3],
            frontier_mass: [11, 0, 42],
            visited_mass: [100, 7, 300],
            prev_dirs: [
                Direction::Pull,
                Direction::Push,
                Direction::Push,
                Direction::Pull,
                Direction::Push,
                Direction::Pull,
            ],
        }
    }

    #[test]
    fn direction_word_round_trips_and_rejects_stray_bits() {
        let dirs = sample_state().prev_dirs;
        assert_eq!(unpack_dirs(pack_dirs(&dirs)), Some(dirs));
        assert_eq!(unpack_dirs(0), Some([Direction::Push; 6]));
        assert_eq!(unpack_dirs(1 << 6), None, "bits past the six components");
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = sample_state();
        let bytes = s.encode();
        assert_eq!(CheckpointState::decode(&bytes).as_ref(), Some(&s));
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let s = sample_state();
        let bytes = s.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                CheckpointState::decode(&bad),
                None,
                "flip at byte {i} must be caught"
            );
        }
    }

    #[test]
    fn truncation_and_extension_are_rejected() {
        let bytes = sample_state().encode();
        for cut in [0, 1, 8, bytes.len() - 1] {
            assert_eq!(CheckpointState::decode(&bytes[..cut]), None);
        }
        let mut longer = bytes.clone();
        longer.extend_from_slice(&[0u8; 8]);
        assert_eq!(CheckpointState::decode(&longer), None);
    }

    #[test]
    fn store_tracks_saves_and_common_iter() {
        let store = CheckpointStore::new(2);
        assert_eq!(store.common_iter(), None, "empty store has no checkpoint");
        assert!(store.load(0).is_none());
        let s = sample_state();
        store.save(0, &s, ResumeStats::default());
        assert_eq!(store.common_iter(), None, "rank 1 still missing");
        store.save(1, &s, ResumeStats::default());
        assert_eq!(store.common_iter(), Some(4));
        let mut later = s.clone();
        later.iter = 5;
        store.save(0, &later, ResumeStats::default());
        assert_eq!(store.common_iter(), None, "disagreeing iters are unusable");
        store.save(1, &later, ResumeStats::default());
        assert_eq!(store.common_iter(), Some(5));
        assert_eq!(store.saves(), 4);
        let (loaded, _) = store.load(0).expect("verified slot loads");
        assert_eq!(loaded, later);
    }
}
