//! Minimal hand-rolled JSON serialization.
//!
//! The build container has no crates.io access, so `serde_json` is not
//! an option; the observability layer only needs to *emit* JSON (never
//! parse it), which this module covers with a small value tree.
//!
//! Object keys keep **insertion order** (a `Vec` of pairs, not a map):
//! emitted reports are deterministic byte-for-byte, which the golden
//! schema test relies on.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, ids).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    pub fn object() -> JsonObject {
        JsonObject { fields: Vec::new() }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Render with 2-space indentation (human-readable reports).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps round-trip precision and always
                    // includes a decimal point or exponent.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_sep(out, indent);
                    item.write(out, indent.map(|d| d + 1));
                }
                write_close(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_sep(out, indent);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                write_close(out, indent);
                out.push('}');
            }
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str("  ");
        }
    }
}

fn write_close(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Fluent insertion-ordered object builder.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Append a field (keys are kept in insertion order).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finish into a [`JsonValue::Object`].
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

impl From<JsonObject> for JsonValue {
    fn from(o: JsonObject) -> JsonValue {
        o.build()
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<u32> for JsonValue {
    fn from(x: u32) -> JsonValue {
        JsonValue::UInt(x as u64)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> JsonValue {
        JsonValue::UInt(x)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> JsonValue {
        JsonValue::UInt(x as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(x: i64) -> JsonValue {
        JsonValue::Int(x)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(items)
    }
}

/// Types that can serialize themselves into a [`JsonValue`].
pub trait ToJson {
    /// Convert into a JSON value tree.
    fn to_json(&self) -> JsonValue;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

impl ToJson for crate::SimTime {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(self.as_secs())
    }
}

impl ToJson for crate::TimeAccumulator {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries()
                .map(|(k, v)| (k.to_string(), JsonValue::Float(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimTime, TimeAccumulator};

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::UInt(42).render(), "42");
        assert_eq!(JsonValue::Int(-7).render(), "-7");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(JsonValue::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object()
            .field("z", 1u64)
            .field("a", 2u64)
            .build();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let v = JsonValue::object()
            .field("xs", vec![JsonValue::UInt(1), JsonValue::UInt(2)])
            .field("inner", JsonValue::object().field("ok", true))
            .build();
        assert_eq!(v.render(), r#"{"xs":[1,2],"inner":{"ok":true}}"#);
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let v = JsonValue::object()
            .field("a", vec![JsonValue::UInt(1)])
            .build();
        let s = v.render_pretty();
        assert!(s.contains("\n  \"a\": [\n    1\n  ]\n"), "got: {s}");
    }

    #[test]
    fn simtime_and_accumulator_serialize() {
        assert_eq!(SimTime::secs(0.25).to_json().render(), "0.25");
        let mut acc = TimeAccumulator::new();
        acc.add("b", SimTime::secs(2.0));
        acc.add("a", SimTime::secs(1.0));
        // BTreeMap entries: lexicographic, deterministic.
        assert_eq!(acc.to_json().render(), r#"{"a":1.0,"b":2.0}"#);
    }
}
