//! The query service: bounded admission queue, deadline-driven batch
//! formation, batched execution with per-root fallback.
//!
//! State machine (documented in `docs/SERVE.md`):
//!
//! ```text
//!            submit()                tick()/drain()
//! client ──▶ [pending queue] ──▶ [batch of ≤ batch_max] ──▶ execute
//!               │  full?                                      │
//!               ▼                                             ▼
//!          reject (QueueFull)               all ranks Ok ── served
//!                                           rank lost ──── fallback:
//!                                                          per-root
//!                                                          recoverable
//!                                                          runs, then
//!                                                          served or
//!                                                          quarantined
//! ```
//!
//! Backpressure is explicit: a full queue rejects with a typed reason
//! instead of blocking, and the caller decides whether to retry after
//! ticking the service. Batch formation is deterministic — a batch
//! flushes when `batch_max` queries are pending or when the oldest
//! pending query has waited `flush_deadline` ticks — so tests can pin
//! occupancy exactly.
//!
//! Fault containment: a lost rank during a batch degrades *only that
//! batch's riders* — each rider falls back to its own checkpointed
//! single-source run with bounded retries (the PR 2/3 machinery), and
//! the resident [`GraphSession`] is never rebuilt or invalidated.
//!
//! Above containment sits a **health state machine**
//! (`Healthy → Degraded → Quarantined → Recovering`, `docs/FAULTS.md`):
//! per-batch outcomes feed a sliding failure window; crossing the
//! threshold opens a circuit breaker that sheds new submissions with
//! typed `service_degraded` rejections (plus `retry_after_ticks`
//! hints) until a tick-driven recovery probe half-opens it and clean
//! batches close the loop. Queries may also carry a **deadline
//! budget** ([`BfsService::submit_with_deadline`]): one still queued
//! past its budget is evicted with a typed `deadline_exceeded` result
//! instead of consuming a batch slot. A seeded [`ChaosConfig`] can arm
//! live faults against the resident cluster at a query cadence — the
//! soak harness's chaos source.
//!
//! The graph itself can move under the service
//! ([`BfsService::apply_updates`], `docs/UPDATES.md`): update batches
//! commit only on the single service thread *between* query batches,
//! bump the session epoch, and every reply is stamped with the epoch
//! its snapshot was taken at. While committed inserts sit in the delta
//! overlay, the batch engine still runs against the base CSRs and each
//! assembled result is patched by incremental repair into the exact
//! union-graph answer. A seeded [`UpdatePlan`] (`SUNBFS_UPDATE_PLAN`)
//! fires scripted update batches at executed-query milestones, the
//! same fire-once shape as the fault plan.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use sunbfs_common::{Edge, SplitMix64, INVALID_VERTEX};
use sunbfs_core::{validate, BatchOutput, BfsOutput, CheckpointStore, EngineError};
use sunbfs_mutate::UpdatePlan;
use sunbfs_net::{CorruptMode, FaultEvent, FaultKind};

use crate::report::{BatchRecord, HealthTransition, QueryRecord, ServeReport};
use crate::session::{GraphSession, SessionError};
use crate::MAX_BATCH;

/// Service knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Pending queries the queue admits before rejecting.
    pub queue_capacity: usize,
    /// Widest batch to form (clamped to the engine's 64-root word).
    pub batch_max: usize,
    /// Ticks the oldest pending query waits before a partial batch
    /// flushes anyway.
    pub flush_deadline: u32,
    /// Retries a fallback (per-root) run gets before quarantine.
    pub max_root_retries: u32,
    /// Also run each batch's roots through the sequential single-source
    /// path and record the comparison (costs one extra SPMD pass per
    /// batch; for benchmarking, not serving).
    pub measure_baseline: bool,
    /// Health state machine thresholds (`docs/FAULTS.md`).
    pub health: HealthConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            batch_max: MAX_BATCH,
            flush_deadline: 4,
            max_root_retries: 2,
            measure_baseline: false,
            health: HealthConfig::default(),
        }
    }
}

/// Thresholds of the service health state machine
/// (`Healthy → Degraded → Quarantined → Recovering`, `docs/FAULTS.md`).
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Sliding window of recent batches over which failures are judged.
    pub window: usize,
    /// Failed batches within the window that trip the circuit breaker
    /// (`Degraded → Quarantined`).
    pub quarantine_failures: u32,
    /// Quiet ticks a quarantined service waits before the recovery
    /// probe half-opens the breaker (`Quarantined → Recovering`).
    pub probe_after_ticks: u32,
    /// Consecutive clean batches that close the loop
    /// (`Recovering → Healthy`).
    pub recovery_batches: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 8,
            quarantine_failures: 3,
            probe_after_ticks: 16,
            recovery_batches: 2,
        }
    }
}

/// The service's health, as a closed state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// No recent batch failures; full admission.
    Healthy,
    /// At least one recent batch degraded (fallback or quarantine);
    /// admission stays open while the window is watched.
    Degraded,
    /// The breaker is open: failures crossed the window threshold, and
    /// new queries are shed with typed `service_degraded` rejections
    /// until a recovery probe fires.
    Quarantined,
    /// Half-open: a probe (or a first clean batch) is letting traffic
    /// prove the service healthy again.
    Recovering,
}

impl HealthState {
    /// Stable label used in JSON replies and the report.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Recovering => "recovering",
        }
    }
}

/// The health state machine: batch outcomes and ticks in, transitions
/// out. Pure bookkeeping — no clock, no I/O — so tests can script it.
#[derive(Debug)]
pub struct HealthMachine {
    cfg: HealthConfig,
    state: HealthState,
    /// Outcomes of the last `cfg.window` batches (true = failed).
    window: VecDeque<bool>,
    consecutive_clean: u32,
    /// Tick of the most recent failure while quarantined (the probe
    /// timer's epoch).
    quarantined_at: u64,
    transitions: Vec<HealthTransition>,
}

impl HealthMachine {
    /// A healthy machine with `cfg` thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMachine {
            cfg: HealthConfig {
                window: cfg.window.max(1),
                quarantine_failures: cfg.quarantine_failures.max(1),
                probe_after_ticks: cfg.probe_after_ticks.max(1),
                recovery_batches: cfg.recovery_batches.max(1),
            },
            state: HealthState::Healthy,
            window: VecDeque::new(),
            consecutive_clean: 0,
            quarantined_at: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Every transition so far, in order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    fn goto(&mut self, to: HealthState, at_tick: u64, reason: String) {
        self.transitions.push(HealthTransition {
            from: self.state.label(),
            to: to.label(),
            at_tick,
            reason,
        });
        self.state = to;
    }

    fn window_failures(&self) -> u32 {
        self.window.iter().filter(|&&f| f).count() as u32
    }

    /// Record one executed batch (`failed` = it fell back to per-root
    /// recovery or quarantined a rider) at tick `now`.
    pub fn on_batch(&mut self, failed: bool, now: u64) {
        self.window.push_back(failed);
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
        if failed {
            self.consecutive_clean = 0;
        } else {
            self.consecutive_clean += 1;
        }
        match self.state {
            HealthState::Healthy => {
                if failed {
                    self.goto(
                        HealthState::Degraded,
                        now,
                        "batch degraded (fallback or quarantine)".into(),
                    );
                }
            }
            HealthState::Degraded => {
                if self.window_failures() >= self.cfg.quarantine_failures {
                    self.quarantined_at = now;
                    self.goto(
                        HealthState::Quarantined,
                        now,
                        format!(
                            "{} of last {} batches failed",
                            self.window_failures(),
                            self.window.len()
                        ),
                    );
                } else if !failed {
                    self.goto(HealthState::Recovering, now, "clean batch".into());
                }
            }
            HealthState::Recovering => {
                if failed {
                    self.quarantined_at = now;
                    self.goto(
                        HealthState::Quarantined,
                        now,
                        "batch failed during recovery".into(),
                    );
                } else if self.consecutive_clean >= self.cfg.recovery_batches {
                    self.window.clear();
                    self.goto(
                        HealthState::Healthy,
                        now,
                        format!("{} consecutive clean batches", self.consecutive_clean),
                    );
                }
            }
            HealthState::Quarantined => {
                // Pre-quarantine queue still drains; a failure re-arms
                // the probe timer, clean batches wait for the probe.
                if failed {
                    self.quarantined_at = now;
                }
            }
        }
    }

    /// Advance the probe timer to tick `now`.
    pub fn on_tick(&mut self, now: u64) {
        if self.state == HealthState::Quarantined
            && now.saturating_sub(self.quarantined_at) >= u64::from(self.cfg.probe_after_ticks)
        {
            self.window.clear();
            self.consecutive_clean = 0;
            self.goto(
                HealthState::Recovering,
                now,
                format!(
                    "recovery probe after {} quiet ticks",
                    self.cfg.probe_after_ticks
                ),
            );
        }
    }

    /// When the breaker is shedding load, the ticks a client should
    /// wait before retrying (until the next recovery probe).
    pub fn shed(&self, now: u64) -> Option<u32> {
        if self.state != HealthState::Quarantined {
            return None;
        }
        let waited = now.saturating_sub(self.quarantined_at);
        let left = u64::from(self.cfg.probe_after_ticks).saturating_sub(waited);
        Some(left.clamp(1, u64::from(u32::MAX)) as u32)
    }
}

/// A seeded live-chaos schedule: the service arms one fault against its
/// own cluster every `every_queries` executed queries, cycling panic /
/// straggler / corrupt kinds deterministically. Requires the session's
/// [`FaultPlan`](sunbfs_net::FaultPlan) to be
/// [`armed`](sunbfs_net::FaultPlan::armed) (or already non-empty) so
/// payload framing stays SPMD-consistent.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed of the deterministic rank/op-index placement stream.
    pub seed: u64,
    /// Arm one fault per this many executed queries.
    pub every_queries: u64,
    /// Collective-index horizon faults are placed in (`op_index` drawn
    /// from `[0, horizon)`; small values fire early in the next batch).
    pub horizon: u64,
    /// Simulated seconds each armed straggler delays its rank.
    pub straggler_secs: f64,
    /// Stop arming after this many events (0 = unbounded). A bounded
    /// schedule leaves a clean tail so soaks can watch recovery close.
    pub max_events: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            every_queries: 64,
            horizon: 48,
            straggler_secs: 0.05,
            max_events: 0,
        }
    }
}

/// Live-chaos bookkeeping between batches.
#[derive(Debug)]
struct ChaosState {
    cfg: ChaosConfig,
    rng: SplitMix64,
    /// Executed queries since the last armed event.
    since: u64,
    injected: u64,
    panics: u64,
    stragglers: u64,
    corruptions: u64,
}

/// Ticket for a submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Typed admission-control rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The pending queue is at capacity — back off and tick.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
        /// Ticks until the queue is expected to have room again: the
        /// next tick when a full batch is already waiting, otherwise
        /// the remaining partial-batch deadline. Clients should wait
        /// this many ticks before resubmitting instead of hot-looping.
        retry_after_ticks: u32,
    },
    /// The root is not a vertex of the resident graph.
    InvalidRoot {
        /// The rejected root.
        root: u64,
        /// Vertices in the resident graph.
        num_vertices: u64,
    },
    /// The health breaker is open ([`HealthState::Quarantined`]): the
    /// service is shedding load instead of queueing queries it would
    /// likely degrade.
    ServiceDegraded {
        /// The health state's stable label at rejection time.
        state: &'static str,
        /// Ticks until the next recovery probe — retry then.
        retry_after_ticks: u32,
    },
}

impl RejectReason {
    /// Stable label used in JSON replies and the report.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::InvalidRoot { .. } => "invalid_root",
            RejectReason::ServiceDegraded { .. } => "service_degraded",
        }
    }

    /// The backoff hint, when this rejection is retryable at all.
    /// `QueueFull` clears after a flush, `ServiceDegraded` after a
    /// recovery probe; an invalid root never will.
    pub fn retry_after_ticks(&self) -> Option<u32> {
        match self {
            RejectReason::QueueFull {
                retry_after_ticks, ..
            }
            | RejectReason::ServiceDegraded {
                retry_after_ticks, ..
            } => Some(*retry_after_ticks),
            RejectReason::InvalidRoot { .. } => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull {
                capacity,
                retry_after_ticks,
            } => {
                write!(
                    f,
                    "queue full (capacity {capacity}); retry after {retry_after_ticks} tick(s)"
                )
            }
            RejectReason::InvalidRoot { root, num_vertices } => {
                write!(f, "root {root} outside vertex range [0, {num_vertices})")
            }
            RejectReason::ServiceDegraded {
                state,
                retry_after_ticks,
            } => {
                write!(
                    f,
                    "service {state}: shedding load; retry after {retry_after_ticks} tick(s)"
                )
            }
        }
    }
}

/// Why a query was quarantined instead of served.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// Stable category label (`engine` / `rank_failure` / `tree`).
    pub label: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Terminal status of a completed query.
#[derive(Clone, Debug)]
pub enum QueryStatus {
    /// The traversal completed; the result carries the parent tree.
    Served,
    /// Every recovery avenue was exhausted; no tree for this query.
    Quarantined(Quarantine),
    /// The query's deadline budget expired while it waited in the
    /// admission queue; it was evicted without consuming a batch slot.
    DeadlineExceeded {
        /// The budget it carried.
        deadline_ticks: u32,
        /// Ticks it actually waited before eviction.
        waited_ticks: u64,
    },
}

impl QueryStatus {
    /// Stable label used in JSON replies and the report.
    pub fn label(&self) -> &'static str {
        match self {
            QueryStatus::Served => "served",
            QueryStatus::Quarantined(_) => "quarantined",
            QueryStatus::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }
}

/// A completed query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The ticket [`BfsService::submit`] returned.
    pub id: QueryId,
    /// The query's root vertex.
    pub root: u64,
    /// The batch this query rode in (`None` when it never rode one —
    /// deadline eviction happens before batch formation).
    pub batch_id: Option<u64>,
    /// Served or quarantined.
    pub status: QueryStatus,
    /// Handle to the assembled global parent array (`n` entries,
    /// [`INVALID_VERTEX`] where unreached); `None` when quarantined.
    pub parents: Option<Arc<Vec<u64>>>,
    /// Vertices at each BFS depth (index = depth; root at 0).
    pub depth_histogram: Vec<u64>,
    /// Vertices reached.
    pub visited: u64,
    /// The engine's degree-sum estimate of traversed edges (duplicate
    /// generator edges count per entry).
    pub engine_traversed_edges: u64,
    /// Simulated seconds the serving traversal took (the batch's time
    /// for batched riders; the per-root time on the fallback path).
    pub sim_latency_s: f64,
    /// Wall-clock seconds the execution took on the host.
    pub wall_latency_s: f64,
    /// True when this query was served by the per-root recovery path
    /// instead of the batch engine.
    pub via_fallback: bool,
    /// The session epoch this query's snapshot was taken at (updates
    /// commit only between batches, so the stamp names a consistent
    /// graph version).
    pub epoch: u64,
}

struct Pending {
    id: QueryId,
    root: u64,
    /// Service tick at admission (deadline epoch).
    admitted_tick: u64,
    /// Optional deadline budget in ticks.
    deadline_ticks: Option<u32>,
}

/// A point-in-time view of the service's health, for the `health`
/// request of both transports.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Current state's stable label.
    pub state: &'static str,
    /// Service ticks elapsed.
    pub ticks: u64,
    /// Every health transition so far, in order.
    pub transitions: Vec<HealthTransition>,
    /// Pending (admitted, not yet executed) queries.
    pub queue_depth: usize,
    /// Queries served.
    pub served: u64,
    /// Queries quarantined.
    pub quarantined: u64,
    /// Queries evicted at their deadline.
    pub deadline_exceeded: u64,
    /// Submissions shed by the open breaker.
    pub rejected_degraded: u64,
}

/// The BFS query service over one resident [`GraphSession`].
pub struct BfsService {
    session: GraphSession,
    cfg: ServeConfig,
    pending: VecDeque<Pending>,
    /// Ticks the oldest pending query has waited.
    age: u32,
    /// Monotonic service clock ([`Self::tick`] calls).
    ticks: u64,
    next_id: u64,
    next_batch: u64,
    health: HealthMachine,
    chaos: Option<ChaosState>,
    update_plan: Option<UpdatePlan>,
    /// Queries executed so far — the clock scripted updates fire on.
    executed_queries: u64,
    report: ServeReport,
}

impl BfsService {
    /// Wrap a loaded session in service mechanics.
    pub fn new(session: GraphSession, cfg: ServeConfig) -> Self {
        let mut cfg = cfg;
        cfg.batch_max = cfg.batch_max.clamp(1, MAX_BATCH);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        let report = ServeReport {
            queue_capacity: cfg.queue_capacity,
            batch_max: cfg.batch_max,
            flush_deadline: cfg.flush_deadline,
            build_sim_seconds: session.build_sim_seconds,
            load_sim_seconds: session.load_sim_seconds,
            load_attempts: session.load_attempts,
            ..ServeReport::default()
        };
        BfsService {
            session,
            health: HealthMachine::new(cfg.health),
            cfg,
            pending: VecDeque::new(),
            age: 0,
            ticks: 0,
            next_id: 0,
            next_batch: 0,
            chaos: None,
            update_plan: None,
            executed_queries: 0,
            report,
        }
    }

    /// Arm a seeded live-chaos schedule: before executing batches, the
    /// service injects faults into its own cluster's
    /// [`FaultPlan`](sunbfs_net::FaultPlan) at the configured query
    /// cadence. The session should have been built with
    /// [`FaultPlan::armed`](sunbfs_net::FaultPlan::armed) (injection on
    /// a still-empty unarmed plan is only safe between runs, which this
    /// single-threaded service guarantees — but an armed plan keeps
    /// payload framing on from the first batch, making runs uniform).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(ChaosState {
            rng: SplitMix64::new(chaos.seed ^ 0xC4A0_5C4A_05C4_A05C),
            cfg: ChaosConfig {
                every_queries: chaos.every_queries.max(1),
                horizon: chaos.horizon.max(1),
                ..chaos
            },
            since: 0,
            injected: 0,
            panics: 0,
            stragglers: 0,
            corruptions: 0,
        });
        self
    }

    /// Arm a scripted update schedule: before each batch executes, any
    /// event whose executed-query milestone has passed fires its
    /// seeded edge batch through [`Self::apply_updates`], exactly once
    /// (the `SUNBFS_UPDATE_PLAN` grammar, `docs/UPDATES.md`).
    pub fn with_update_plan(mut self, plan: UpdatePlan) -> Self {
        self.update_plan = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// The resident session (topology, fault log, partition stats).
    pub fn session(&self) -> &GraphSession {
        &self.session
    }

    /// Commit one batched edge-insert against the resident session and
    /// bump the epoch. Safe exactly because the service is
    /// single-threaded: callers (transport loop, update plan) only
    /// reach this between query batches, so in-flight queries never
    /// observe a half-applied update.
    ///
    /// # Errors
    /// [`SessionError`] when the routing pass or a triggered
    /// compaction loses ranks; the session keeps its pre-commit state.
    pub fn apply_updates(&mut self, edges: &[Edge]) -> Result<u64, SessionError> {
        match self.session.apply_updates(edges) {
            Ok(epoch) => {
                self.report.updates_applied += 1;
                self.report.update_edges += edges.len() as u64;
                self.report.epoch = epoch;
                self.report.compactions = self.session.compactions();
                Ok(epoch)
            }
            Err(e) => {
                self.report.updates_failed += 1;
                Err(e)
            }
        }
    }

    /// Fire every due scripted update (at most once each), charged by
    /// executed-query count. A commit that fails (chaos can kill the
    /// routing pass too) is counted and skipped — the plan's fire-once
    /// semantics are not re-armed, matching the fault plan's shape.
    fn fire_update_plan(&mut self) {
        let Some(plan) = self.update_plan.clone() else {
            return;
        };
        let root_max = self.session.num_vertices();
        while let Some(edges) = plan.fire(self.executed_queries, root_max) {
            let _ = self.apply_updates(&edges);
        }
    }

    /// The knobs this service runs with (after clamping).
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Ticks until the pending queue is expected to shrink: 1 when a
    /// full batch is already waiting (the next tick flushes it),
    /// otherwise the ticks left until the partial-batch deadline fires.
    fn retry_after_ticks(&self) -> u32 {
        if self.pending.len() >= self.cfg.batch_max {
            1
        } else {
            self.cfg.flush_deadline.saturating_sub(self.age).max(1)
        }
    }

    /// Pending (admitted, not yet executed) queries.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// The service clock: [`Self::tick`] calls so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Current health state.
    pub fn health(&self) -> HealthState {
        self.health.state()
    }

    /// Point-in-time health view for the `health` request.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            state: self.health.state().label(),
            ticks: self.ticks,
            transitions: self.health.transitions().to_vec(),
            queue_depth: self.pending.len(),
            served: self.report.served,
            quarantined: self.report.quarantined,
            deadline_exceeded: self.report.deadline_exceeded,
            rejected_degraded: self.report.rejected_degraded,
        }
    }

    /// Admit one query with no deadline budget.
    pub fn submit(&mut self, root: u64) -> Result<QueryId, RejectReason> {
        self.submit_with_deadline(root, None)
    }

    /// Admit one query, or reject with a typed reason. Admission never
    /// executes anything — traversal happens at [`Self::tick`] /
    /// [`Self::drain`] time. A query carrying `deadline_ticks` is
    /// evicted with a typed `deadline_exceeded` result if it is still
    /// queued after that many ticks (`0` = only a full-batch flush in
    /// the admission tick can serve it).
    pub fn submit_with_deadline(
        &mut self,
        root: u64,
        deadline_ticks: Option<u32>,
    ) -> Result<QueryId, RejectReason> {
        if let Some(hint) = self.health.shed(self.ticks) {
            self.report.rejected_degraded += 1;
            return Err(RejectReason::ServiceDegraded {
                state: self.health.state().label(),
                retry_after_ticks: hint,
            });
        }
        let n = self.session.num_vertices();
        if root >= n {
            self.report.rejected_invalid += 1;
            return Err(RejectReason::InvalidRoot {
                root,
                num_vertices: n,
            });
        }
        if self.pending.len() >= self.cfg.queue_capacity {
            self.report.rejected_full += 1;
            return Err(RejectReason::QueueFull {
                capacity: self.cfg.queue_capacity,
                retry_after_ticks: self.retry_after_ticks(),
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Pending {
            id,
            root,
            admitted_tick: self.ticks,
            deadline_ticks,
        });
        self.report.submitted += 1;
        self.report.max_queue_depth = self.report.max_queue_depth.max(self.pending.len());
        Ok(id)
    }

    /// Advance the batch-formation clock one tick: flush every full
    /// batch, evict queries past their deadline budget, then flush a
    /// partial batch if the oldest pending query has waited
    /// `flush_deadline` ticks. Returns queries completed by this tick
    /// (served, quarantined, or deadline-evicted).
    pub fn tick(&mut self) -> Vec<QueryResult> {
        self.ticks += 1;
        let mut out = Vec::new();
        while self.pending.len() >= self.cfg.batch_max {
            out.extend(self.flush_one());
        }
        // Deadlines strike after full-batch flushes: an expiring query
        // that a ready batch would serve this tick still rides it.
        out.extend(self.evict_expired());
        if self.pending.is_empty() {
            self.age = 0;
        } else {
            self.age += 1;
            if self.age >= self.cfg.flush_deadline {
                out.extend(self.flush_one());
                self.age = 0;
            }
        }
        self.health.on_tick(self.ticks);
        out
    }

    /// Flush everything pending, regardless of flush deadlines — but
    /// queries past their own deadline budget are still evicted, not
    /// executed (the shutdown drain must not spend batch slots on
    /// replies nobody is waiting for).
    pub fn drain(&mut self) -> Vec<QueryResult> {
        let mut out = self.evict_expired();
        while !self.pending.is_empty() {
            out.extend(self.flush_one());
        }
        self.age = 0;
        out
    }

    /// Evict every pending query whose deadline budget expired, each
    /// into a typed `deadline_exceeded` result.
    fn evict_expired(&mut self) -> Vec<QueryResult> {
        let now = self.ticks;
        let epoch = self.session.epoch();
        let mut out = Vec::new();
        self.pending.retain(|p| {
            let Some(deadline) = p.deadline_ticks else {
                return true;
            };
            let waited = now.saturating_sub(p.admitted_tick);
            if waited < u64::from(deadline) {
                return true;
            }
            out.push(QueryResult {
                id: p.id,
                root: p.root,
                batch_id: None,
                status: QueryStatus::DeadlineExceeded {
                    deadline_ticks: deadline,
                    waited_ticks: waited,
                },
                parents: None,
                depth_histogram: Vec::new(),
                visited: 0,
                engine_traversed_edges: 0,
                sim_latency_s: 0.0,
                wall_latency_s: 0.0,
                via_fallback: false,
                epoch,
            });
            false
        });
        self.report.deadline_exceeded += out.len() as u64;
        for r in &out {
            self.report.queries.push(QueryRecord {
                id: r.id.0,
                root: r.root,
                batch_id: None,
                status: r.status.label(),
                sim_latency_s: 0.0,
                wall_latency_s: 0.0,
                via_fallback: false,
            });
        }
        out
    }

    /// Snapshot of the service's observability report.
    pub fn report(&self) -> ServeReport {
        let mut r = self.report.clone();
        r.current_queue_depth = self.pending.len();
        r.ticks = self.ticks;
        r.health = self.health.state().label();
        r.health_transitions = self.health.transitions().to_vec();
        r
    }

    /// Form one batch from the queue head and execute it.
    fn flush_one(&mut self) -> Vec<QueryResult> {
        let take = self.pending.len().min(self.cfg.batch_max);
        let batch: Vec<Pending> = self.pending.drain(..take).collect();
        self.execute_batch(batch)
    }

    /// Arm the chaos schedule's next events against the live cluster,
    /// charged by executed-query count. Runs on the service thread
    /// between SPMD runs, so even an unarmed plan mutates safely.
    fn arm_chaos(&mut self, riders: usize) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        let num_ranks = self.session.num_ranks();
        chaos.since += riders as u64;
        let mut events = Vec::new();
        while chaos.since >= chaos.cfg.every_queries {
            chaos.since -= chaos.cfg.every_queries;
            if chaos.cfg.max_events > 0 && chaos.injected >= chaos.cfg.max_events {
                continue;
            }
            let rank = chaos.rng.next_below(num_ranks as u64) as usize;
            let op_index = chaos.rng.next_below(chaos.cfg.horizon);
            let kind = match chaos.injected % 4 {
                0 => {
                    chaos.panics += 1;
                    FaultKind::Panic
                }
                1 => {
                    chaos.stragglers += 1;
                    FaultKind::Straggler {
                        secs: chaos.cfg.straggler_secs,
                    }
                }
                2 => {
                    chaos.corruptions += 1;
                    FaultKind::Corrupt {
                        mode: CorruptMode::BitFlip,
                    }
                }
                _ => {
                    chaos.corruptions += 1;
                    FaultKind::Corrupt {
                        mode: CorruptMode::Truncate,
                    }
                }
            };
            chaos.injected += 1;
            events.push(FaultEvent {
                rank,
                op_index,
                kind,
            });
        }
        if !events.is_empty() {
            self.session.cluster().fault_plan().inject(events);
        }
        self.report.chaos_injected = chaos.injected;
        self.report.chaos_panics = chaos.panics;
        self.report.chaos_stragglers = chaos.stragglers;
        self.report.chaos_corruptions = chaos.corruptions;
    }

    fn execute_batch(&mut self, batch: Vec<Pending>) -> Vec<QueryResult> {
        // Updates land strictly between batches: any scripted update
        // whose milestone has passed commits now, before this batch's
        // snapshot is taken.
        self.fire_update_plan();
        self.arm_chaos(batch.len());
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let roots: Vec<u64> = batch.iter().map(|p| p.root).collect();
        let wall0 = Instant::now();
        let rank_results = self.session.run_batch(&roots);
        let mut oks = Vec::with_capacity(rank_results.len());
        let mut failures = Vec::new();
        for r in rank_results {
            match r {
                Ok(v) => oks.push(v),
                Err(f) => failures.push(f),
            }
        }
        let mut results;
        let fallback = !failures.is_empty();
        let mut sim_seconds = 0.0f64;
        if !fallback {
            // Engine errors are replicated: either every rank returned
            // the same Err, or every rank has a BatchOutput.
            match oks
                .into_iter()
                .collect::<Result<Vec<BatchOutput>, EngineError>>()
            {
                Ok(outs) => {
                    sim_seconds = outs.iter().fold(0.0, |m, o| m.max(o.stats.sim_seconds));
                    let wall = wall0.elapsed().as_secs_f64();
                    results = self.assemble_batch(&batch, batch_id, outs, sim_seconds, wall);
                }
                Err(e) => {
                    let wall = wall0.elapsed().as_secs_f64();
                    let epoch = self.session.epoch();
                    results = batch
                        .iter()
                        .map(|p| {
                            quarantined_result(
                                p,
                                batch_id,
                                Quarantine {
                                    label: "engine",
                                    detail: e.to_string(),
                                },
                                wall,
                                false,
                                epoch,
                            )
                        })
                        .collect();
                }
            }
        } else {
            // A rank died mid-batch: the batch's riders fall back to
            // individually recoverable single-source runs. The session
            // itself stays resident — planned faults fire once, so the
            // healed cluster serves the fallback (and later batches).
            results = Vec::with_capacity(batch.len());
            for p in &batch {
                let r = self.serve_fallback(p, batch_id);
                sim_seconds += r.sim_latency_s;
                results.push(r);
            }
        }
        let wall_seconds = wall0.elapsed().as_secs_f64();
        self.executed_queries += batch.len() as u64;

        // Optional sequential baseline over the same roots.
        let seq_sim_seconds = if self.cfg.measure_baseline {
            self.measure_sequential(&roots)
        } else {
            None
        };

        let served = results
            .iter()
            .filter(|r| matches!(r.status, QueryStatus::Served))
            .count();
        let quarantined = (results.len() - served) as u64;
        self.report.served += served as u64;
        self.report.quarantined += quarantined;
        self.report.batch_sim_seconds += sim_seconds;
        if let Some(s) = seq_sim_seconds {
            *self.report.sequential_sim_seconds.get_or_insert(0.0) += s;
        }
        self.report.occupancy_histogram[crate::report::occupancy_bucket(batch.len())] += 1;
        if fallback {
            self.report.fallback_batches += 1;
        }
        // Health: a batch "failed" when it lost its engine run (rank
        // loss → fallback) or quarantined a rider.
        self.health
            .on_batch(fallback || quarantined > 0, self.ticks);
        self.report.batches.push(BatchRecord {
            batch_id,
            occupancy: batch.len(),
            sim_seconds,
            wall_seconds,
            fallback,
            served: served as u64,
            quarantined,
            seq_sim_seconds,
        });
        for r in &results {
            self.report.queries.push(QueryRecord {
                id: r.id.0,
                root: r.root,
                batch_id: Some(batch_id),
                status: r.status.label(),
                sim_latency_s: r.sim_latency_s,
                wall_latency_s: r.wall_latency_s,
                via_fallback: r.via_fallback,
            });
        }
        results
    }

    /// Turn per-rank [`BatchOutput`]s into per-query results. The
    /// engine ran against the base CSRs; when a delta overlay is
    /// resident, each assembled result is patched by incremental
    /// repair into the exact union-graph answer before it leaves.
    fn assemble_batch(
        &mut self,
        batch: &[Pending],
        batch_id: u64,
        outs: Vec<BatchOutput>,
        sim_seconds: f64,
        wall_seconds: f64,
    ) -> Vec<QueryResult> {
        let n = self.session.num_vertices() as usize;
        let nb = batch.len();
        let dist = self.session.distribution();
        let has_delta = self.session.has_delta();
        let epoch = self.session.epoch();
        let mut results = Vec::with_capacity(nb);
        for (b, p) in batch.iter().enumerate() {
            let mut parents = vec![INVALID_VERTEX; n];
            let mut depths = vec![u64::MAX; n];
            for (rank, out) in outs.iter().enumerate() {
                let range = dist.range_of(rank);
                for li in 0..(range.end - range.start) as usize {
                    parents[range.start as usize + li] = out.parent_of(li, b);
                    let d = out.depth_of(li, b);
                    if d != sunbfs_core::UNREACHED_DEPTH {
                        depths[range.start as usize + li] = u64::from(d);
                    }
                }
            }
            let mut visited = outs[0].stats.visited[b];
            if has_delta {
                let stats = self.session.repair_result(&mut parents, &mut depths);
                self.report.repaired_queries += 1;
                self.report.repaired_vertices += stats.improved;
                visited = depths.iter().filter(|&&d| d != u64::MAX).count() as u64;
            }
            let mut histogram: Vec<u64> = Vec::new();
            for &d in &depths {
                if d == u64::MAX {
                    continue;
                }
                let d = d as usize;
                if histogram.len() <= d {
                    histogram.resize(d + 1, 0);
                }
                histogram[d] += 1;
            }
            results.push(QueryResult {
                id: p.id,
                root: p.root,
                batch_id: Some(batch_id),
                status: QueryStatus::Served,
                parents: Some(Arc::new(parents)),
                depth_histogram: histogram,
                visited,
                engine_traversed_edges: outs[0].stats.traversed_edges[b],
                sim_latency_s: sim_seconds,
                wall_latency_s: wall_seconds,
                via_fallback: false,
                epoch,
            });
        }
        results
    }

    /// Per-root recovery: checkpointed single-source runs with bounded
    /// retries, quarantining only when the budget is exhausted.
    fn serve_fallback(&mut self, p: &Pending, batch_id: u64) -> QueryResult {
        let wall0 = Instant::now();
        let budget = 1 + self.cfg.max_root_retries;
        let store = CheckpointStore::new(self.session.num_ranks());
        let epoch = self.session.epoch();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let mut oks = Vec::new();
            let mut failures = Vec::new();
            for r in self.session.run_single_recoverable(p.root, &store) {
                match r {
                    Ok(v) => oks.push(v),
                    Err(f) => failures.push(f),
                }
            }
            if failures.is_empty() {
                let wall = wall0.elapsed().as_secs_f64();
                return match oks
                    .into_iter()
                    .collect::<Result<Vec<BfsOutput>, EngineError>>()
                {
                    Ok(outs) => self.assemble_single(p, batch_id, outs, wall),
                    Err(e) => quarantined_result(
                        p,
                        batch_id,
                        Quarantine {
                            label: "engine",
                            detail: e.to_string(),
                        },
                        wall,
                        true,
                        epoch,
                    ),
                };
            }
            if attempts >= budget {
                let named: Vec<String> = failures
                    .iter()
                    .filter(|f| f.is_root_cause())
                    .map(|f| f.to_string())
                    .collect();
                return quarantined_result(
                    p,
                    batch_id,
                    Quarantine {
                        label: "rank_failure",
                        detail: format!("{attempts} attempts exhausted: {}", named.join("; ")),
                    },
                    wall0.elapsed().as_secs_f64(),
                    true,
                    epoch,
                );
            }
        }
    }

    fn assemble_single(
        &mut self,
        p: &Pending,
        batch_id: u64,
        outs: Vec<BfsOutput>,
        wall_seconds: f64,
    ) -> QueryResult {
        let sim = outs.iter().fold(0.0f64, |m, o| m.max(o.stats.sim_seconds));
        let epoch = self.session.epoch();
        let mut parents: Vec<u64> = outs
            .iter()
            .flat_map(|o| o.parents.iter().copied())
            .collect();
        let mut depths = match validate::levels_from_parents(p.root, &parents) {
            Ok(levels) => levels,
            Err(e) => {
                return quarantined_result(
                    p,
                    batch_id,
                    Quarantine {
                        label: "tree",
                        detail: format!("{e:?}"),
                    },
                    wall_seconds,
                    true,
                    epoch,
                );
            }
        };
        if self.session.has_delta() {
            let stats = self.session.repair_result(&mut parents, &mut depths);
            self.report.repaired_queries += 1;
            self.report.repaired_vertices += stats.improved;
        }
        let mut histogram: Vec<u64> = Vec::new();
        let mut visited = 0u64;
        for &lvl in &depths {
            if lvl == u64::MAX {
                continue;
            }
            visited += 1;
            let d = lvl as usize;
            if histogram.len() <= d {
                histogram.resize(d + 1, 0);
            }
            histogram[d] += 1;
        }
        QueryResult {
            id: p.id,
            root: p.root,
            batch_id: Some(batch_id),
            status: QueryStatus::Served,
            parents: Some(Arc::new(parents)),
            depth_histogram: histogram,
            visited,
            engine_traversed_edges: outs[0].stats.traversed_edges,
            sim_latency_s: sim,
            wall_latency_s: wall_seconds,
            via_fallback: true,
            epoch,
        }
    }

    /// The sequential baseline: the same roots, one at a time through
    /// the single-source engine in one SPMD pass (the driver's per-root
    /// loop shape). Returns the summed per-root simulated time, or
    /// `None` if a rank was lost mid-measurement.
    fn measure_sequential(&mut self, roots: &[u64]) -> Option<f64> {
        let mut per_root_max = vec![0.0f64; roots.len()];
        for rank_result in self.session.run_seq_loop(roots) {
            match rank_result {
                Err(_) => return None,
                Ok(outs) => {
                    for (ri, out) in outs.into_iter().enumerate() {
                        match out {
                            Ok(o) => per_root_max[ri] = per_root_max[ri].max(o.stats.sim_seconds),
                            Err(_) => return None,
                        }
                    }
                }
            }
        }
        Some(per_root_max.iter().sum())
    }
}

fn quarantined_result(
    p: &Pending,
    batch_id: u64,
    q: Quarantine,
    wall_seconds: f64,
    via_fallback: bool,
    epoch: u64,
) -> QueryResult {
    QueryResult {
        id: p.id,
        root: p.root,
        batch_id: Some(batch_id),
        status: QueryStatus::Quarantined(q),
        parents: None,
        depth_histogram: Vec::new(),
        visited: 0,
        engine_traversed_edges: 0,
        sim_latency_s: 0.0,
        wall_latency_s: wall_seconds,
        via_fallback,
        epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> HealthMachine {
        HealthMachine::new(HealthConfig {
            window: 4,
            quarantine_failures: 2,
            probe_after_ticks: 5,
            recovery_batches: 2,
        })
    }

    #[test]
    fn clean_batches_keep_the_machine_healthy() {
        let mut m = machine();
        for t in 1..10 {
            m.on_batch(false, t);
            m.on_tick(t);
        }
        assert_eq!(m.state(), HealthState::Healthy);
        assert!(m.transitions().is_empty());
        assert_eq!(m.shed(9), None);
    }

    #[test]
    fn failure_degrades_and_clean_batches_recover() {
        let mut m = machine();
        m.on_batch(true, 1);
        assert_eq!(m.state(), HealthState::Degraded);
        m.on_batch(false, 2);
        assert_eq!(m.state(), HealthState::Recovering);
        m.on_batch(false, 3);
        assert_eq!(m.state(), HealthState::Healthy);
        let path: Vec<(&str, &str)> = m.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            path,
            vec![
                ("healthy", "degraded"),
                ("degraded", "recovering"),
                ("recovering", "healthy"),
            ]
        );
        assert!(m.transitions().iter().all(|t| t.at_tick >= 1));
    }

    #[test]
    fn window_failures_quarantine_and_probe_half_opens() {
        let mut m = machine();
        m.on_batch(true, 1);
        m.on_batch(true, 2);
        assert_eq!(m.state(), HealthState::Quarantined, "2 of 4 failed");
        // Shedding with a hint counting down to the probe.
        assert_eq!(m.shed(2), Some(5));
        assert_eq!(m.shed(4), Some(3));
        m.on_tick(6);
        assert_eq!(m.state(), HealthState::Quarantined, "4 ticks is not yet 5");
        m.on_tick(7);
        assert_eq!(m.state(), HealthState::Recovering, "probe after 5 ticks");
        assert_eq!(m.shed(7), None);
        m.on_batch(false, 7);
        m.on_batch(false, 8);
        assert_eq!(m.state(), HealthState::Healthy);
    }

    #[test]
    fn failure_during_recovery_reopens_the_breaker() {
        let mut m = machine();
        m.on_batch(true, 1);
        m.on_batch(false, 2);
        assert_eq!(m.state(), HealthState::Recovering);
        m.on_batch(true, 3);
        assert_eq!(m.state(), HealthState::Quarantined);
        // A failing pre-quarantine batch re-arms the probe timer.
        m.on_batch(true, 6);
        m.on_tick(8);
        assert_eq!(m.state(), HealthState::Quarantined, "timer re-armed at 6");
        m.on_tick(11);
        assert_eq!(m.state(), HealthState::Recovering);
    }

    #[test]
    fn shed_hint_is_always_at_least_one_tick() {
        let mut m = machine();
        m.on_batch(true, 1);
        m.on_batch(true, 1);
        assert_eq!(m.state(), HealthState::Quarantined);
        // Even past the nominal probe time, the hint floors at 1.
        assert_eq!(m.shed(100), Some(1));
    }

    #[test]
    fn reject_reasons_carry_labels_and_hints() {
        let r = RejectReason::ServiceDegraded {
            state: "quarantined",
            retry_after_ticks: 7,
        };
        assert_eq!(r.label(), "service_degraded");
        assert_eq!(r.retry_after_ticks(), Some(7));
        assert!(r.to_string().contains("retry after 7"));
        assert_eq!(
            QueryStatus::DeadlineExceeded {
                deadline_ticks: 3,
                waited_ticks: 4
            }
            .label(),
            "deadline_exceeded"
        );
    }
}
