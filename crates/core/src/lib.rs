//! `sunbfs-core` — the distributed BFS engine of the paper.
//!
//! The primary contribution: direction-optimizing breadth-first search
//! over the 3-level degree-aware 1.5D partition, with
//!
//! * **sub-iteration direction optimization** (§4.2) — each of the six
//!   subgraph components picks push/pull independently per iteration
//!   ([`config`]), driven by either fixed count-ratio thresholds or the
//!   measured-degree heuristic family ([`DirectionHeuristic`]),
//! * **CG-aware core-subgraph segmenting** (§4.3) — the EH2EH pull
//!   probes source activeness through an LDM-distributed bit vector,
//! * **OCS-RMA messaging** (§4.4) — all remote-edge messages are
//!   bucketed on-chip before `alltoallv`, with hierarchical forwarding
//!   for the global L2L exchange,
//! * **delayed reduction of delegated parents** and **edge-aware
//!   vertex-cut balancing** (§5, [`balance`]),
//! * full Graph 500 validation and a sequential reference ([`validate`]),
//! * **iteration-level checkpoint/resume** ([`checkpoint`]) — every
//!   completed iteration snapshots the loop state so a faulted root
//!   resumes from its last verified checkpoint instead of restarting
//!   ([`run_bfs_recoverable`]).
//!
//! Entry point: [`run_bfs`], called SPMD from every rank of a
//! [`sunbfs_net::Cluster`] with the rank's [`sunbfs_part::RankPartition`].

#![warn(missing_docs)]

pub mod balance;
pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod costing;
pub mod engine;
pub mod stats;
pub mod validate;

pub use batch::{
    run_bfs_batch, BatchIterationStats, BatchOutput, BatchRunStats, MAX_BATCH_ROOTS,
    UNREACHED_DEPTH,
};
pub use checkpoint::{CheckpointState, CheckpointStore, ResumeStats};
pub use config::{choose_measured, Component, Direction, DirectionHeuristic, EngineConfig};
pub use engine::{run_bfs, run_bfs_recoverable, BfsOutput, EngineError};
pub use stats::{BfsRunStats, IterationStats, SubIterationStats};
pub use validate::{reference_bfs, validate_parents, ValidationError};
