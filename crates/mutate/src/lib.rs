//! `sunbfs-mutate` — live graph mutations over the static 1.5D partition.
//!
//! The paper's partition is built once and traversed forever; this crate
//! turns it into a **living graph** without giving up determinism or the
//! byte-identity contracts the rest of the workspace pins:
//!
//! * [`DeltaPartition`] ([`delta`]) — a per-rank insert overlay bucketed
//!   by the same E/H/L degree classes and the same six components as the
//!   base CSRs. Batched edge inserts are routed to their storage ranks
//!   through the existing exchange machinery ([`route_update_batch`]
//!   mirrors `build_1p5d` step 3, SPMD-consistent and deterministic),
//!   and every routing pass reports **class promotions** — owned
//!   vertices whose effective degree crossed `h_threshold` /
//!   `e_threshold` — so the session can compact before the replicated
//!   hub directory goes stale.
//! * [`UnionAdjacency`] ([`union`]) — a read-only adjacency view over
//!   base CSRs plus deltas, usable because the simulated cluster keeps
//!   every rank's partition in one address space. It backs both the
//!   sequential reference traversal ([`UnionAdjacency::full_bfs`]) and
//!   the repair pass.
//! * [`repair_in_place`] ([`repair`]) — **incremental BFS repair**:
//!   given a cached result computed at an older epoch and the committed
//!   insert batches since, re-expand only from endpoints whose depth
//!   improves instead of recomputing from the root. Inserts can only
//!   shrink distances, so relaxing the new edges to a fixpoint is exact;
//!   the equivalence tests pin depth-identity against a full recompute.
//! * [`UpdatePlan`] ([`plan`]) — a seeded `SUNBFS_UPDATE_PLAN` schedule
//!   grammar (`seed@42;insert@8:16`) reusing the `FaultPlan` fire-once
//!   machinery, so soaks and tests commit the same update batches at the
//!   same points in the query stream on every run.
//!
//! Epoch bookkeeping itself lives on `GraphSession` in `sunbfs-serve`
//! (`docs/UPDATES.md`); this crate supplies the mechanisms.

#![warn(missing_docs)]

pub mod delta;
pub mod plan;
pub mod repair;
pub mod union;

pub use delta::{canonical_edge_set, route_update_batch, DeltaPartition, DeltaUpdate};
pub use plan::{generate_batch, UpdateEvent, UpdatePlan};
pub use repair::{repair_in_place, RepairStats};
pub use union::UnionAdjacency;
