//! **Figure 12** — BFS performance under different degree thresholds.
//!
//! Paper (§6.2.1): on 256 nodes at SCALE 35 with a 16×16 mesh, a grid
//! over (E threshold × H threshold) shows (a) having H vertices at all
//! improves performance even without network oversubscription pressure,
//! and (b) the E threshold matters a lot. Cells with `E < H` are
//! meaningless (zeros in the paper's heatmap).
//!
//! This harness sweeps a proportionally scaled grid and prints the same
//! heatmap.

use sunbfs::driver::run_benchmark;
use sunbfs_bench::run_config;
use sunbfs_core::EngineConfig;
use sunbfs_part::Thresholds;

fn main() {
    let scale = 18;
    let ranks = 16;
    let roots = 2;
    // The paper sweeps H in {4096, 2048, 512, 128} and E in
    // {16384, 4096, 2048, 512} at SCALE 35; scaled to SCALE 15 degrees.
    let h_thresholds = [2048u32, 512, 128, 32];
    let e_thresholds = [8192u32, 2048, 512, 128];

    println!("=== Figure 12: GTEPS vs (E, H) thresholds (SCALE {scale}, {ranks} ranks) ===\n");
    println!("  rows: E threshold; cols: H threshold; '-' where E < H (meaningless)\n");
    print!("  E\\H      ");
    for h in h_thresholds {
        print!("{h:>9}");
    }
    println!();

    let mut grid = Vec::new();
    for &e in &e_thresholds {
        let mut row = Vec::new();
        print!("  {e:>7}  ");
        for &h in &h_thresholds {
            if e < h {
                print!("{:>9}", "-");
                row.push(None);
                continue;
            }
            let cfg = run_config(
                scale,
                ranks,
                Thresholds::new(e, h),
                EngineConfig::default(),
                roots,
            );
            let gteps = run_benchmark(&cfg)
                .expect("benchmark must pass")
                .harmonic_mean_gteps();
            print!("{gteps:>9.3}");
            row.push(Some(gteps));
        }
        println!();
        grid.push(row);
    }

    // Shape checks mirroring the paper's two observations.
    let best = grid
        .iter()
        .flatten()
        .flatten()
        .copied()
        .fold(f64::MIN, f64::max);
    // "Even at 256 nodes the existence of H brings improvement": the
    // best cell with a meaningful H split should beat the most
    // H-starved configuration (highest H threshold at highest E).
    let h_starved = grid[0][0].unwrap_or(0.0);
    println!("\n  best cell: {best:.3} GTEPS; most H-starved cell: {h_starved:.3} GTEPS");
    if best > h_starved {
        println!("  -> presence of H vertices improves performance (paper's first observation).");
    }
    println!("  -> E threshold shifts whole rows (paper's second observation: E affects both");
    println!("     communication and touched edges).");
}
