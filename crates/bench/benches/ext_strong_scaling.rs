//! **Extension** — strong scaling (not in the paper, which evaluates
//! weak scaling only in Figure 9).
//!
//! A fixed SCALE-19 graph is traversed on growing meshes (8-rank
//! supernodes, like the Figure 9 analog). Strong scaling is harsher
//! than weak scaling for BFS: per-rank message volume shrinks toward
//! the collective latency floor while the inter-supernode share grows,
//! so speedup saturates quickly — context for why Graph 500 machines
//! are compared at their *maximum* SCALE per size, not a fixed one.

use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs_common::MachineConfig;
use sunbfs_core::EngineConfig;
use sunbfs_net::MeshShape;
use sunbfs_part::Thresholds;

fn main() {
    let scale = 19;
    let roots = 2;
    println!("=== Extension: strong scaling at fixed SCALE {scale} (8-rank supernodes) ===\n");
    let mut rows = Vec::new();
    for mesh_rows in [1usize, 2, 4, 8] {
        let mesh = MeshShape::new(mesh_rows, 8);
        let cfg = RunConfig {
            scale,
            edge_factor: 16,
            mesh,
            thresholds: Thresholds::new(2048, 256),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            num_roots: roots,
            validate: false,
            faults: FaultSpec::NONE,
            max_root_retries: 2,
            serve_batch: false,
            serve_baseline: false,
            save_graph: None,
            load_graph: None,
        };
        let report = run_benchmark(&cfg).expect("benchmark must pass");
        let ranks = mesh.num_ranks();
        println!(
            "[{}x8 = {ranks} ranks] {:.3} GTEPS",
            mesh_rows,
            report.harmonic_mean_gteps()
        );
        rows.push((ranks, report.harmonic_mean_gteps()));
    }
    let base = rows[0].1;
    println!("\n  ranks   GTEPS    speedup   parallel efficiency");
    for (ranks, gteps) in &rows {
        println!(
            "  {ranks:>5}  {gteps:>7.3}   {:>6.2}x   {:>6.1}%",
            gteps / base,
            100.0 * (gteps / base) / (*ranks as f64 / 8.0)
        );
    }
    let last = rows.last().unwrap();
    println!(
        "\n  strong-scaling speedup at 8x the ranks: {:.2}x",
        last.1 / base
    );
    println!("  (BFS at fixed size saturates fast: shrinking per-rank volumes race toward");
    println!("   the collective latency floor while inter-supernode share grows — the");
    println!("   reason Graph 500 reports weak-scaled maximum-SCALE runs)");
    assert!(
        last.1 / base > 0.3 && last.1 / base < 9.0,
        "strong-scaling behavior left the plausible band: {:.2}x",
        last.1 / base
    );
}
