//! `loadgen` — drive the TCP `bfs_server` at a configured offered load
//! and emit the `serve_load` saturation artifact.
//!
//! Opens N connections, offers a total queries/sec for a duration,
//! settles every outstanding reply, then (by default) sends
//! `{"cmd":"shutdown"}` to exercise the server's graceful drain. The
//! run's accounting — offered/accepted/rejected, rejection classes,
//! `retry_after_ticks` coverage and honoring, deadline evictions,
//! p50/p99/p999 end-to-end latency — is printed as a schema-v9
//! `{"schema_version":10,"serve_load":{...}}` document (tables in
//! `docs/METRICS.md`), and optionally written to a file with
//! `--json PATH`.
//!
//! ```text
//! cargo run --release --example loadgen -- 127.0.0.1:4700 \
//!     --conns 4 --qps 400 --duration 4 --root-max 16384 --json OUT.json
//! ```
//!
//! Flags: `--conns N` (4), `--qps N` (200, total across connections),
//! `--duration SECS` (3), `--root-max N` (1024), `--seed N` (42),
//! `--settle-secs N` (30), `--no-shutdown` (leave the server running),
//! `--deadline-ticks N` (attach a deadline budget to every query),
//! `--retry-max N` (honor `retry_after_ticks` hints up to N re-offers
//! per query, default 0 = never retry), `--tick-hint-ms N` (wall-clock
//! estimate of one server tick for retry backoff, default 10),
//! `--update-every N` (interleave one live edge-insert batch per N
//! paced queries per connection, default 0 = read-only),
//! `--update-batch N` (edges per interleaved batch, default 4),
//! `--json PATH`. Unknown flags exit 2.
//!
//! Exit status: 0 when the run's invariants held (no lost, duplicated,
//! unacknowledged, or malformed replies), 1 otherwise — so CI can gate
//! on the process status alone.

use std::time::Duration;

use sunbfs::common::{JsonValue, ToJson};
use sunbfs::metrics::SCHEMA_VERSION;
use sunbfs::serve::{run_loadgen, LoadgenConfig};

struct Cli {
    cfg: LoadgenConfig,
    json_path: Option<String>,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cfg = LoadgenConfig::default();
    let mut addr: Option<String> = None;
    let mut json_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(String::from)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        let knob = |name: &str, raw: String| -> Result<u64, String> {
            raw.parse::<u64>()
                .map_err(|_| format!("flag {name} needs an unsigned integer, got {raw:?}"))
        };
        match arg.as_str() {
            "--conns" => cfg.connections = knob(arg, value(arg)?)? as usize,
            "--qps" => cfg.qps = knob(arg, value(arg)?)?,
            "--duration" => cfg.duration = Duration::from_secs(knob(arg, value(arg)?)?),
            "--root-max" => cfg.root_max = knob(arg, value(arg)?)?,
            "--seed" => cfg.seed = knob(arg, value(arg)?)?,
            "--settle-secs" => cfg.settle_timeout = Duration::from_secs(knob(arg, value(arg)?)?),
            "--deadline-ticks" => {
                let t = knob(arg, value(arg)?)?;
                cfg.deadline_ticks = Some(
                    u32::try_from(t).map_err(|_| format!("--deadline-ticks {t} exceeds u32"))?,
                );
            }
            "--retry-max" => {
                let t = knob(arg, value(arg)?)?;
                cfg.retry_max =
                    u32::try_from(t).map_err(|_| format!("--retry-max {t} exceeds u32"))?;
            }
            "--tick-hint-ms" => {
                cfg.tick_hint = Duration::from_millis(knob(arg, value(arg)?)?.max(1));
            }
            "--update-every" => cfg.update_every = knob(arg, value(arg)?)?,
            "--update-batch" => cfg.update_batch = knob(arg, value(arg)?)?.max(1) as usize,
            "--no-shutdown" => cfg.shutdown_at_end = false,
            "--json" => json_path = Some(value(arg)?),
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other if addr.is_none() => addr = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    cfg.addr = addr.ok_or("loadgen needs the server ADDR (host:port)")?;
    Ok(Cli { cfg, json_path })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            eprintln!(
                "usage: loadgen ADDR [--conns N] [--qps N] [--duration SECS] [--root-max N] \
                 [--seed N] [--settle-secs N] [--deadline-ticks N] [--retry-max N] \
                 [--tick-hint-ms N] [--update-every N] [--update-batch N] [--no-shutdown] \
                 [--json PATH]"
            );
            std::process::exit(2);
        }
    };
    let report = match run_loadgen(&cli.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: connecting to {} failed: {e}", cli.cfg.addr);
            std::process::exit(1);
        }
    };
    let artifact = JsonValue::object()
        .field("schema_version", SCHEMA_VERSION)
        .field("serve_load", report.to_json())
        .build();
    let rendered = artifact.render_pretty();
    println!("{rendered}");
    if let Some(path) = &cli.json_path {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("loadgen: writing {path} failed: {e}");
            std::process::exit(1);
        }
    }
    if report.updates_offered > 0 {
        eprintln!(
            "loadgen: updates offered {} committed {} ({} edges) rejected {} final_epoch {} \
             epoch_regressions {}",
            report.updates_offered,
            report.updates_committed,
            report.update_edges,
            report.updates_rejected,
            report.final_epoch,
            report.epoch_regressions,
        );
    }
    eprintln!(
        "loadgen: offered {} ({:.0}/s) accepted {} ({:.0}/s) rejected_full {} served {} \
         retried {} retry_ok {} deadline_exceeded {} p50 {:.1}ms p99 {:.1}ms p999 {:.1}ms",
        report.offered,
        report.offered_qps,
        report.accepted,
        report.accepted_qps,
        report.rejected_full,
        report.served,
        report.retried,
        report.retry_successes,
        report.deadline_exceeded,
        report.latency.p50_ms,
        report.latency.p99_ms,
        report.latency.p999_ms,
    );
    if !report.clean() {
        eprintln!(
            "loadgen: INVARIANT VIOLATION — lost {} dup {} unacked {} protocol_errors {} \
             write_errors {} epoch_regressions {}",
            report.lost_replies,
            report.duplicate_replies,
            report.unacked,
            report.protocol_errors,
            report.write_errors,
            report.epoch_regressions,
        );
        std::process::exit(1);
    }
}
