//! Criterion micro-benchmarks for the hot kernels (wall-clock, not
//! simulated time): the R-MAT generator, the PARADIS radix sort, the
//! bitmap primitives, and the functional OCS-RMA bucketing pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sunbfs_common::{Bitmap, MachineConfig, SplitMix64};
use sunbfs_rmat::RmatParams;
use sunbfs_sort::radix_sort_u64;
use sunbfs_sunway::{ocs_sort_rma, OcsConfig};

fn bench_rmat(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmat_generate");
    for scale in [12u32, 14] {
        let params = RmatParams::graph500(scale, 42);
        g.throughput(Throughput::Elements(params.num_edges()));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &params, |b, p| {
            b.iter(|| sunbfs_rmat::generate_edges(p))
        });
    }
    g.finish();
}

fn bench_radix_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("paradis_radix_sort");
    for n in [1usize << 14, 1 << 18] {
        let mut rng = SplitMix64::new(7);
        let data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| {
                let mut v = d.clone();
                radix_sort_u64(&mut v, 2);
                v
            })
        });
    }
    g.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let bits = 1u64 << 20;
    let mut bm = Bitmap::new(bits);
    let mut rng = SplitMix64::new(9);
    for _ in 0..(bits / 16) {
        bm.set(rng.next_below(bits));
    }
    c.bench_function("bitmap_iter_ones_1M", |b| b.iter(|| bm.iter_ones().sum::<u64>()));
    c.bench_function("bitmap_count_range_1M", |b| {
        b.iter(|| bm.count_ones_range(1000, bits - 1000))
    });
    let other = bm.clone();
    c.bench_function("bitmap_or_assign_1M", |b| {
        b.iter(|| {
            let mut x = bm.clone();
            x.or_assign(&other);
            x
        })
    });
}

fn bench_ocs(c: &mut Criterion) {
    let machine = MachineConfig::new_sunway();
    let mut rng = SplitMix64::new(11);
    let items: Vec<u64> = (0..1usize << 18).map(|_| rng.next_u64()).collect();
    let mut g = c.benchmark_group("ocs_rma_functional");
    g.throughput(Throughput::Bytes((items.len() * 8) as u64));
    g.bench_function("bucket_256_6cg", |b| {
        b.iter(|| ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 6, |x| (x & 0xff) as usize))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rmat, bench_radix_sort, bench_bitmap, bench_ocs
}
criterion_main!(benches);
