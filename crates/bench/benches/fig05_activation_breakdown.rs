//! **Figure 5** — active-vertices percentage per class per iteration.
//!
//! Paper (§4.2): in a Graph 500 Kronecker graph, E and H hubs are
//! activated almost entirely in the first two or three iterations,
//! while L vertices peak one iteration later — the observation that
//! justifies per-component direction selection.
//!
//! This harness traverses a SCALE-16 graph and prints, per iteration,
//! the newly activated share of each class (the paper's stacked bars).

use sunbfs_bench::{bar, run_config};
use sunbfs_core::EngineConfig;
use sunbfs_part::Thresholds;

fn main() {
    let scale = 17;
    let ranks = 16;
    let cfg = run_config(
        scale,
        ranks,
        Thresholds::new(1024, 128),
        EngineConfig::default(),
        1,
    );
    println!(
        "=== Figure 5: per-class activation per iteration (SCALE {scale}, {ranks} ranks) ===\n"
    );
    let report = sunbfs::driver::run_benchmark(&cfg).expect("benchmark must pass");
    let run = &report.runs[0];

    // Class totals for normalization: everything ever activated.
    let tot_e: u64 = run
        .iterations
        .iter()
        .map(|it| it.newly_e)
        .sum::<u64>()
        .max(1);
    let tot_h: u64 = run
        .iterations
        .iter()
        .map(|it| it.newly_h)
        .sum::<u64>()
        .max(1);
    let tot_l: u64 = run
        .iterations
        .iter()
        .map(|it| it.newly_l)
        .sum::<u64>()
        .max(1);

    println!("  iter     E%      H%      L%     (of each class's reachable total)");
    for it in &run.iterations {
        let pe = 100.0 * it.newly_e as f64 / tot_e as f64;
        let ph = 100.0 * it.newly_h as f64 / tot_h as f64;
        let pl = 100.0 * it.newly_l as f64 / tot_l as f64;
        println!("  {:>4}  {pe:>6.2}  {ph:>6.2}  {pl:>6.2}", it.iter);
        println!("        E {}", bar(pe, 100.0));
        println!("        H {}", bar(ph, 100.0));
        println!("        L {}", bar(pl, 100.0));
    }

    // The paper's claim, checked quantitatively: hubs peak no later
    // than L does.
    let peak = |f: &dyn Fn(&sunbfs_core::IterationStats) -> u64| -> u32 {
        run.iterations
            .iter()
            .max_by_key(|it| f(it))
            .map(|it| it.iter)
            .unwrap_or(0)
    };
    let pe = peak(&|it| it.newly_e);
    let ph = peak(&|it| it.newly_h);
    let pl = peak(&|it| it.newly_l);
    println!("\n  activation peaks: E at iteration {pe}, H at {ph}, L at {pl}");
    assert!(
        pe <= pl && ph <= pl,
        "hubs must be activated no later than L (paper Figure 5)"
    );
    println!("  -> hubs are intensively visited earlier than light vertices, as in the paper.");
}
