//! **Figure 13** — distribution of partitioned subgraph sizes.
//!
//! Paper (§6.2.2): partitioning the SCALE-44 graph onto 103,912 nodes,
//! the per-partition edge counts of the six subgraphs are tightly
//! concentrated: min-vs-max spread of 4.2% in EH2EH and up to 0.35% in
//! the rest — load balance by construction, without adjusting the
//! vertex distribution.
//!
//! This harness partitions a SCALE-16 graph onto 64 ranks (8×8 mesh)
//! and prints each component's per-partition CDF summary.

use sunbfs_bench::bar;
use sunbfs_common::MachineConfig;
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, ComponentStats, Thresholds};
use sunbfs_rmat::{generate_chunk, RmatParams};

fn main() {
    let scale = 16;
    let ranks = 64usize;
    let params = RmatParams::graph500(scale, 42);
    let thresholds = Thresholds::new(2048, 256);
    println!(
        "=== Figure 13: subgraph size distribution, SCALE {scale} on {ranks} ranks (E>={}, H>={}) ===\n",
        thresholds.e, thresholds.h
    );
    let cluster = Cluster::new(MeshShape::near_square(ranks), MachineConfig::new_sunway());
    let n = params.num_vertices();
    let stats: Vec<ComponentStats> = cluster.run(|ctx| {
        let chunk = generate_chunk(&params, ctx.rank() as u64, ranks as u64);
        build_1p5d(ctx, n, &chunk, thresholds).stats
    });

    println!("  component     min        p25        median     p75        max       max/min-1  max/avg-1");
    for (name, get) in [
        (
            "EH2EH",
            (|s: &ComponentStats| s.eh2eh) as fn(&ComponentStats) -> u64,
        ),
        ("E2L", |s| s.e2l),
        ("L2E", |s| s.l2e),
        ("H2L", |s| s.h2l),
        ("L2H", |s| s.l2h),
        ("L2L", |s| s.l2l),
    ] {
        let mut v: Vec<u64> = stats.iter().map(get).collect();
        v.sort_unstable();
        let (min, max) = (v[0], v[ranks - 1]);
        let avg = v.iter().sum::<u64>() as f64 / ranks as f64;
        let q = |p: f64| v[((ranks - 1) as f64 * p) as usize];
        let spread = if min > 0 {
            max as f64 / min as f64 - 1.0
        } else {
            f64::NAN
        };
        let over = if avg > 0.0 {
            max as f64 / avg - 1.0
        } else {
            f64::NAN
        };
        println!(
            "  {name:<10} {min:>9}  {:>9}  {:>9}  {:>9}  {max:>9}   {:>7.1}%   {:>7.1}%",
            q(0.25),
            q(0.5),
            q(0.75),
            100.0 * spread,
            100.0 * over,
        );
    }
    println!("\n  (paper at full scale: EH2EH 4.2% min-max spread, others <= 0.35%;");
    println!("   small-sample spreads are larger but every component stays percent-level)");

    // Mini-CDF of the largest component.
    let mut eh: Vec<u64> = stats.iter().map(|s| s.eh2eh).collect();
    eh.sort_unstable();
    println!("\n  EH2EH per-partition CDF:");
    for pct in [0usize, 10, 25, 50, 75, 90, 100] {
        let idx = ((ranks - 1) * pct) / 100;
        println!(
            "    p{pct:<3} {:>9}  {}",
            eh[idx],
            bar(eh[idx] as f64, *eh.last().unwrap() as f64)
        );
    }
}
