//! Logarithmic histograms.
//!
//! Figure 2 of the paper plots the degree distribution of a Graph 500
//! graph on log-log axes, showing the characteristic multi-peak shape of
//! R-MAT. [`LogHistogram`] buckets values by powers of a configurable
//! base so the figure harness can print the same series at laptop scale.

/// Histogram whose bucket `k` covers `[base^k, base^(k+1))`.
///
/// Bucket 0 additionally holds the value `0` so every sample lands
/// somewhere.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    base: f64,
    counts: Vec<u64>,
}

impl LogHistogram {
    /// Create an empty histogram with logarithmic `base` (must be > 1).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "histogram base must exceed 1");
        LogHistogram {
            base,
            counts: Vec::new(),
        }
    }

    /// Convenience: base-10 histogram matching the paper's Figure 2 axes.
    pub fn decades() -> Self {
        Self::new(10.0)
    }

    /// Bucket index for `value`.
    #[inline]
    pub fn bucket_of(&self, value: u64) -> usize {
        if value <= 1 {
            return 0;
        }
        // Iterative comparison avoids the classic `ln(1000)/ln(10) =
        // 2.999...` floating-point misbucket.
        let mut k = 0usize;
        let mut bound = self.base;
        while value as f64 >= bound {
            k += 1;
            bound *= self.base;
        }
        k
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let b = self.bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
    }

    /// Record a sample `n` times.
    pub fn record_n(&mut self, value: u64, n: u64) {
        let b = self.bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += n;
    }

    /// `(lower_bound, count)` pairs for every non-empty trailing-trimmed bucket.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| (self.base.powi(k as i32) as u64, c))
            .collect()
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another histogram (same base) into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            (self.base - other.base).abs() < f64::EPSILON,
            "cannot merge histograms with different bases"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_base10() {
        let h = LogHistogram::decades();
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(1), 0);
        assert_eq!(h.bucket_of(9), 0);
        assert_eq!(h.bucket_of(10), 1);
        assert_eq!(h.bucket_of(99), 1);
        assert_eq!(h.bucket_of(100), 2);
        assert_eq!(h.bucket_of(1_000_000), 6);
    }

    #[test]
    fn record_and_total() {
        let mut h = LogHistogram::decades();
        h.record(5);
        h.record(50);
        h.record_n(500, 3);
        assert_eq!(h.total(), 5);
        let b = h.buckets();
        assert_eq!(b[0], (1, 1));
        assert_eq!(b[1], (10, 1));
        assert_eq!(b[2], (100, 3));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::decades();
        let mut b = LogHistogram::decades();
        a.record(1);
        b.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.buckets()[0].1, 2);
        assert_eq!(a.buckets()[3].1, 1);
    }

    #[test]
    #[should_panic]
    fn merge_base_mismatch_panics() {
        let mut a = LogHistogram::new(2.0);
        let b = LogHistogram::new(10.0);
        a.merge(&b);
    }
}
