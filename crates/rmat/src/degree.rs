//! Degree-distribution tooling.
//!
//! Figure 2 of the paper shows the degree distribution of a SCALE-40
//! Graph 500 graph: extremely skewed yet *discrete* — "multiple
//! hypergeometric distributions centered at numerous peaks". Because
//! only thresholds that fall *between* peaks are meaningful, threshold
//! tuning (Figure 12) starts from this histogram. These helpers compute
//! exact degrees and log-bucketed histograms at laptop scales.

use sunbfs_common::{Edge, LogHistogram};

/// Exact degree of every vertex (counting both endpoints of every
/// generated edge; self loops add 2, matching adjacency-matrix
/// conventions used by the generator's skew analysis).
pub fn degrees(num_vertices: u64, edges: &[Edge]) -> Vec<u32> {
    let mut deg = vec![0u32; num_vertices as usize];
    for e in edges {
        deg[e.u as usize] += 1;
        deg[e.v as usize] += 1;
    }
    deg
}

/// Log-10 bucketed histogram of a degree array (the axes of Figure 2).
pub fn degree_histogram(degs: &[u32]) -> LogHistogram {
    let mut h = LogHistogram::decades();
    for &d in degs {
        h.record(d as u64);
    }
    h
}

/// Exact frequency table: `(degree, number_of_vertices)` sorted by
/// degree, skipping degree zero. Used to locate the distribution's
/// peaks when selecting candidate E/H thresholds.
pub fn degree_frequencies(degs: &[u32]) -> Vec<(u32, u64)> {
    let mut sorted: Vec<u32> = degs.iter().copied().filter(|&d| d > 0).collect();
    sorted.sort_unstable();
    let mut out: Vec<(u32, u64)> = Vec::new();
    for d in sorted {
        match out.last_mut() {
            Some((last, cnt)) if *last == d => *cnt += 1,
            _ => out.push((d, 1)),
        }
    }
    out
}

/// Number of vertices whose degree is at least `threshold`.
pub fn count_at_least(degs: &[u32], threshold: u32) -> u64 {
    degs.iter().filter(|&&d| d >= threshold).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_counts_both_endpoints() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 2)];
        let d = degrees(4, &edges);
        assert_eq!(d, vec![1, 2, 3, 0]);
    }

    #[test]
    fn histogram_totals_match_vertex_count() {
        let d = [0u32, 1, 5, 10, 100, 1000];
        let h = degree_histogram(&d);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn frequencies_sorted_and_complete() {
        let d = [3u32, 1, 3, 0, 1, 3];
        let f = degree_frequencies(&d);
        assert_eq!(f, vec![(1, 2), (3, 3)]);
    }

    #[test]
    fn count_at_least_is_monotone() {
        let d = [1u32, 2, 4, 8, 16];
        assert_eq!(count_at_least(&d, 1), 5);
        assert_eq!(count_at_least(&d, 4), 3);
        assert_eq!(count_at_least(&d, 17), 0);
        for t in 0..20 {
            assert!(count_at_least(&d, t) >= count_at_least(&d, t + 1));
        }
    }
}
