//! `chaos_soak` — the availability artifact: serve a resident graph
//! over TCP while a seeded fault schedule injects rank panics,
//! stragglers, and payload corruption into the live batched traversal,
//! then report what the clients saw.
//!
//! The soak binds an ephemeral port, offers paced load with deadline
//! budgets and hint-honoring retries, watches the `health` request on a
//! side connection, drives the service back to `healthy` after the
//! fault schedule runs dry, and prints a schema-v9
//! `{"schema_version":10,"serve_chaos":{...}}` document (tables in
//! `docs/METRICS.md`), optionally written to a file with `--json PATH`.
//!
//! ```text
//! cargo run --release --example chaos_soak -- \
//!     --scale 14 --ranks 8 --qps 300 --duration 4 --json SERVE_CHAOS_14.json
//! ```
//!
//! Flags: `--scale N` (14), `--ranks N` (8), `--conns N` (4),
//! `--qps N` (300, total), `--duration SECS` (4), `--seed N` (42, both
//! graph and chaos placement), `--chaos-every N` (arm one fault per N
//! executed queries, 48), `--chaos-max-events N` (stop arming after N
//! faults so recovery can close, 4), `--deadline-ticks N` (per-query
//! budget, 400), `--retry-max N` (3), `--availability-gate F` (0.90),
//! `--recovery-gate-ticks N` (20000), `--json PATH`. Unknown flags
//! exit 2.
//!
//! Exit status: 0 when [`ChaosSoakReport::passed`] held — the server
//! never crashed, accounting was exactly-once, availability met the
//! gate, and the service recovered to `healthy` within the tick budget
//! — 1 otherwise, so CI can gate on the process status alone.

use std::time::Duration;

use sunbfs::common::{JsonValue, ToJson};
use sunbfs::metrics::SCHEMA_VERSION;
use sunbfs::serve::{
    run_chaos_soak, ChaosConfig, ChaosSoakConfig, LoadgenConfig, NetConfig, ServeConfig,
    SessionConfig,
};

struct Cli {
    cfg: ChaosSoakConfig,
    json_path: Option<String>,
}

fn default_config(scale: u32, ranks: usize) -> ChaosSoakConfig {
    ChaosSoakConfig {
        session: SessionConfig::small(scale, ranks),
        serve: ServeConfig::default(),
        net: NetConfig {
            tick_interval: Duration::from_millis(2),
            ..NetConfig::default()
        },
        chaos: ChaosConfig {
            every_queries: 48,
            max_events: 4,
            ..ChaosConfig::default()
        },
        load: LoadgenConfig {
            connections: 4,
            qps: 300,
            duration: Duration::from_secs(4),
            deadline_ticks: Some(400),
            retry_max: 3,
            tick_hint: Duration::from_millis(2),
            ..LoadgenConfig::default()
        },
        availability_gate: 0.90,
        recovery_gate_ticks: 20_000,
        health_poll: Duration::from_millis(25),
        recovery_timeout: Duration::from_secs(60),
    }
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut scale = 14u32;
    let mut ranks = 8usize;
    let mut cfg = default_config(scale, ranks);
    let mut json_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(String::from)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        let knob = |name: &str, raw: String| -> Result<u64, String> {
            raw.parse::<u64>()
                .map_err(|_| format!("flag {name} needs an unsigned integer, got {raw:?}"))
        };
        match arg.as_str() {
            "--scale" => scale = knob(arg, value(arg)?)? as u32,
            "--ranks" => ranks = knob(arg, value(arg)?)? as usize,
            "--conns" => cfg.load.connections = knob(arg, value(arg)?)? as usize,
            "--qps" => cfg.load.qps = knob(arg, value(arg)?)?,
            "--duration" => cfg.load.duration = Duration::from_secs(knob(arg, value(arg)?)?),
            "--seed" => {
                let seed = knob(arg, value(arg)?)?;
                cfg.load.seed = seed;
                cfg.chaos.seed = seed;
            }
            "--chaos-every" => cfg.chaos.every_queries = knob(arg, value(arg)?)?.max(1),
            "--chaos-max-events" => cfg.chaos.max_events = knob(arg, value(arg)?)?,
            "--deadline-ticks" => {
                let t = knob(arg, value(arg)?)?;
                cfg.load.deadline_ticks = Some(
                    u32::try_from(t).map_err(|_| format!("--deadline-ticks {t} exceeds u32"))?,
                );
            }
            "--retry-max" => {
                let t = knob(arg, value(arg)?)?;
                cfg.load.retry_max =
                    u32::try_from(t).map_err(|_| format!("--retry-max {t} exceeds u32"))?;
            }
            "--availability-gate" => {
                let raw = value(arg)?;
                cfg.availability_gate = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--availability-gate needs a float, got {raw:?}"))?;
            }
            "--recovery-gate-ticks" => cfg.recovery_gate_ticks = knob(arg, value(arg)?)?,
            "--json" => json_path = Some(value(arg)?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    cfg.session = SessionConfig::small(scale, ranks);
    cfg.load.root_max = 1u64 << scale;
    Ok(Cli { cfg, json_path })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("chaos_soak: {msg}");
            eprintln!(
                "usage: chaos_soak [--scale N] [--ranks N] [--conns N] [--qps N] \
                 [--duration SECS] [--seed N] [--chaos-every N] [--chaos-max-events N] \
                 [--deadline-ticks N] [--retry-max N] [--availability-gate F] \
                 [--recovery-gate-ticks N] [--json PATH]"
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "chaos_soak: scale {} ranks {} qps {} for {:?}, one fault per {} queries (max {})",
        cli.cfg.session.scale,
        cli.cfg.session.mesh.num_ranks(),
        cli.cfg.load.qps,
        cli.cfg.load.duration,
        cli.cfg.chaos.every_queries,
        cli.cfg.chaos.max_events,
    );
    let report = match run_chaos_soak(&cli.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos_soak: {e}");
            std::process::exit(1);
        }
    };
    let artifact = JsonValue::object()
        .field("schema_version", SCHEMA_VERSION)
        .field("serve_chaos", report.to_json())
        .build();
    let rendered = artifact.render_pretty();
    println!("{rendered}");
    if let Some(path) = &cli.json_path {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("chaos_soak: writing {path} failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "chaos_soak: availability {:.4} (gate {:.2}) injected {} recovery_episodes {} \
         max_recovery {} ticks (gate {}) final {} states {:?}",
        report.availability,
        report.availability_gate,
        report.serve.chaos_injected,
        report.recovery_episodes,
        report.max_recovery_ticks,
        report.recovery_gate_ticks,
        report.final_health,
        report.observed_states,
    );
    if !report.passed() {
        eprintln!(
            "chaos_soak: GATE FAILURE — panicked {} clean {} availability {:.4} recovered {} \
             max_recovery_ticks {}",
            report.server_panicked,
            report.load.clean(),
            report.availability,
            report.recovered,
            report.max_recovery_ticks,
        );
        std::process::exit(1);
    }
}
