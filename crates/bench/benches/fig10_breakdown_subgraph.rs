//! **Figure 10** — execution-time breakdown by subgraph.
//!
//! Paper (§6.1.2): over the weak-scaling runs, time splits across the
//! six subgraphs plus the delayed parent reduction and "other". L2L
//! costs notable time despite being the smallest subgraph (sparse,
//! latency-bound, active in nearly every iteration), while EH2EH —
//! the largest subgraph — shrinks at larger scales thanks to the
//! partitioning and sub-iteration direction optimization.
//!
//! This harness reruns the sweep and prints the stacked percentages.

use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs_bench::{group_by_subgraph, print_percentages, sweep_thresholds, weak_scaling_sweep};
use sunbfs_common::MachineConfig;
use sunbfs_core::EngineConfig;

fn main() {
    let sweep = weak_scaling_sweep();
    let roots = 2;
    println!("=== Figure 10: time breakdown by subgraph over scaling runs ===\n");

    let mut l2l_shares = Vec::new();
    let mut eh_shares = Vec::new();
    for &(mesh, scale) in &sweep {
        let ranks = mesh.num_ranks();
        let cfg = RunConfig {
            scale,
            edge_factor: 16,
            mesh,
            thresholds: sweep_thresholds(scale),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            num_roots: roots,
            validate: false,
            faults: FaultSpec::NONE,
            max_root_retries: 2,
            serve_batch: false,
            serve_baseline: false,
            save_graph: None,
            load_graph: None,
        };
        let report = run_benchmark(&cfg).expect("benchmark must pass");
        let groups = group_by_subgraph(&report.total_times());
        println!("--- {ranks} ranks, SCALE {scale} ---");
        print_percentages("per-subgraph share", &groups);
        println!();
        let total: f64 = groups.iter().map(|(_, s)| s).sum();
        let share = |k: &str| groups.iter().find(|(n, _)| n == k).unwrap().1 / total;
        l2l_shares.push(share("L2L"));
        eh_shares.push(share("EH2EH"));
    }

    println!("shape checks:");
    println!(
        "  L2L share across scales: {:?}",
        l2l_shares
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0))
            .collect::<Vec<_>>()
    );
    println!(
        "  EH2EH share across scales: {:?}",
        eh_shares
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0))
            .collect::<Vec<_>>()
    );
    println!("  (paper: L2L notable despite being the smallest subgraph; EH2EH");
    println!("   takes a notably shorter share at larger scales)");
}
