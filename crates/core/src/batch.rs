//! Bit-parallel multi-source BFS over the 1.5D partition.
//!
//! The serving layer's batch engine: up to 64 roots traverse the graph
//! in **one** pass. Every vertex carries a `u64` *frontier word* whose
//! bit `b` says "root `b`'s frontier contains this vertex", and the six
//! sub-iteration kernels of the single-source engine
//! ([`crate::engine`]) become word operations — one adjacency scan
//! discovers for all roots at once (`new = mask & !seen`), so the
//! per-iteration fixed costs (hub syncs, heuristic allreduces, bitmap
//! sweeps) amortize across the whole batch. This is the classic MS-BFS
//! idea applied to the paper's EH2EH/E2L/L2E/H2L/L2H/L2L decomposition.
//!
//! State placement mirrors the single-source engine exactly:
//!
//! * hub words are replicated and synced at sub-iteration boundaries
//!   through the same row-then-column OR-allreduce (the payload is `nh`
//!   words instead of `nh` bits — same collective count, so the latency
//!   amortization survives),
//! * hub parents stay delegate-local per `(hub, root)` slot and are
//!   min-reduced once after the traversal,
//! * L words live only at the owner; crossing pushes travel as
//!   `(dest, parent, mask)` triples through the same OCS-sort +
//!   `alltoallv` exchanges.
//!
//! Depths are tracked explicitly per `(vertex, root)` slot — a batch is
//! level-synchronous per root, so the slot's depth is simply the
//! iteration that first set its bit. Parents may differ from a
//! single-source run (discovery order differs inside an iteration);
//! depths may not, which is what the equivalence sweep pins.
//!
//! Direction heuristics are lifted to **per-batch** decisions: the
//! activity counters feeding [`choose_local`]/[`choose_crossing`] count
//! `(vertex, root)` *pairs* (word popcounts) against denominators
//! scaled by the batch width — i.e. the decision uses the mean frontier
//! density across the batch's roots.

use sunbfs_common::bitmap::wide;
use sunbfs_common::{pool, JsonValue, PoolStats, TimeAccumulator, ToJson, INVALID_VERTEX};
use sunbfs_net::{CommStats, RankCtx, Scope};
use sunbfs_part::RankPartition;
use sunbfs_sunway::{ocs_sort_rma, OcsConfig, SegmentedBitvec};

use crate::balance;
use crate::config::{
    choose_crossing, choose_local, choose_measured, Direction, DirectionHeuristic, EngineConfig,
};
use crate::costing;
use crate::engine::{
    hub_sync_collective, range_bucket, EngineError, MAX_ITERATIONS, SCAN_GRAIN_ITEMS,
};

/// Widest batch one frontier word can carry.
pub const MAX_BATCH_ROOTS: usize = 64;

/// Depth slot value for an unreached `(vertex, root)` pair.
pub const UNREACHED_DEPTH: u32 = u32::MAX;

/// One iteration of a batch traversal (replicated counters).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchIterationStats {
    /// 1-based iteration number.
    pub iter: u32,
    /// Active `(E vertex, root)` pairs at iteration start.
    pub active_e: u64,
    /// Active `(H vertex, root)` pairs at iteration start.
    pub active_h: u64,
    /// Active `(L vertex, root)` pairs at iteration start (global).
    pub active_l: u64,
    /// `(L vertex, root)` pairs discovered this iteration (global).
    pub newly_l: u64,
    /// Per-component push/pull decisions (per-batch, possibly refreshed
    /// mid-iteration for H2L/L2L like the single-source engine).
    pub directions: [Direction; 6],
    /// Adjacency entries scanned on this rank (each scan serves the
    /// whole batch — the amortization at work).
    pub scanned_edges: u64,
    /// Worker-pool activity across this iteration's scans on this rank
    /// (the schema-v5 worker-scaling surface for the batch path).
    pub pool: PoolStats,
}

impl ToJson for BatchIterationStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("iter", self.iter)
            .field("active_e", self.active_e)
            .field("active_h", self.active_h)
            .field("active_l", self.active_l)
            .field("newly_l", self.newly_l)
            .field(
                "directions",
                JsonValue::Array(
                    self.directions
                        .iter()
                        .map(|&d| {
                            JsonValue::Str(
                                match d {
                                    Direction::Push => "push",
                                    Direction::Pull => "pull",
                                }
                                .to_string(),
                            )
                        })
                        .collect(),
                ),
            )
            .field("scanned_edges", self.scanned_edges)
            .field("pool", self.pool.to_json())
            .build()
    }
}

/// Per-batch statistics on one rank.
#[derive(Clone, Debug, Default)]
pub struct BatchRunStats {
    /// Iteration series (replicated counters plus this rank's scans).
    pub iterations: Vec<BatchIterationStats>,
    /// Simulated seconds the whole batch took on this rank.
    pub sim_seconds: f64,
    /// Vertices reached per root (global, root-indexed).
    pub visited: Vec<u64>,
    /// Degree-sum estimate of traversed edges per root (global,
    /// root-indexed; duplicate generator edges count per entry, like
    /// the single-source engine's estimate).
    pub traversed_edges: Vec<u64>,
    /// Per-category simulated time this batch charged on this rank.
    pub times: TimeAccumulator,
    /// Collectives this batch issued on this rank.
    pub comm: CommStats,
}

/// Result of one batch traversal on one rank. Per-vertex slots are
/// vertex-major: slot `local_index * num_roots + b` belongs to root `b`.
#[derive(Clone, Debug)]
pub struct BatchOutput {
    /// Batch width (1..=64).
    pub num_roots: usize,
    /// Parents of this rank's owned vertices per root (global vertex
    /// ids; [`INVALID_VERTEX`] where unreached).
    pub parents: Vec<u64>,
    /// BFS depth of this rank's owned vertices per root
    /// ([`UNREACHED_DEPTH`] where unreached).
    pub depths: Vec<u32>,
    /// Per-run statistics.
    pub stats: BatchRunStats,
}

impl BatchOutput {
    /// Parent of owned local vertex `li` in root `b`'s tree.
    pub fn parent_of(&self, li: usize, b: usize) -> u64 {
        self.parents[li * self.num_roots + b]
    }

    /// Depth of owned local vertex `li` in root `b`'s tree.
    pub fn depth_of(&self, li: usize, b: usize) -> u32 {
        self.depths[li * self.num_roots + b]
    }
}

/// Run one bit-parallel multi-source BFS over this rank's partition.
///
/// SPMD: all ranks call with identical `roots` (1..=64 of them, order
/// significant — bit `b` is `roots[b]`) and `cfg`. Duplicate roots are
/// legal: each bit traverses independently.
///
/// # Errors
/// [`EngineError::NonTermination`] if any root's frontier fails to
/// drain within the iteration cap (replicated state: every rank returns
/// it together).
///
/// # Panics
/// If `roots` is empty or wider than [`MAX_BATCH_ROOTS`].
pub fn run_bfs_batch(
    ctx: &mut RankCtx,
    part: &RankPartition,
    roots: &[u64],
    cfg: &EngineConfig,
) -> Result<BatchOutput, EngineError> {
    assert!(
        !roots.is_empty() && roots.len() <= MAX_BATCH_ROOTS,
        "batch width must be 1..={MAX_BATCH_ROOTS}, got {}",
        roots.len()
    );
    BatchEngine::new(ctx, part, *cfg, roots.len()).run(ctx, roots)
}

struct BatchEngine<'a> {
    part: &'a RankPartition,
    cfg: EngineConfig,
    nb: usize,
    full: u64,
    // Replicated hub words (index: hub id).
    hub_curr: Vec<u64>,
    hub_seen: Vec<u64>,
    hub_next: Vec<u64>,
    hub_update: Vec<u64>,
    // Delegate-local hub parents and replicated hub depths, per
    // (hub, root) slot `h * nb + b`.
    hub_parent: Vec<u64>,
    hub_depth: Vec<u32>,
    // Owner-local L words (index: local offset) and per-slot results.
    l_curr: Vec<u64>,
    l_seen: Vec<u64>,
    l_next: Vec<u64>,
    l_parent: Vec<u64>,
    l_depth: Vec<u32>,
    // Cached global totals (one collective at engine setup).
    total_l_connected: u64,
    total_el: u64,
    total_h2l: u64,
    total_lh: u64,
    total_l2l: u64,
    // Mesh facts.
    rows: usize,
    cols: usize,
    // Scratch.
    scanned: u64,
    pool: PoolStats,
    iter: u32,
    // Measured-heuristic state (all zeros / Push under Fixed). Batch
    // masses count `(vertex, root)` pairs weighted by degree — degree ×
    // popcount of the frontier word — against ×nb-scaled totals, the
    // same mean-across-the-batch lift as the count heuristics.
    class_mass_total: [u64; 3],
    frontier_mass: [u64; 3],
    visited_mass: [u64; 3],
    prev_dirs: [Direction; 6],
}

impl<'a> BatchEngine<'a> {
    fn new(ctx: &mut RankCtx, part: &'a RankPartition, cfg: EngineConfig, nb: usize) -> Self {
        let nh = part.directory.num_hubs() as usize;
        let range = part.owned_range();
        let local_n = (range.end - range.start) as usize;
        let topo = ctx.topology();
        let dir = &part.directory;
        let local_l_connected = part
            .owned_degrees
            .iter()
            .enumerate()
            .filter(|(i, &d)| d > 0 && dir.hub_id(range.start + *i as u64).is_none())
            .count() as u64;
        // Same payload rule as the single-source engine: the measured
        // heuristic appends its three per-class degree-mass totals, the
        // fixed mode's payload stays at five entries.
        let mut payload = vec![
            local_l_connected,
            part.stats.e2l,
            part.stats.h2l,
            part.stats.l2h,
            part.stats.l2l,
        ];
        if cfg.heuristic == DirectionHeuristic::Measured {
            let num_e = dir.num_e();
            let mut class_mass = [0u64; 3];
            for (i, &d) in part.owned_degrees.iter().enumerate() {
                match dir.hub_id(range.start + i as u64) {
                    Some(h) if h < num_e => class_mass[0] += d as u64,
                    Some(_) => class_mass[1] += d as u64,
                    None if d > 0 => class_mass[2] += d as u64,
                    None => {}
                }
            }
            payload.extend(class_mass);
        }
        let totals = ctx.allreduce_with(Scope::World, "heur.totals", payload, None, |a, b| *a += b);
        let class_mass_total = match totals.get(5..8) {
            Some(m) => [m[0], m[1], m[2]],
            None => [0; 3],
        };
        BatchEngine {
            part,
            cfg,
            nb,
            full: if nb == MAX_BATCH_ROOTS {
                u64::MAX
            } else {
                (1u64 << nb) - 1
            },
            hub_curr: vec![0; nh],
            hub_seen: vec![0; nh],
            hub_next: vec![0; nh],
            hub_update: vec![0; nh],
            hub_parent: vec![INVALID_VERTEX; nh * nb],
            hub_depth: vec![UNREACHED_DEPTH; nh * nb],
            l_curr: vec![0; local_n],
            l_seen: vec![0; local_n],
            l_next: vec![0; local_n],
            l_parent: vec![INVALID_VERTEX; local_n * nb],
            l_depth: vec![UNREACHED_DEPTH; local_n * nb],
            total_l_connected: totals[0],
            total_el: totals[1],
            total_h2l: totals[2],
            total_lh: totals[3],
            total_l2l: totals[4],
            rows: topo.shape().rows,
            cols: topo.shape().cols,
            scanned: 0,
            pool: PoolStats::default(),
            iter: 0,
            class_mass_total,
            frontier_mass: [0; 3],
            visited_mass: [0; 3],
            prev_dirs: [Direction::Push; 6],
        }
    }

    /// True when the measured-degree decision family is in force.
    #[inline]
    fn measured(&self) -> bool {
        self.cfg.heuristic == DirectionHeuristic::Measured
    }

    /// This rank's contribution to the class-split frontier pair mass:
    /// degree × popcount of each *owned* frontier word, split E/H/L.
    fn local_frontier_mass(&self, hub_words: &[u64], l_words: &[u64]) -> [u64; 3] {
        let dir = &self.part.directory;
        let range = self.part.owned_range();
        let num_e = dir.num_e() as usize;
        let mut mass = [0u64; 3];
        wide::for_each_nonzero_word(hub_words, 0, hub_words.len(), |h, w| {
            let v = dir.vertex_of(h as u32);
            if range.contains(&v) {
                let d = self.part.owned_degrees[(v - range.start) as usize] as u64;
                mass[if h < num_e { 0 } else { 1 }] += d * w.count_ones() as u64;
            }
        });
        wide::for_each_nonzero_word(l_words, 0, l_words.len(), |li, w| {
            mass[2] += self.part.owned_degrees[li] as u64 * w.count_ones() as u64;
        });
        mass
    }

    /// This rank's pair mass of seen owned L slots (the measured counter
    /// piggybacked on the L2E hub sync).
    fn local_l_seen_mass(&self) -> u64 {
        let mut m = 0u64;
        wide::for_each_nonzero_word(&self.l_seen, 0, self.l_seen.len(), |li, w| {
            m += self.part.owned_degrees[li] as u64 * w.count_ones() as u64;
        });
        m
    }

    fn run(mut self, ctx: &mut RankCtx, roots: &[u64]) -> Result<BatchOutput, EngineError> {
        let t_start = ctx.now();
        let acc_start = ctx.accumulator().clone();
        let comm_start = ctx.comm_stats().clone();
        let dir = &self.part.directory;
        let range = self.part.owned_range();
        let nb = self.nb;

        // ---- root activation: bit b lights up roots[b] ----
        let mut active_l = 0u64;
        for (b, &root) in roots.iter().enumerate() {
            let bit = 1u64 << b;
            match dir.hub_id(root) {
                Some(h) => {
                    let h = h as usize;
                    // A duplicated root re-lights an already-seen bit
                    // pattern only for distinct bits, so no guard needed.
                    self.hub_curr[h] |= bit;
                    self.hub_seen[h] |= bit;
                    self.hub_parent[h * nb + b] = root;
                    self.hub_depth[h * nb + b] = 0;
                }
                None => {
                    active_l += 1;
                    if range.contains(&root) {
                        let li = (root - range.start) as usize;
                        self.l_curr[li] |= bit;
                        self.l_seen[li] |= bit;
                        self.l_parent[li * nb + b] = root;
                        self.l_depth[li * nb + b] = 0;
                    }
                }
            }
        }
        // `active_l` counted L roots on *every* rank (the class of each
        // root is globally known), so it is already the global count.

        let num_e = dir.num_e() as usize;
        let mut iterations = Vec::new();
        let mut visited_l: u64 = active_l;
        let mut done = self.hub_curr.iter().all(|&w| w == 0) && active_l == 0;
        while !done {
            self.iter += 1;
            let mut st = BatchIterationStats {
                iter: self.iter,
                ..Default::default()
            };

            // ---- per-class (vertex, root) pair counts ----
            st.active_e = popcount_sum(&self.hub_curr[..num_e]);
            st.active_h = popcount_sum(&self.hub_curr[num_e..]);
            st.active_l = active_l;

            // ---- per-batch direction selection ----
            let dirs = self.select_directions(&st, visited_l);

            // ---- sub-iterations, §4.2 order ----
            self.scanned = 0;
            self.pool = PoolStats::default();
            self.eh2eh(ctx, dirs[0]);
            self.sync_hubs(ctx, "EH2EH", &[0]);
            self.e2l(ctx, dirs[1]);
            self.l2e(ctx, dirs[2]);
            // Measured mode piggybacks the seen pair mass next to the
            // seen pair count — same collective, one extra u64.
            let l2e_counters = if self.measured() {
                vec![popcount_sum(&self.l_seen), self.local_l_seen_mass()]
            } else {
                vec![popcount_sum(&self.l_seen)]
            };
            let refreshed = self.sync_hubs(ctx, "L2E", &l2e_counters);

            let (d_h2l, d_l2l) = if self.cfg.sub_iteration {
                let counts = refreshed.unwrap_or_else(|| {
                    ctx.allreduce_with(Scope::World, "heur.counts", l2e_counters, None, |a, b| {
                        *a += b
                    })
                });
                visited_l = counts[0];
                let total_l = self.total_l_connected * nb as u64;
                let unvisited_l = total_l.saturating_sub(visited_l);
                if self.measured() {
                    let um_l = (self.class_mass_total[2] * nb as u64).saturating_sub(counts[1]);
                    (
                        choose_measured(
                            &self.cfg,
                            self.prev_dirs[3],
                            self.frontier_mass[1],
                            um_l,
                            st.active_h,
                            dir.num_h() as u64 * nb as u64,
                        ),
                        choose_measured(
                            &self.cfg,
                            self.prev_dirs[5],
                            self.frontier_mass[2],
                            um_l,
                            st.active_l,
                            total_l,
                        ),
                    )
                } else {
                    (
                        choose_crossing(
                            &self.cfg,
                            st.active_h,
                            dir.num_h() as u64 * nb as u64,
                            unvisited_l,
                            total_l,
                        ),
                        choose_crossing(&self.cfg, st.active_l, total_l, unvisited_l, total_l),
                    )
                }
            } else {
                (dirs[3], dirs[5])
            };
            let mut final_dirs = dirs;
            final_dirs[3] = d_h2l;
            final_dirs[5] = d_l2l;

            self.h2l(ctx, d_h2l);
            self.l2h(ctx, dirs[4]);
            self.sync_hubs(ctx, "L2H", &[0]);
            self.l2l(ctx, d_l2l);

            st.directions = final_dirs;
            st.scanned_edges = self.scanned;
            st.pool = self.pool;

            // ---- closing allreduce: next/visited L pair counts;
            // doubles as the termination check. Measured mode rides the
            // next frontier's three class pair masses on the same
            // payload. ----
            let mut payload = vec![popcount_sum(&self.l_next), popcount_sum(&self.l_seen)];
            if self.measured() {
                payload.extend(self.local_frontier_mass(&self.hub_next, &self.l_next));
            }
            let counts =
                ctx.allreduce_with(Scope::World, "heur.counts", payload, None, |a, b| *a += b);
            st.newly_l = counts[0];
            active_l = counts[0];
            visited_l = counts[1];
            if let Some(m) = counts.get(2..5) {
                self.frontier_mass = [m[0], m[1], m[2]];
                for (vm, fm) in self.visited_mass.iter_mut().zip(self.frontier_mass) {
                    *vm += fm;
                }
            }
            self.prev_dirs = final_dirs;

            std::mem::swap(&mut self.hub_curr, &mut self.hub_next);
            self.hub_next.iter_mut().for_each(|w| *w = 0);
            std::mem::swap(&mut self.l_curr, &mut self.l_next);
            self.l_next.iter_mut().for_each(|w| *w = 0);

            iterations.push(st);
            done = self.hub_curr.iter().all(|&w| w == 0) && active_l == 0;
            if !done && self.iter > MAX_ITERATIONS {
                return Err(EngineError::NonTermination {
                    iterations: self.iter,
                });
            }
        }

        // ---- delayed reduction of delegated per-slot parents (§5) ----
        let reduced_hub_parents = ctx.allreduce_with(
            Scope::World,
            "reduce.parent",
            std::mem::take(&mut self.hub_parent),
            None,
            |a, b| *a = (*a).min(*b),
        );

        // ---- assemble owned per-slot parents/depths + TEPS inputs ----
        let local_n = (range.end - range.start) as usize;
        let mut parents = vec![INVALID_VERTEX; local_n * nb];
        let mut depths = vec![UNREACHED_DEPTH; local_n * nb];
        // Per-root tallies, packed as [visited_0.., degree_sum_0..].
        let mut tallies = vec![0u64; 2 * nb];
        for v in range.clone() {
            let li = (v - range.start) as usize;
            let deg = self.part.owned_degrees[li] as u64;
            for b in 0..nb {
                let (p, d) = match dir.hub_id(v) {
                    Some(h) => {
                        let slot = h as usize * nb + b;
                        (reduced_hub_parents[slot], self.hub_depth[slot])
                    }
                    None => {
                        let slot = li * nb + b;
                        (self.l_parent[slot], self.l_depth[slot])
                    }
                };
                if p != INVALID_VERTEX {
                    tallies[b] += 1;
                    tallies[nb + b] += deg;
                }
                parents[li * nb + b] = p;
                depths[li * nb + b] = d;
            }
        }
        let tallies =
            ctx.allreduce_with(Scope::World, "reduce.teps", tallies, None, |a, b| *a += b);

        let mut times = TimeAccumulator::new();
        times.merge(&ctx.accumulator().diff(&acc_start));
        let mut comm = CommStats::new();
        comm.merge(&ctx.comm_stats().diff(&comm_start));
        let stats = BatchRunStats {
            iterations,
            sim_seconds: (ctx.now() - t_start).as_secs(),
            visited: tallies[..nb].to_vec(),
            traversed_edges: tallies[nb..].iter().map(|&d| d / 2).collect(),
            times,
            comm,
        };
        Ok(BatchOutput {
            num_roots: nb,
            parents,
            depths,
            stats,
        })
    }

    /// Per-batch direction choices: pair counts against batch-scaled
    /// denominators — the single decision every root in the batch rides.
    /// Under the measured heuristic the pair *masses* (degree-weighted)
    /// replace the pair counts, against ×nb-scaled mass totals.
    fn select_directions(&self, st: &BatchIterationStats, visited_l: u64) -> [Direction; 6] {
        let dir = &self.part.directory;
        let cfg = &self.cfg;
        let nb = self.nb as u64;
        let total_l = self.total_l_connected * nb;
        let num_e = dir.num_e() as u64 * nb;
        let num_h = dir.num_h() as u64 * nb;
        let nhubs = num_e + num_h;
        if self.measured() {
            let fm = self.frontier_mass;
            let um = [
                (self.class_mass_total[0] * nb).saturating_sub(self.visited_mass[0]),
                (self.class_mass_total[1] * nb).saturating_sub(self.visited_mass[1]),
                (self.class_mass_total[2] * nb).saturating_sub(self.visited_mass[2]),
            ];
            if !cfg.sub_iteration {
                let m_f = fm[0] + fm[1] + fm[2];
                let m_u = um[0] + um[1] + um[2];
                let active = st.active_e + st.active_h + st.active_l;
                let d = choose_measured(cfg, self.prev_dirs[0], m_f, m_u, active, nhubs + total_l);
                return [d; 6];
            }
            let pairs = [
                (
                    fm[0] + fm[1],
                    um[0] + um[1],
                    st.active_e + st.active_h,
                    nhubs,
                ),
                (fm[0], um[2], st.active_e, num_e),
                (fm[2], um[0], st.active_l, total_l),
                (fm[1], um[2], st.active_h, num_h),
                (fm[2], um[1], st.active_l, total_l),
                (fm[2], um[2], st.active_l, total_l),
            ];
            let mut dirs = [Direction::Push; 6];
            for (i, &(m_f, m_u, active, total)) in pairs.iter().enumerate() {
                dirs[i] = choose_measured(cfg, self.prev_dirs[i], m_f, m_u, active, total);
            }
            return dirs;
        }
        if !cfg.sub_iteration {
            let active = st.active_e + st.active_h + st.active_l;
            let total = nhubs + total_l;
            let d = if total > 0 && active as f64 / total as f64 > cfg.vanilla_alpha {
                Direction::Pull
            } else {
                Direction::Push
            };
            return [d; 6];
        }
        let unvisited_l = total_l.saturating_sub(visited_l);
        let seen_h = popcount_sum(&self.hub_seen[dir.num_e() as usize..]);
        let unvisited_h = num_h - seen_h;
        [
            choose_local(cfg, st.active_e + st.active_h, nhubs),
            choose_local(cfg, st.active_e, num_e),
            choose_local(cfg, st.active_l, total_l),
            choose_crossing(cfg, st.active_h, num_h, unvisited_l, total_l),
            choose_crossing(cfg, st.active_l, total_l, unvisited_h, num_h),
            choose_crossing(cfg, st.active_l, total_l, unvisited_l, total_l),
        ]
    }

    /// Propagate this sub-iteration's hub word updates to all
    /// delegates: the same row-then-column OR-allreduce as the
    /// single-source engine, with each hub contributing one whole word.
    /// Newly global bits get their depth stamped here — every rank runs
    /// this at the same iteration, so depths stay replicated without a
    /// reduction of their own.
    fn sync_hubs(&mut self, ctx: &mut RankCtx, tag: &str, counters: &[u64]) -> Option<Vec<u64>> {
        if self.hub_update.is_empty() {
            return None;
        }
        let op = format!("hubsync.{tag}");
        let (words, counts) = hub_sync_collective(ctx, &op, &self.hub_update, counters);
        let nb = self.nb;
        let iter = self.iter;
        // The `new = global & !seen` discovery advance block-skips
        // all-stale 4-word regions; only hubs with fresh bits pay the
        // per-bit depth stamping.
        let hub_seen = &self.hub_seen;
        let hub_next = &mut self.hub_next;
        let hub_depth = &mut self.hub_depth;
        wide::for_each_and_not(&words, hub_seen, 0, words.len(), |h, newly| {
            hub_next[h] |= newly;
            let mut bits = newly;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                hub_depth[h * nb + b] = iter;
                bits &= bits - 1;
            }
        });
        wide::or_assign(&mut self.hub_seen, &words);
        self.hub_update.iter_mut().for_each(|w| *w = 0);
        Some(counts)
    }

    #[inline]
    fn note_edges(&mut self, edges: u64) {
        self.scanned += edges;
    }

    /// Attribute one worker-pool call to the current iteration.
    #[inline]
    fn note_pool(&mut self, stats: PoolStats) {
        self.pool.merge(&stats);
    }

    /// Record locally discovered hub bits (delegate-local parents).
    #[inline]
    fn discover_hub(&mut self, h: usize, mask: u64, parent: u64) {
        let new = mask & !self.hub_seen[h] & !self.hub_update[h];
        if new == 0 {
            return;
        }
        self.hub_update[h] |= new;
        let mut bits = new;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            self.hub_parent[h * self.nb + b] = parent;
            bits &= bits - 1;
        }
    }

    /// Record locally owned L discoveries.
    #[inline]
    fn discover_local(&mut self, li: usize, mask: u64, parent: u64) {
        let new = mask & !self.l_seen[li];
        if new == 0 {
            return;
        }
        self.l_seen[li] |= new;
        self.l_next[li] |= new;
        let mut bits = new;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            self.l_parent[li * self.nb + b] = parent;
            self.l_depth[li * self.nb + b] = self.iter;
            bits &= bits - 1;
        }
    }

    // ---------------------------------------------------------------
    // EH2EH — the 2D-partitioned core subgraph.
    // ---------------------------------------------------------------
    fn eh2eh(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        if dir.num_hubs() == 0 {
            return;
        }
        let my_row = ctx.row();
        let my_col = ctx.col();
        let nh = dir.num_hubs() as u64;
        match d {
            Direction::Push => {
                let frontier: Vec<u64> = (0..nh)
                    .filter(|&s| {
                        s % self.cols as u64 == my_col as u64 && self.hub_curr[s as usize] != 0
                    })
                    .collect();
                let degrees: Vec<u64> =
                    frontier.iter().map(|&s| part.eh_by_src.degree(s)).collect();
                let cpes = ctx.machine().cpes_per_node();
                let max_chunk = balance::max_chunk_edges(&degrees, cpes);
                // Pool-chunked over frontier sources; candidate
                // (dst, mask, parent) triples applied in chunk order
                // replay the serial word-merge order exactly.
                let hub_curr = &self.hub_curr;
                let (parts, pstats) =
                    pool::run_ranges(frontier.len() as u64, SCAN_GRAIN_ITEMS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(usize, u64, u64)> = Vec::new();
                        for &s in &frontier[r.start as usize..r.end as usize] {
                            let mask = hub_curr[s as usize];
                            let parent = dir.vertex_of(s as u32);
                            for &dst in part.eh_by_src.neighbors(s) {
                                edges += 1;
                                cand.push((dst as usize, mask, parent));
                            }
                        }
                        (edges, cand)
                    });
                let mut edges = 0u64;
                for (e, cand) in parts {
                    edges += e;
                    for (dst, mask, parent) in cand {
                        self.discover_hub(dst, mask, parent);
                    }
                }
                self.note_pool(pstats);
                self.note_edges(edges);
                costing::charge_balanced_push(
                    ctx,
                    "sub.EH2EH.push",
                    max_chunk,
                    frontier.len() as u64,
                );
            }
            Direction::Pull => {
                // The activeness structure is one word per hub — 64×
                // the single-source bit vector — so segmenting only
                // models on-chip when the word vector still fits.
                let cgs = ctx.machine().cgs_per_node;
                let cpes_per_cg = ctx.machine().cpes_per_cg;
                let word_bits = nh * 64;
                let segment_fits = SegmentedBitvec::fits_budget(
                    word_bits.div_ceil(cgs as u64),
                    cpes_per_cg,
                    ctx.machine().ldm_bytes / 2,
                );
                let segmenting = self.cfg.segmenting && segment_fits;
                let slots = nh.div_ceil(self.cols as u64).max(1);
                let cols = self.cols as u64;
                let seg_of =
                    move |s: u64| -> usize { ((s / cols) * cgs as u64 / slots) as usize % cgs };
                // Destination-partitioned chunks: each dst word is
                // examined by exactly one chunk and its want/early-exit
                // logic reads only pre-scan state, so replaying the
                // per-chunk (dst, got, parent) events in chunk order is
                // the serial scan.
                let rows = self.rows as u64;
                let my_row = my_row as u64;
                let n_dst = if my_row < nh {
                    (nh - my_row).div_ceil(rows)
                } else {
                    0
                };
                let full = self.full;
                let hub_curr = &self.hub_curr;
                let hub_seen = &self.hub_seen;
                let hub_update = &self.hub_update;
                let (parts, pstats) = pool::run_ranges(n_dst, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut probes = vec![0u64; cgs];
                    let mut events: Vec<(usize, u64, u64)> = Vec::new();
                    for k in r {
                        let dst = my_row + k * rows;
                        let di = dst as usize;
                        let mut want = full & !hub_seen[di] & !hub_update[di];
                        if want == 0 {
                            continue;
                        }
                        for &s in part.eh_by_dst.neighbors(dst) {
                            edges += 1;
                            probes[seg_of(s)] += 1;
                            let got = hub_curr[s as usize] & want;
                            if got != 0 {
                                events.push((di, got, dir.vertex_of(s as u32)));
                                want &= !got;
                                if want == 0 {
                                    break; // early exit once every bit found a parent
                                }
                            }
                        }
                    }
                    (edges, probes, events)
                });
                let mut edges = 0u64;
                let mut probes = vec![0u64; cgs];
                for (e, pr, events) in parts {
                    edges += e;
                    for (slot, add) in probes.iter_mut().zip(&pr) {
                        *slot += *add;
                    }
                    for (di, got, parent) in events {
                        self.discover_hub(di, got, parent);
                    }
                }
                self.note_pool(pstats);
                self.note_edges(edges);
                costing::charge_eh_pull(ctx, "sub.EH2EH.pull", edges, &probes, segmenting);
            }
        }
    }

    // ---------------------------------------------------------------
    // E2L — E adjacency attached to L owners; fully node-local.
    // ---------------------------------------------------------------
    fn e2l(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        let num_e = dir.num_e() as u64;
        if num_e == 0 || self.total_el == 0 {
            return;
        }
        let range = part.owned_range();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                // Read-only scan of hub words; (li, mask, parent)
                // candidates applied in chunk order replay serial
                // discovery exactly (discover_local re-checks seen).
                let hub_curr = &self.hub_curr;
                let (parts, pstats) = pool::run_ranges(num_e, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut cand: Vec<(usize, u64, u64)> = Vec::new();
                    for e in r {
                        let mask = hub_curr[e as usize];
                        if mask == 0 || part.el_by_hub.degree(e) == 0 {
                            continue;
                        }
                        let parent = dir.vertex_of(e as u32);
                        for &l in part.el_by_hub.neighbors(e) {
                            edges += 1;
                            cand.push(((l - range.start) as usize, mask, parent));
                        }
                    }
                    (edges, cand)
                });
                for (e, cand) in parts {
                    edges += e;
                    for (li, mask, parent) in cand {
                        self.discover_local(li, mask, parent);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.E2L.push", edges);
            }
            Direction::Pull => {
                // Destination-partitioned: each li is examined by one
                // chunk, and its want word reads only pre-scan l_seen.
                let local_n = range.end - range.start;
                let full = self.full;
                let l_seen = &self.l_seen;
                let hub_curr = &self.hub_curr;
                let (parts, pstats) = pool::run_ranges(local_n, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut events: Vec<(usize, u64, u64)> = Vec::new();
                    for off in r {
                        let l = range.start + off;
                        let li = off as usize;
                        let mut want = full & !l_seen[li];
                        if want == 0 || part.el_by_local.degree(l) == 0 {
                            continue;
                        }
                        for &e in part.el_by_local.neighbors(l) {
                            edges += 1;
                            let got = hub_curr[e as usize] & want;
                            if got != 0 {
                                events.push((li, got, dir.vertex_of(e as u32)));
                                want &= !got;
                                if want == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    (edges, events)
                });
                for (e, events) in parts {
                    edges += e;
                    for (li, got, parent) in events {
                        self.discover_local(li, got, parent);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.E2L.pull", edges);
            }
        }
        self.note_edges(edges);
    }

    // ---------------------------------------------------------------
    // L2E — same storage, reverse roles; hub updates via delegates.
    // ---------------------------------------------------------------
    fn l2e(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        let num_e = dir.num_e() as u64;
        if num_e == 0 || self.total_el == 0 {
            return;
        }
        let range = part.owned_range();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                // Read-only scan of L words; (hub, mask, parent)
                // candidates applied in chunk order.
                let l_curr = &self.l_curr;
                let (parts, pstats) =
                    pool::run_ranges(l_curr.len() as u64, SCAN_GRAIN_ITEMS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(usize, u64, u64)> = Vec::new();
                        for li in r {
                            let mask = l_curr[li as usize];
                            let l = range.start + li;
                            if mask == 0 || part.el_by_local.degree(l) == 0 {
                                continue;
                            }
                            for &e in part.el_by_local.neighbors(l) {
                                edges += 1;
                                cand.push((e as usize, mask, l));
                            }
                        }
                        (edges, cand)
                    });
                for (e, cand) in parts {
                    edges += e;
                    for (ei, mask, l) in cand {
                        self.discover_hub(ei, mask, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2E.push", edges);
            }
            Direction::Pull => {
                // Destination-partitioned over E hubs; want reads only
                // pre-scan seen/update words.
                let full = self.full;
                let l_curr = &self.l_curr;
                let hub_seen = &self.hub_seen;
                let hub_update = &self.hub_update;
                let (parts, pstats) = pool::run_ranges(num_e, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut events: Vec<(usize, u64, u64)> = Vec::new();
                    for e in r {
                        let ei = e as usize;
                        let mut want = full & !hub_seen[ei] & !hub_update[ei];
                        if want == 0 || part.el_by_hub.degree(e) == 0 {
                            continue;
                        }
                        for &l in part.el_by_hub.neighbors(e) {
                            edges += 1;
                            let got = l_curr[(l - range.start) as usize] & want;
                            if got != 0 {
                                events.push((ei, got, l));
                                want &= !got;
                                if want == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    (edges, events)
                });
                for (e, events) in parts {
                    edges += e;
                    for (ei, got, l) in events {
                        self.discover_hub(ei, got, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2E.pull", edges);
            }
        }
        self.note_edges(edges);
    }

    // ---------------------------------------------------------------
    // H2L — stored at row/col intersections; push messages stay intra-row.
    // ---------------------------------------------------------------
    fn h2l(&mut self, ctx: &mut RankCtx, d: Direction) {
        if self.total_h2l == 0 {
            return;
        }
        let part = self.part;
        let dir = &part.directory;
        let topo = ctx.topology();
        let num_e = dir.num_e() as u64;
        let nh = dir.num_hubs() as u64;
        let mut edges = 0u64;
        let mut msgs: Vec<(u64, u64, u64)> = Vec::new();
        match d {
            Direction::Push => {
                // Read-only scan of hub words; per-chunk message lists
                // concatenated in chunk order keep the serial
                // h-ascending message order.
                let hub_curr = &self.hub_curr;
                let (parts, pstats) = pool::run_ranges(nh - num_e, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut out: Vec<(u64, u64, u64)> = Vec::new();
                    for off in r {
                        let h = num_e + off;
                        let mask = hub_curr[h as usize];
                        if mask == 0 || part.h2l_by_hub.degree(h) == 0 {
                            continue;
                        }
                        let parent = dir.vertex_of(h as u32);
                        for &l in part.h2l_by_hub.neighbors(h) {
                            edges += 1;
                            out.push((l, parent, mask));
                        }
                    }
                    (edges, out)
                });
                for (e, out) in parts {
                    edges += e;
                    msgs.extend(out);
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.H2L.push", edges);
                self.exchange_and_apply_row(ctx, msgs, "H2L", "sub.H2L.push");
            }
            Direction::Pull => {
                let row_seen = self.gather_row_seen(ctx);
                let row_range = part.row_range(&topo);
                // Destination-partitioned over the row's L interval;
                // want reads the pre-gathered row_seen snapshot only.
                let row_n = row_range.end - row_range.start;
                let full = self.full;
                let hub_curr = &self.hub_curr;
                let row_seen = &row_seen;
                let (parts, pstats) = pool::run_ranges(row_n, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut out: Vec<(u64, u64, u64)> = Vec::new();
                    for off in r {
                        let l = row_range.start + off;
                        if part.h2l_by_local.degree(l) == 0 {
                            continue;
                        }
                        let mut want = full & !row_seen[off as usize];
                        if want == 0 {
                            continue;
                        }
                        for &h in part.h2l_by_local.neighbors(l) {
                            edges += 1;
                            let got = hub_curr[h as usize] & want;
                            if got != 0 {
                                out.push((l, dir.vertex_of(h as u32), got));
                                want &= !got;
                                if want == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    (edges, out)
                });
                for (e, out) in parts {
                    edges += e;
                    msgs.extend(out);
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.H2L.pull", edges);
                self.exchange_and_apply_row(ctx, msgs, "H2L", "sub.H2L.pull");
            }
        }
        self.note_edges(edges);
    }

    /// Bucket `(dest L, parent, mask)` messages by destination column
    /// with OCS-RMA, exchange them intra-row, and apply at the owners.
    fn exchange_and_apply_row(
        &mut self,
        ctx: &mut RankCtx,
        msgs: Vec<(u64, u64, u64)>,
        comm_tag: &str,
        cost_category: &str,
    ) {
        let dist = self.part.dist;
        let topo = ctx.topology();
        let cols = self.cols;
        let machine = *ctx.machine();
        let (buckets, report) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &msgs,
            cols,
            machine.cgs_per_node,
            |&(l, _, _)| topo.col_of(dist.owner(l)),
        );
        ctx.charge(cost_category, report.time);
        let received = ctx.alltoallv(Scope::Row, &format!("comm.alltoallv.{comm_tag}"), buckets);
        let msgs: Vec<(u64, u64, u64)> = received.into_iter().flatten().collect();
        self.apply_l_messages(ctx, msgs, cost_category);
    }

    /// Two-stage destination update (§4.4) of arriving
    /// `(dest, parent, mask)` triples.
    fn apply_l_messages(&mut self, ctx: &mut RankCtx, msgs: Vec<(u64, u64, u64)>, category: &str) {
        if msgs.is_empty() {
            return;
        }
        let range = self.part.owned_range();
        let span = (range.end - range.start).max(1);
        let machine = *ctx.machine();
        let ranges = 32u64;
        let (buckets, report) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &msgs,
            ranges as usize,
            machine.cgs_per_node,
            |&(l, _, _)| range_bucket(l - range.start, span, ranges),
        );
        ctx.charge(category, report.time);
        for bucket in buckets {
            for (l, parent, mask) in bucket {
                self.discover_local((l - range.start) as usize, mask, parent);
            }
        }
    }

    /// Allgather the row's owned seen-words into one word vector over
    /// the row's vertex interval.
    fn gather_row_seen(&self, ctx: &mut RankCtx) -> Vec<u64> {
        let topo = ctx.topology();
        let dist = self.part.dist;
        let my_row = topo.row_of(ctx.rank());
        let row_range = sunbfs_part::row_vertex_range(&dist, &topo, my_row);
        let gathered = ctx.allgatherv(Scope::Row, "comm.allgather.H2L", self.l_seen.clone());
        let mut row_seen = vec![0u64; (row_range.end - row_range.start) as usize];
        for (pos, words) in gathered.into_iter().enumerate() {
            let member_rank = topo.rank_at(my_row, pos);
            let member_range = dist.range_of(member_rank);
            let base = (member_range.start - row_range.start) as usize;
            row_seen[base..base + words.len()].copy_from_slice(&words);
        }
        row_seen
    }

    // ---------------------------------------------------------------
    // L2H — stored at L's owner; hub delegates absorb the updates.
    // ---------------------------------------------------------------
    fn l2h(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        let num_e = dir.num_e() as u64;
        let nh = dir.num_hubs() as u64;
        if num_e == nh || self.total_lh == 0 {
            return;
        }
        let range = part.owned_range();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                // Read-only scan of L words; (hub, mask, parent)
                // candidates applied in chunk order.
                let l_curr = &self.l_curr;
                let (parts, pstats) =
                    pool::run_ranges(l_curr.len() as u64, SCAN_GRAIN_ITEMS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(usize, u64, u64)> = Vec::new();
                        for li in r {
                            let mask = l_curr[li as usize];
                            let l = range.start + li;
                            if mask == 0 || part.lh_by_local.degree(l) == 0 {
                                continue;
                            }
                            for &h in part.lh_by_local.neighbors(l) {
                                edges += 1;
                                cand.push((h as usize, mask, l));
                            }
                        }
                        (edges, cand)
                    });
                for (e, cand) in parts {
                    edges += e;
                    for (hi, mask, l) in cand {
                        self.discover_hub(hi, mask, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2H.push", edges);
            }
            Direction::Pull => {
                // Destination-partitioned over H hubs; want reads only
                // pre-scan seen/update words.
                let full = self.full;
                let l_curr = &self.l_curr;
                let hub_seen = &self.hub_seen;
                let hub_update = &self.hub_update;
                let (parts, pstats) = pool::run_ranges(nh - num_e, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut events: Vec<(usize, u64, u64)> = Vec::new();
                    for off in r {
                        let h = num_e + off;
                        let hi = h as usize;
                        let mut want = full & !hub_seen[hi] & !hub_update[hi];
                        if want == 0 || part.lh_by_hub.degree(h) == 0 {
                            continue;
                        }
                        for &l in part.lh_by_hub.neighbors(h) {
                            edges += 1;
                            let got = l_curr[(l - range.start) as usize] & want;
                            if got != 0 {
                                events.push((hi, got, l));
                                want &= !got;
                                if want == 0 {
                                    break;
                                }
                            }
                        }
                    }
                    (edges, events)
                });
                for (e, events) in parts {
                    edges += e;
                    for (hi, got, l) in events {
                        self.discover_hub(hi, got, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2H.pull", edges);
            }
        }
        self.note_edges(edges);
    }

    // ---------------------------------------------------------------
    // L2L — vanilla 1D with hierarchical forwarding (§4.4).
    // ---------------------------------------------------------------
    fn l2l(&mut self, ctx: &mut RankCtx, d: Direction) {
        if self.total_l2l == 0 {
            return;
        }
        let part = self.part;
        let dist = part.dist;
        let topo = ctx.topology();
        let range = part.owned_range();
        let machine = *ctx.machine();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                // Read-only scan of L words; per-chunk message lists
                // concatenated in chunk order keep the serial
                // l-ascending message order for the OCS sort.
                let l_curr = &self.l_curr;
                let (parts, pstats) =
                    pool::run_ranges(l_curr.len() as u64, SCAN_GRAIN_ITEMS, |_, r| {
                        let mut edges = 0u64;
                        let mut out: Vec<(u64, u64, u64)> = Vec::new();
                        for li in r {
                            let mask = l_curr[li as usize];
                            let l = range.start + li;
                            if mask == 0 || part.l2l.degree(l) == 0 {
                                continue;
                            }
                            for &v in part.l2l.neighbors(l) {
                                edges += 1;
                                out.push((v, l, mask));
                            }
                        }
                        (edges, out)
                    });
                let mut msgs: Vec<(u64, u64, u64)> = Vec::new();
                for (e, out) in parts {
                    edges += e;
                    msgs.extend(out);
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2L.push", edges);
                let (col_buckets, rep1) = ocs_sort_rma(
                    &machine,
                    &OcsConfig::default(),
                    &msgs,
                    self.rows,
                    machine.cgs_per_node,
                    |&(v, _, _)| topo.row_of(dist.owner(v)),
                );
                ctx.charge("sub.L2L.push", rep1.time);
                let forwarded: Vec<(u64, u64, u64)> = ctx
                    .alltoallv(Scope::Col, "comm.alltoallv.L2L", col_buckets)
                    .into_iter()
                    .flatten()
                    .collect();
                let (row_buckets, rep2) = ocs_sort_rma(
                    &machine,
                    &OcsConfig::default(),
                    &forwarded,
                    self.cols,
                    machine.cgs_per_node,
                    |&(v, _, _)| topo.col_of(dist.owner(v)),
                );
                ctx.charge("sub.L2L.push", rep2.time);
                let received = ctx.alltoallv(Scope::Row, "comm.alltoallv.L2L", row_buckets);
                let msgs: Vec<(u64, u64, u64)> = received.into_iter().flatten().collect();
                self.apply_l_messages(ctx, msgs, "sub.L2L.push");
            }
            Direction::Pull => {
                // Query/confirm two-phase: unvisited slots ask the
                // owners of their neighbors which of the wanted bits are
                // in the frontier.
                let p = ctx.nranks();
                // Query generation is a read-only scan of l_seen;
                // per-chunk per-owner query lists merged in chunk order
                // keep each owner's serial query order.
                let local_n = range.end - range.start;
                let full = self.full;
                let l_seen = &self.l_seen;
                let (parts, pstats) = pool::run_ranges(local_n, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut out: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); p];
                    for off in r {
                        let l = range.start + off;
                        let want = full & !l_seen[off as usize];
                        if want == 0 || part.l2l.degree(l) == 0 {
                            continue;
                        }
                        for &u in part.l2l.neighbors(l) {
                            edges += 1;
                            out[dist.owner(u)].push((u, l, want));
                        }
                    }
                    (edges, out)
                });
                let mut queries: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); p];
                for (e, out) in parts {
                    edges += e;
                    for (dst, batch) in queries.iter_mut().zip(out) {
                        dst.extend(batch);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2L.pull", edges);
                let incoming = ctx.alltoallv(Scope::World, "comm.alltoallv.L2L", queries);
                let mut replies: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); p];
                let mut checked = 0u64;
                for batch in incoming {
                    for (u, l, want) in batch {
                        checked += 1;
                        let got = self.l_curr[(u - range.start) as usize] & want;
                        if got != 0 {
                            replies[dist.owner(l)].push((l, u, got));
                        }
                    }
                }
                costing::charge_apply(ctx, "sub.L2L.pull", checked);
                let confirmed = ctx.alltoallv(Scope::World, "comm.alltoallv.L2L", replies);
                let msgs: Vec<(u64, u64, u64)> = confirmed.into_iter().flatten().collect();
                self.apply_l_messages(ctx, msgs, "sub.L2L.pull");
            }
        }
        self.note_edges(edges);
    }
}

/// Sum of set bits across a word slice (4-word-unrolled wide kernel).
#[inline]
fn popcount_sum(words: &[u64]) -> u64 {
    wide::count_ones(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::MachineConfig;
    use sunbfs_net::{Cluster, MeshShape};
    use sunbfs_part::{build_1p5d, Thresholds};
    use sunbfs_rmat::RmatParams;

    fn batch_over_cluster(
        scale: u32,
        ranks: usize,
        thresholds: Thresholds,
        roots: &[u64],
    ) -> (u64, Vec<Vec<u64>>, Vec<Vec<u32>>) {
        let params = RmatParams::graph500(scale, 42);
        let n = params.num_vertices();
        let cluster = Cluster::new(MeshShape::near_square(ranks), MachineConfig::new_sunway());
        let cfg = EngineConfig::default();
        let outs = cluster.run(|ctx| {
            let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, ranks as u64);
            let part = build_1p5d(ctx, n, &chunk, thresholds);
            run_bfs_batch(ctx, &part, roots, &cfg).expect("batch terminates")
        });
        // Assemble global per-root parent/depth arrays from the
        // rank-owned block slices.
        let nb = roots.len();
        let mut parents = vec![vec![INVALID_VERTEX; n as usize]; nb];
        let mut depths = vec![vec![UNREACHED_DEPTH; n as usize]; nb];
        let dist = sunbfs_part::VertexDistribution::new(n, ranks);
        for (rank, out) in outs.iter().enumerate() {
            let range = dist.range_of(rank);
            for li in 0..(range.end - range.start) as usize {
                for (b, (p, d)) in parents.iter_mut().zip(depths.iter_mut()).enumerate() {
                    p[range.start as usize + li] = out.parent_of(li, b);
                    d[range.start as usize + li] = out.depth_of(li, b);
                }
            }
        }
        (n, parents, depths)
    }

    /// First `k` distinct connected (degree > 0) vertices of the graph.
    fn connected_roots(params: &RmatParams, k: usize) -> Vec<u64> {
        let n = params.num_vertices();
        let edges = sunbfs_rmat::generate_edges(params);
        let degs = sunbfs_rmat::degrees(n, &edges);
        (0..n).filter(|&v| degs[v as usize] > 0).take(k).collect()
    }

    #[test]
    fn batch_depths_match_reference_bfs() {
        let params = RmatParams::graph500(8, 42);
        let edges = sunbfs_rmat::generate_edges(&params);
        let roots = connected_roots(&params, 5);
        let (n, parents, depths) = batch_over_cluster(8, 4, Thresholds::new(64, 16), &roots);
        for (b, &root) in roots.iter().enumerate() {
            let (_, ref_depths) = crate::validate::reference_bfs(n, &edges, root);
            for v in 0..n as usize {
                let got = depths[b][v];
                let want = ref_depths[v];
                assert_eq!(
                    if got == UNREACHED_DEPTH {
                        u64::MAX
                    } else {
                        got as u64
                    },
                    want,
                    "root {root} vertex {v}"
                );
            }
            crate::validate::validate_parents(n, &edges, root, &parents[b])
                .expect("batch parent tree validates");
        }
    }

    #[test]
    fn batch_width_one_matches_single_source_shape() {
        let (n, parents, depths) = batch_over_cluster(7, 4, Thresholds::new(64, 16), &[1]);
        assert_eq!(parents.len(), 1);
        assert_eq!(parents[0].len(), n as usize);
        assert_eq!(depths[0][1], 0);
        assert_eq!(parents[0][1], 1);
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn oversized_batch_is_rejected() {
        let params = RmatParams::graph500(6, 42);
        let n = params.num_vertices();
        let cluster = Cluster::new(MeshShape::new(1, 1), MachineConfig::new_sunway());
        let roots: Vec<u64> = (0..65).collect();
        cluster.run(|ctx| {
            let chunk = sunbfs_rmat::generate_chunk(&params, 0, 1);
            let part = build_1p5d(ctx, n, &chunk, Thresholds::new(64, 16));
            let _ = run_bfs_batch(ctx, &part, &roots, &EngineConfig::default());
        });
    }
}
