#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

# The fault suites prove every injected failure terminates in a typed
# outcome instead of a hung barrier — so they run under a hard wall
# timeout: a hang is a regression, not a slow test.
echo "==> fault containment suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-net --test fault_matrix
timeout 300 cargo test -q --test fault_e2e --test fault_env

# Self-healing: exchange-layer retransmission heals corruption below
# the retry loop, and checkpoint/resume salvages completed iterations.
# Same hard-timeout rule — the heal protocol's barriers must never hang.
echo "==> recovery suite (hard timeout)"
timeout 600 cargo test -q --test checkpoint_resume --test recovery_env

# Smoke: an injected bitflip on a live runner invocation must be healed
# at the exchange layer and surface as a retransmit in the JSON report.
echo "==> fault-plan smoke (graph500_runner --json)"
SMOKE_JSON="$(mktemp)"
SUNBFS_FAULT_PLAN="corrupt@1:3:bitflip" timeout 300 \
    cargo run -q --release --example graph500_runner -- 9 4 256 64 1 --json "$SMOKE_JSON" \
    > /dev/null
grep -Eq '"retransmits": *[1-9]' "$SMOKE_JSON"
grep -Eq '"schema_version": *3' "$SMOKE_JSON"
rm -f "$SMOKE_JSON"

echo "CI green."
