//! Shared harness utilities for the figure/table benches.
//!
//! Every bench target under `benches/` regenerates one table or figure
//! of the paper's evaluation section (§6). The helpers here standardize
//! the runs (so all figures share machine constants and seeds), the
//! category grouping that turns raw [`TimeAccumulator`] entries into
//! the paper's breakdowns, and the ASCII rendering of series.
//!
//! Absolute GTEPS are *simulated-machine* numbers at laptop scale; what
//! must (and does) match the paper is the shape: orderings, ratios, and
//! crossover positions. `EXPERIMENTS.md` records both sides.

use sunbfs::driver::{run_benchmark, BenchmarkReport, FaultSpec, RunConfig};
use sunbfs_common::{MachineConfig, TimeAccumulator};
use sunbfs_core::EngineConfig;
use sunbfs_net::MeshShape;
use sunbfs_part::Thresholds;

/// The weak-scaling sweep shared by Figures 9–11: constant edges per
/// rank, fixed supernode width (8 ranks per row — the laptop analog of
/// the paper's 256-node supernodes), growing row count. The baseline is
/// one full supernode, exactly as the paper normalizes to one supernode
/// (256 nodes): a single rank would have *no* communication at all and
/// would make "ideal" meaningless.
pub fn weak_scaling_sweep() -> Vec<(MeshShape, u32)> {
    vec![
        (MeshShape::new(1, 8), 17),
        (MeshShape::new(2, 8), 18),
        (MeshShape::new(4, 8), 19),
        (MeshShape::new(8, 8), 20),
    ]
}

/// Degree thresholds that track the sweep's SCALE (hub degrees grow
/// roughly with sqrt of the graph size).
pub fn sweep_thresholds(scale: u32) -> Thresholds {
    let e = 1024u32 << ((scale.saturating_sub(17)) / 2);
    let h = 128u32 << ((scale.saturating_sub(17)) / 2);
    Thresholds::new(e, h)
}

/// Standard benchmark run used by the figure harnesses.
pub fn run_config(
    scale: u32,
    ranks: usize,
    thresholds: Thresholds,
    engine: EngineConfig,
    num_roots: usize,
) -> RunConfig {
    RunConfig {
        scale,
        edge_factor: 16,
        mesh: MeshShape::near_square(ranks),
        thresholds,
        engine,
        machine: MachineConfig::new_sunway(),
        seed: 42,
        num_roots,
        validate: false,
        faults: FaultSpec::NONE,
        max_root_retries: 2,
        serve_batch: false,
        serve_baseline: false,
        save_graph: None,
        load_graph: None,
    }
}

/// Run and return the report, printing a one-line summary.
///
/// When `SUNBFS_BENCH_JSON` is set in the environment, the run is also
/// exported through the driver's shared JSON record
/// (`sunbfs::metrics`) as `BENCH_<scale>_<rows>x<cols>.json` — the same
/// schema the `graph500_runner` `--json` flag writes, so figure
/// harnesses and the driver report through one format.
pub fn run_and_summarize(label: &str, cfg: &RunConfig) -> BenchmarkReport {
    let wall = std::time::Instant::now();
    let report = run_benchmark(cfg).unwrap_or_else(|e| panic!("[{label}] benchmark failed: {e}"));
    println!(
        "[{label}] SCALE {} on {} ranks: {:.3} GTEPS (harmonic over {} roots; wall {:.1?})",
        cfg.scale,
        cfg.mesh.num_ranks(),
        report.harmonic_mean_gteps(),
        report.runs.len(),
        wall.elapsed(),
    );
    if std::env::var_os("SUNBFS_BENCH_JSON").is_some() {
        let path = sunbfs::metrics::default_report_path(cfg.scale, cfg.mesh);
        match sunbfs::metrics::write_report(&report, std::path::Path::new(&path)) {
            Ok(()) => println!("[{label}] JSON report: {path}"),
            Err(e) => eprintln!("[{label}] could not write {path}: {e}"),
        }
    }
    report
}

/// The subgraph-attribution grouping of Figure 10: every category maps
/// to one of the six components, `reduce`, or `other`.
pub fn group_by_subgraph(times: &TimeAccumulator) -> Vec<(String, f64)> {
    let mut groups: std::collections::BTreeMap<&str, f64> = Default::default();
    for (cat, secs) in times.entries() {
        let bucket = if cat.starts_with("reduce.") || cat.contains(".reduce.") {
            "reduce"
        } else if let Some(comp) = ["EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L"]
            .iter()
            .find(|c| cat.contains(*c))
        {
            comp
        } else {
            "other"
        };
        *groups.entry(bucket).or_insert(0.0) += secs;
    }
    // Paper's stacking order.
    let order = [
        "EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L", "reduce", "other",
    ];
    order
        .iter()
        .map(|&k| (k.to_string(), groups.get(k).copied().unwrap_or(0.0)))
        .collect()
}

/// The communication-type grouping of Figure 11.
pub fn group_by_commtype(times: &TimeAccumulator) -> Vec<(String, f64)> {
    let mut groups: std::collections::BTreeMap<&str, f64> = Default::default();
    for (cat, secs) in times.entries() {
        let bucket = if cat.starts_with("comm.alltoallv") {
            "alltoallv"
        } else if cat.starts_with("comm.allgather") {
            "allgather"
        } else if cat.starts_with("comm.reduce_scatter") {
            "reduce_scatter"
        } else if cat.starts_with("comm.imbalance") || cat.starts_with("comm.barrier") {
            "imbalance/latency"
        } else if cat.starts_with("sub.") {
            "compute"
        } else {
            "other"
        };
        *groups.entry(bucket).or_insert(0.0) += secs;
    }
    let order = [
        "reduce_scatter",
        "allgather",
        "alltoallv",
        "imbalance/latency",
        "compute",
        "other",
    ];
    order
        .iter()
        .map(|&k| (k.to_string(), groups.get(k).copied().unwrap_or(0.0)))
        .collect()
}

/// Push/pull split per phase for the ablation (Figure 15).
pub fn group_by_phase_direction(times: &TimeAccumulator) -> Vec<(String, f64)> {
    let mut eh_pull = 0.0;
    let mut eh_push = 0.0;
    let mut other_pull = 0.0;
    let mut other_push = 0.0;
    let mut other = 0.0;
    for (cat, secs) in times.entries() {
        if cat.starts_with("sub.EH2EH.pull") {
            eh_pull += secs;
        } else if cat.starts_with("sub.EH2EH.push") {
            eh_push += secs;
        } else if cat.starts_with("sub.") && cat.ends_with(".pull") {
            other_pull += secs;
        } else if cat.starts_with("sub.") && cat.ends_with(".push") {
            other_push += secs;
        } else {
            other += secs;
        }
    }
    vec![
        ("EH2EH Pull".into(), eh_pull),
        ("Others Pull".into(), other_pull),
        ("EH2EH Push".into(), eh_push),
        ("Others Push".into(), other_push),
        ("Others".into(), other),
    ]
}

/// Print grouped times as a percentage table with ASCII bars.
pub fn print_percentages(title: &str, groups: &[(String, f64)]) {
    let total: f64 = groups.iter().map(|(_, s)| s).sum();
    println!("{title} (total {:.3} ms simulated):", total * 1e3);
    for (name, secs) in groups {
        let pct = if total > 0.0 {
            100.0 * secs / total
        } else {
            0.0
        };
        println!("  {name:<18} {pct:>6.1}%  {}", bar(pct, 50.0));
    }
}

/// An ASCII bar scaled so `full` percent fills 40 columns.
pub fn bar(value: f64, full: f64) -> String {
    let cols = ((value / full) * 40.0).round().max(0.0) as usize;
    "#".repeat(cols.min(80))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::SimTime;

    fn sample_times() -> TimeAccumulator {
        let mut t = TimeAccumulator::new();
        t.add("sub.EH2EH.pull", SimTime::secs(2.0));
        t.add("sub.L2L.push", SimTime::secs(1.0));
        t.add("comm.alltoallv.L2L", SimTime::secs(3.0));
        t.add("comm.allgather.hubsync.EH2EH", SimTime::secs(0.5));
        t.add("comm.reduce_scatter.hubsync.EH2EH", SimTime::secs(0.5));
        t.add("comm.imbalance", SimTime::secs(0.25));
        t.add("reduce.parent.compute", SimTime::secs(0.125));
        t
    }

    #[test]
    fn subgraph_grouping_attributes_comm_to_components() {
        let g = group_by_subgraph(&sample_times());
        let get = |k: &str| g.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("EH2EH"), 3.0); // pull + hubsync halves
        assert_eq!(get("L2L"), 4.0); // push + alltoallv
        assert_eq!(get("reduce"), 0.125);
        assert_eq!(get("other"), 0.25);
    }

    #[test]
    fn commtype_grouping_matches_figure11_buckets() {
        let g = group_by_commtype(&sample_times());
        let get = |k: &str| g.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("alltoallv"), 3.0);
        assert_eq!(get("allgather"), 0.5);
        assert_eq!(get("reduce_scatter"), 0.5);
        assert_eq!(get("compute"), 3.0);
        assert_eq!(get("imbalance/latency"), 0.25);
    }

    #[test]
    fn phase_direction_split() {
        let g = group_by_phase_direction(&sample_times());
        let get = |k: &str| g.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("EH2EH Pull"), 2.0);
        assert_eq!(get("Others Push"), 1.0);
        assert!(get("Others") > 4.0);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(50.0, 50.0).len(), 40);
        assert_eq!(bar(0.0, 50.0).len(), 0);
        assert_eq!(bar(1000.0, 50.0).len(), 80);
    }
}
