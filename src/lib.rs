//! # sunbfs
//!
//! A from-scratch Rust reproduction of **"Scaling Graph Traversal to
//! 281 Trillion Edges with 40 Million Cores"** (Cao et al., PPoPP
//! 2022): Graph 500-conforming breadth-first search built on 3-level
//! degree-aware 1.5D graph partitioning, sub-iteration direction
//! optimization, CG-aware core-subgraph segmenting, and on-chip sorting
//! with RMA — over a simulated New Sunway supercomputer (SW26010-Pro
//! chips + oversubscribed fat tree).
//!
//! The workspace is layered:
//!
//! * [`common`] — bitmaps, RNG, histograms, machine constants,
//! * [`rmat`] — the Graph 500 Kronecker generator,
//! * [`net`] — the SPMD cluster runtime with costed collectives,
//! * [`sunway`] — the SW26010-Pro chip simulator (OCS-RMA, LDM segmenting),
//! * [`sort`] — PARADIS in-place radix sort + PSRS global sort,
//! * [`part`] — the 1.5D partitioner and its degenerate baselines,
//! * [`framework`] — the §8 vertex-program framework
//!   (BFS/SSSP/CC/PageRank over the same partition),
//! * [`core`] — the BFS engine itself (single-source and the
//!   bit-parallel multi-source batch variant),
//! * [`store`] — the persistent partition store: a paged, checksummed
//!   on-disk format so a restart opens the graph file instead of
//!   regenerating and repartitioning it (`docs/STORE.md`),
//! * [`mutate`] — live graph mutations: the per-rank delta overlay,
//!   epoch-versioned edge-insert batches, incremental BFS repair, and
//!   delta-into-base compaction (`docs/UPDATES.md`),
//! * [`serve`] — the BFS query service: a session-persistent partition
//!   behind a bounded admission queue with multi-source batching,
//! * [`driver`] — the end-to-end Graph 500 benchmark pipeline
//!   (generate → partition → traverse × roots → validate → report).
//!
//! ## Quickstart
//!
//! ```
//! use sunbfs::driver::{run_benchmark, RunConfig};
//!
//! let report = run_benchmark(&RunConfig::small_test(10, 4)).expect("benchmark must pass");
//! assert!(report.mean_gteps() > 0.0);
//! assert!(report.validated);
//! ```

pub mod driver;
pub mod metrics;

pub use sunbfs_common as common;
pub use sunbfs_core as core;
pub use sunbfs_framework as framework;
pub use sunbfs_mutate as mutate;
pub use sunbfs_net as net;
pub use sunbfs_part as part;
pub use sunbfs_rmat as rmat;
pub use sunbfs_serve as serve;
pub use sunbfs_sort as sort;
pub use sunbfs_store as store;
pub use sunbfs_sunway as sunway;
