//! Process-mesh topology.
//!
//! The paper organizes processes into an `R × C` virtual mesh (§4.1)
//! with **rows mapped to supernodes**: intra-row communication stays
//! inside a supernode's full-bisection network, while column-wise and
//! global communication crosses the oversubscribed top-level fat tree
//! (§3.2). This module provides the rank ↔ (row, col) arithmetic and
//! the supernode mapping used by the cost model.

/// Shape of the virtual process mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshShape {
    /// Number of rows (`R`); each row is one supernode.
    pub rows: usize,
    /// Number of columns (`C`); nodes within a row share a supernode.
    pub cols: usize,
}

impl MeshShape {
    /// Create a mesh shape; both dimensions must be nonzero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        MeshShape { rows, cols }
    }

    /// A near-square mesh for `n` ranks (`rows * cols == n`, rows ≤ cols).
    ///
    /// Picks the factorization with rows closest to `sqrt(n)` from below,
    /// the usual choice for 2D-style partitionings.
    pub fn near_square(n: usize) -> Self {
        assert!(n > 0);
        let mut rows = (n as f64).sqrt() as usize;
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        MeshShape::new(rows.max(1), n / rows.max(1))
    }

    /// Total rank count.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.rows * self.cols
    }
}

/// Topology: mesh arithmetic plus the supernode mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    shape: MeshShape,
}

impl Topology {
    /// Build a topology over the given mesh.
    pub fn new(shape: MeshShape) -> Self {
        Topology { shape }
    }

    /// The mesh shape.
    #[inline]
    pub fn shape(&self) -> MeshShape {
        self.shape
    }

    /// Total number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.shape.num_ranks()
    }

    /// Row of `rank` (row-major numbering: `rank = row * cols + col`).
    #[inline]
    pub fn row_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.num_ranks());
        rank / self.shape.cols
    }

    /// Column of `rank`.
    #[inline]
    pub fn col_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.num_ranks());
        rank % self.shape.cols
    }

    /// Rank at mesh position `(row, col)`.
    #[inline]
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.shape.rows && col < self.shape.cols);
        row * self.shape.cols + col
    }

    /// Supernode of `rank`. Rows map to supernodes (§4.1), so this is
    /// simply the row index.
    #[inline]
    pub fn supernode_of(&self, rank: usize) -> usize {
        self.row_of(rank)
    }

    /// Number of supernodes in use.
    #[inline]
    pub fn num_supernodes(&self) -> usize {
        self.shape.rows
    }

    /// Nodes per supernode (the row width).
    #[inline]
    pub fn supernode_size(&self) -> usize {
        self.shape.cols
    }

    /// The forwarding rank for a message from `src` to `dst` in the
    /// hierarchical L2L alltoallv (§4.4 "Forwarding in global
    /// messaging"): the intersection of the source's column and the
    /// destination's row, so the first hop is column-wise (one
    /// inter-supernode transfer) and the second is row-wise
    /// (intra-supernode).
    #[inline]
    pub fn forwarding_rank(&self, src: usize, dst: usize) -> usize {
        self.rank_at(self.row_of(dst), self.col_of(src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_roundtrip() {
        let t = Topology::new(MeshShape::new(3, 4));
        for rank in 0..12 {
            assert_eq!(t.rank_at(t.row_of(rank), t.col_of(rank)), rank);
        }
        assert_eq!(t.row_of(7), 1);
        assert_eq!(t.col_of(7), 3);
    }

    #[test]
    fn supernode_is_row() {
        let t = Topology::new(MeshShape::new(4, 2));
        assert_eq!(t.supernode_of(0), 0);
        assert_eq!(t.supernode_of(1), 0);
        assert_eq!(t.supernode_of(2), 1);
        assert_eq!(t.num_supernodes(), 4);
        assert_eq!(t.supernode_size(), 2);
    }

    #[test]
    fn near_square_factorizations() {
        assert_eq!(MeshShape::near_square(16), MeshShape::new(4, 4));
        assert_eq!(MeshShape::near_square(12), MeshShape::new(3, 4));
        assert_eq!(MeshShape::near_square(1), MeshShape::new(1, 1));
        assert_eq!(MeshShape::near_square(7), MeshShape::new(1, 7));
        for n in 1..=64 {
            let s = MeshShape::near_square(n);
            assert_eq!(s.num_ranks(), n);
            assert!(s.rows <= s.cols);
        }
    }

    #[test]
    fn forwarding_rank_is_column_then_row() {
        let t = Topology::new(MeshShape::new(3, 3));
        let src = t.rank_at(0, 1);
        let dst = t.rank_at(2, 2);
        let f = t.forwarding_rank(src, dst);
        // Forwarder shares the source's column...
        assert_eq!(t.col_of(f), t.col_of(src));
        // ...and the destination's row (supernode).
        assert_eq!(t.row_of(f), t.row_of(dst));
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        MeshShape::new(0, 3);
    }
}
