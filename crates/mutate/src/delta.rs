//! Per-rank insert overlays and the SPMD routing pass that fills them.
//!
//! A [`DeltaPartition`] shadows the nine component CSRs of a
//! `RankPartition` with small sorted adjacency maps, keyed exactly the
//! way the base CSRs are keyed (hub ids for the `_by_hub` sides, global
//! vertex ids for the `_by_local` / `l2l` sides). Inserts reach their
//! storage ranks through [`route_update_batch`], which replays step 3
//! of `build_1p5d` restricted to the committed batch: same component
//! decisions, same destination ranks, same `alltoallv` exchange — so
//! the overlay is SPMD-consistent and deterministic by construction.
//!
//! **Class promotions.** Component routing consults the *replicated hub
//! directory built at partition time*; an insert that pushes a vertex
//! across `h_threshold` or `e_threshold` would change its class and
//! silently mis-bucket later inserts. The routing pass therefore counts
//! effective degrees (base + prior delta + this batch) at the owners
//! and reports every owned vertex whose effective class outranks its
//! directory class. The caller (the session) reacts by compacting: the
//! delta merges into the base CSRs via a fresh `build_1p5d` over the
//! union edge list, which rebuilds the directory with the promoted
//! vertex in its new class.

use std::collections::{BTreeMap, BTreeSet};

use sunbfs_common::Edge;
use sunbfs_net::{RankCtx, Scope};
use sunbfs_part::{RankPartition, Thresholds, VertexClass};

/// Strict ordering of the degree classes: a vertex only ever *promotes*
/// under inserts (degrees never shrink).
fn class_order(c: VertexClass) -> u8 {
    match c {
        VertexClass::E => 2,
        VertexClass::H => 1,
        VertexClass::L => 0,
    }
}

/// The class a vertex of degree `deg` belongs to under `thresholds`.
fn class_of_degree(deg: u64, thresholds: Thresholds) -> VertexClass {
    if deg >= thresholds.e as u64 {
        VertexClass::E
    } else if deg >= thresholds.h as u64 {
        VertexClass::H
    } else {
        VertexClass::L
    }
}

/// What one rank received from one routed update batch: component
/// entries addressed to this rank, degree increments for its owned
/// vertices, and the owned vertices whose class the batch promoted.
#[derive(Clone, Debug, Default)]
pub struct DeltaUpdate {
    /// The receiving rank.
    pub rank: usize,
    /// EH2EH entries `(src hub id, dst hub id)`, both orientations
    /// routed 2D like the base `eh_by_src`.
    pub eh: Vec<(u64, u64)>,
    /// E↔L entries `(hub id, local vertex)` at the local's owner.
    pub el: Vec<(u64, u64)>,
    /// H→L copies `(hub id, local vertex)` at the intermediate rank.
    pub h2l: Vec<(u64, u64)>,
    /// L→H copies `(hub id, local vertex)` at the local's owner.
    pub lh: Vec<(u64, u64)>,
    /// L↔L entries `(src, dst)`, both orientations at the src owners.
    pub l2l: Vec<(u64, u64)>,
    /// Degree added to each owned vertex by this batch.
    pub degree_increments: Vec<(u64, u32)>,
    /// Owned vertices whose effective degree class now outranks their
    /// directory class — a non-empty list forces compaction.
    pub promoted: Vec<u64>,
}

/// Per-rank insert overlay mirroring the base component CSRs.
///
/// Adjacency lists are kept sorted and deduplicated, so iteration order
/// is deterministic and independent of commit order.
#[derive(Clone, Debug, Default)]
pub struct DeltaPartition {
    /// The rank this overlay shadows.
    pub rank: usize,
    eh_by_src: BTreeMap<u64, Vec<u64>>,
    el_by_hub: BTreeMap<u64, Vec<u64>>,
    el_by_local: BTreeMap<u64, Vec<u64>>,
    h2l_by_hub: BTreeMap<u64, Vec<u64>>,
    h2l_by_local: BTreeMap<u64, Vec<u64>>,
    lh_by_hub: BTreeMap<u64, Vec<u64>>,
    lh_by_local: BTreeMap<u64, Vec<u64>>,
    l2l: BTreeMap<u64, Vec<u64>>,
    degree_increments: BTreeMap<u64, u32>,
    entries: u64,
}

fn push_sorted(map: &mut BTreeMap<u64, Vec<u64>>, key: u64, val: u64) {
    let list = map.entry(key).or_default();
    match list.binary_search(&val) {
        Ok(_) => {}
        Err(pos) => list.insert(pos, val),
    }
}

impl DeltaPartition {
    /// An empty overlay for `rank`.
    pub fn new(rank: usize) -> Self {
        DeltaPartition {
            rank,
            ..DeltaPartition::default()
        }
    }

    /// True when no insert has been merged since the last compaction.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Component entries stored (an undirected edge may account for up
    /// to two, exactly like the base CSR accounting).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Degree this overlay has added to owned vertex `v`.
    pub fn degree_increment(&self, v: u64) -> u32 {
        self.degree_increments.get(&v).copied().unwrap_or(0)
    }

    /// Fold one routed batch into the overlay.
    pub fn merge(&mut self, upd: &DeltaUpdate) {
        debug_assert_eq!(self.rank, upd.rank, "delta merged into the wrong rank");
        self.entries +=
            (upd.eh.len() + upd.el.len() + upd.h2l.len() + upd.lh.len() + upd.l2l.len()) as u64;
        for &(s, d) in &upd.eh {
            push_sorted(&mut self.eh_by_src, s, d);
        }
        for &(h, l) in &upd.el {
            push_sorted(&mut self.el_by_hub, h, l);
            push_sorted(&mut self.el_by_local, l, h);
        }
        for &(h, l) in &upd.h2l {
            push_sorted(&mut self.h2l_by_hub, h, l);
            push_sorted(&mut self.h2l_by_local, l, h);
        }
        for &(h, l) in &upd.lh {
            push_sorted(&mut self.lh_by_hub, h, l);
            push_sorted(&mut self.lh_by_local, l, h);
        }
        for &(u, v) in &upd.l2l {
            push_sorted(&mut self.l2l, u, v);
        }
        for &(v, inc) in &upd.degree_increments {
            *self.degree_increments.entry(v).or_insert(0) += inc;
        }
    }

    /// Drop everything (after the delta was compacted into the base).
    pub fn clear(&mut self) {
        let rank = self.rank;
        *self = DeltaPartition::new(rank);
    }

    /// Delta EH neighbors of hub `h` (dst hub ids), sorted.
    pub fn eh_of(&self, h: u64) -> &[u64] {
        self.eh_by_src.get(&h).map_or(&[], Vec::as_slice)
    }

    /// Delta E↔L neighbors of hub `h` (local vertices), sorted.
    pub fn el_of_hub(&self, h: u64) -> &[u64] {
        self.el_by_hub.get(&h).map_or(&[], Vec::as_slice)
    }

    /// Delta L→H neighbors of hub `h` (local vertices), sorted.
    pub fn lh_of_hub(&self, h: u64) -> &[u64] {
        self.lh_by_hub.get(&h).map_or(&[], Vec::as_slice)
    }

    /// Delta H→L copies of hub `h` (local vertices), sorted.
    pub fn h2l_of_hub(&self, h: u64) -> &[u64] {
        self.h2l_by_hub.get(&h).map_or(&[], Vec::as_slice)
    }

    /// Delta E↔L hubs of owned vertex `v` (hub ids), sorted.
    pub fn el_of_local(&self, v: u64) -> &[u64] {
        self.el_by_local.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Delta L→H hubs of owned vertex `v` (hub ids), sorted.
    pub fn lh_of_local(&self, v: u64) -> &[u64] {
        self.lh_by_local.get(&v).map_or(&[], Vec::as_slice)
    }

    /// Delta L↔L neighbors of owned vertex `v`, sorted.
    pub fn l2l_of(&self, v: u64) -> &[u64] {
        self.l2l.get(&v).map_or(&[], Vec::as_slice)
    }
}

/// Route one committed insert batch to its storage ranks, SPMD.
///
/// Every rank calls this with the same `batch` (the service thread
/// hands the whole committed batch to every rank) and routes its cyclic
/// slice (`i % nranks == rank`), mirroring how `build_1p5d` chunks the
/// global edge list. Two exchange rounds follow the builder exactly:
/// endpoint increments to the owners, then component entries to their
/// storage ranks. The returned [`DeltaUpdate`] is merged into the
/// rank's [`DeltaPartition`] by the single service thread *after* every
/// rank returned, so a faulted exchange commits nothing.
pub fn route_update_batch(
    ctx: &mut RankCtx,
    part: &RankPartition,
    prior: &DeltaPartition,
    thresholds: Thresholds,
    batch: &[Edge],
) -> DeltaUpdate {
    let topo = ctx.topology();
    let p = ctx.nranks();
    let rank = ctx.rank();
    let dist = &part.dist;
    let dir = &part.directory;
    let (rows, cols) = (topo.shape().rows, topo.shape().cols);

    let chunk: Vec<Edge> = batch
        .iter()
        .enumerate()
        .filter(|(i, _)| i % p == rank)
        .map(|(_, e)| *e)
        .collect();

    // ---- (1) degree increments at the owners ---------------------------
    // Self loops are skipped throughout: the compaction target is a
    // fresh build over the *deduplicated, loop-free* union edge list,
    // so loop-free effective degrees match what that build will see.
    let mut endpoint_msgs: Vec<Vec<u64>> = vec![Vec::new(); p];
    for e in chunk.iter().filter(|e| !e.is_self_loop()) {
        endpoint_msgs[dist.owner(e.u)].push(e.u);
        endpoint_msgs[dist.owner(e.v)].push(e.v);
    }
    let received = ctx.alltoallv(Scope::World, "update.alltoallv", endpoint_msgs);
    let mut inc: BTreeMap<u64, u32> = BTreeMap::new();
    for msgs in received {
        for v in msgs {
            *inc.entry(v).or_insert(0) += 1;
        }
    }

    // ---- (2) promotion detection --------------------------------------
    let my_range = dist.range_of(rank);
    let mut promoted = Vec::new();
    for (&v, &add) in &inc {
        let base_deg = part.owned_degrees[(v - my_range.start) as usize] as u64;
        let eff = base_deg + prior.degree_increment(v) as u64 + add as u64;
        if class_order(class_of_degree(eff, thresholds)) > class_order(dir.class_of(v)) {
            promoted.push(v);
        }
    }

    // ---- (3) component routing, exactly as build_1p5d step 3 -----------
    let mut eh_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut el_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut h2l_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut lh_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut l2l_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];

    let route_hub_pair = |eh_msgs: &mut Vec<Vec<(u64, u64)>>, hs: u32, hd: u32| {
        let dest = topo.rank_at(dir.dest_row(hd, rows), dir.src_col(hs, cols));
        eh_msgs[dest].push((hs as u64, hd as u64));
    };

    for e in chunk.iter().filter(|e| !e.is_self_loop()) {
        use VertexClass::*;
        match (dir.class_of(e.u), dir.class_of(e.v)) {
            (E | H, E | H) => {
                let hu = dir.hub_id(e.u).expect("hub class implies a hub id");
                let hv = dir.hub_id(e.v).expect("hub class implies a hub id");
                route_hub_pair(&mut eh_msgs, hu, hv);
                route_hub_pair(&mut eh_msgs, hv, hu);
            }
            (E, L) | (L, E) => {
                let (hub_v, l) = if dir.class_of(e.u) == E {
                    (e.u, e.v)
                } else {
                    (e.v, e.u)
                };
                let hub = dir.hub_id(hub_v).expect("hub class implies a hub id") as u64;
                el_msgs[dist.owner(l)].push((hub, l));
            }
            (H, L) | (L, H) => {
                let (hub_v, l) = if dir.class_of(e.u) == H {
                    (e.u, e.v)
                } else {
                    (e.v, e.u)
                };
                let hub = dir.hub_id(hub_v).expect("hub class implies a hub id") as u64;
                let inter =
                    topo.rank_at(topo.row_of(dist.owner(l)), topo.col_of(dist.owner(hub_v)));
                h2l_msgs[inter].push((hub, l));
                lh_msgs[dist.owner(l)].push((hub, l));
            }
            (L, L) => {
                l2l_msgs[dist.owner(e.u)].push((e.u, e.v));
                l2l_msgs[dist.owner(e.v)].push((e.v, e.u));
            }
        }
    }

    let flat =
        |recv: Vec<Vec<(u64, u64)>>| -> Vec<(u64, u64)> { recv.into_iter().flatten().collect() };
    let eh = flat(ctx.alltoallv(Scope::World, "update.alltoallv", eh_msgs));
    let el = flat(ctx.alltoallv(Scope::World, "update.alltoallv", el_msgs));
    let h2l = flat(ctx.alltoallv(Scope::World, "update.alltoallv", h2l_msgs));
    let lh = flat(ctx.alltoallv(Scope::World, "update.alltoallv", lh_msgs));
    let l2l = flat(ctx.alltoallv(Scope::World, "update.alltoallv", l2l_msgs));

    DeltaUpdate {
        rank,
        eh,
        el,
        h2l,
        lh,
        l2l,
        degree_increments: inc.into_iter().collect(),
        promoted,
    }
}

/// Reassemble the canonical undirected edge set stored across all base
/// partitions: `(min, max)` pairs from every rank's EH, E↔L, L→H, and
/// L↔L components (H→L copies are duplicates of L→H and are skipped).
///
/// This is the compaction input: unioned with the committed delta
/// edges, a fresh `build_1p5d` over it must be byte-identical to the
/// compacted partition.
pub fn canonical_edge_set(parts: &[RankPartition]) -> BTreeSet<(u64, u64)> {
    let mut out = BTreeSet::new();
    let dir = &parts[0].directory;
    let canon = |a: u64, b: u64| if a <= b { (a, b) } else { (b, a) };
    for p in parts {
        for (hs, hd) in p.eh_by_src.iter_edges() {
            out.insert(canon(dir.vertex_of(hs as u32), dir.vertex_of(hd as u32)));
        }
        for (h, l) in p.el_by_hub.iter_edges() {
            out.insert(canon(dir.vertex_of(h as u32), l));
        }
        for (h, l) in p.lh_by_hub.iter_edges() {
            out.insert(canon(dir.vertex_of(h as u32), l));
        }
        for (u, v) in p.l2l.iter_edges() {
            out.insert(canon(u, v));
        }
    }
    out
}
