//! **Extension** — why CG-aware segmenting instead of LDCache (§3.3).
//!
//! SW26010-Pro offers an optional Local Data Cache sharing physical
//! space with LDM. The paper dismisses it for the pull kernel: "the
//! cache size is also not large enough to hold the hot data given
//! millions of vertices each node is responsible for". This bench makes
//! that argument quantitative on the chip model: random-probe cost per
//! access strategy as the working set (the column activeness bit
//! vector) grows.

use sunbfs_common::MachineConfig;
use sunbfs_sunway::kernels;

fn main() {
    let m = MachineConfig::new_sunway();
    let probes = 10_000_000u64;
    let cpes = m.cpes_per_node();
    println!("=== Extension: random-probe strategies vs working-set size ===");
    println!("    ({probes} probes spread over the chip; times in ms)\n");
    println!("  working set   GLD       LDCache   RMA-segmented   winner");
    for ws_kb in [64u64, 256, 1024, 4096, 16384, 65536] {
        let ws = ws_kb * 1024;
        let gld = kernels::gld_random(&m, probes, cpes).as_secs() * 1e3;
        let ldc = kernels::ldcache_random(&m, probes, ws, cpes).as_secs() * 1e3;
        // Segmenting spreads the set over the 64 LDMs of each CG; it
        // only applies while a CG's slice fits its LDM budget
        // (64 CPEs x 256 KB = 16 MB per CG, minus working space).
        let fits = ws <= 6 * 64 * (m.ldm_bytes as u64) / 2;
        let rma =
            kernels::rma_random(&m, probes / m.cgs_per_node as u64, m.cpes_per_cg).as_secs() * 1e3;
        let rma_str = if fits {
            format!("{rma:9.2}")
        } else {
            "    (n/a)".into()
        };
        let winner = if fits && rma <= ldc && rma <= gld {
            "RMA-segmented"
        } else if ldc <= gld {
            "LDCache"
        } else {
            "GLD"
        };
        println!("  {ws_kb:>7} KiB  {gld:>8.2}  {ldc:>8.2}  {rma_str}       {winner}");
    }
    println!();
    println!("  -> LDCache wins only while the working set fits one CPE's 256 KB;");
    println!("     the paper's multi-MB activeness vectors thrash it, while the");
    println!("     RMA-segmented layout keeps every probe on-chip (the 9x of Fig. 15).");
}
