//! Distributed construction of the 3-level degree-aware 1.5D partition.
//!
//! Executed SPMD on every rank of the cluster ([`build_1p5d`]). From a
//! locally generated chunk of the global edge list, the ranks:
//!
//! 1. count exact vertex degrees at the owners (one `alltoallv` of
//!    endpoints),
//! 2. gather all vertices with `deg ≥ h` and build the replicated
//!    [`HubDirectory`] (identical on every rank by construction),
//! 3. route every edge to the rank(s) that store it, per §4.1:
//!    * **EH2EH** (both endpoints hubs): both orientations,
//!      2D-partitioned — orientation `(s → d)` lives at mesh position
//!      `(dest_row(d), src_col(s))`,
//!    * **E↔L**: at the owner of the L endpoint (E is delegated
//!      globally, so its adjacency is attached to L, "just as heavy
//!      vertices in degree-aware 1D partitioning"); one store serves
//!      both the E2L and L2E sub-iterations,
//!    * **H→L**: at the intersection of L's owner's *row* and H's
//!      owner's *column*, restricting push messaging to rows,
//!    * **L→H**: solely at the owner of L ("as a reverse of H2L"),
//!    * **L2L**: both orientations, each at its source's owner (vanilla
//!      1D),
//! 4. build per-component CSR indexes (by source for push, by
//!    destination for pull) with multigraph deduplication.
//!
//! Self loops never affect a BFS and are dropped here.

use sunbfs_common::{Edge, JsonValue, ToJson, VertexId};
use sunbfs_net::{RankCtx, Scope, Topology};

use crate::csr::Csr;
use crate::directory::{HubDirectory, Thresholds, VertexClass};
use crate::distribution::VertexDistribution;

/// Local (per-rank) edge counts of the six components — the quantity
/// whose distribution Figure 13 plots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentStats {
    /// EH2EH directed edges stored on this rank.
    pub eh2eh: u64,
    /// E→L edges stored on this rank.
    pub e2l: u64,
    /// L→E edges stored on this rank.
    pub l2e: u64,
    /// H→L edges stored on this rank.
    pub h2l: u64,
    /// L→H edges stored on this rank.
    pub l2h: u64,
    /// L→L directed edges stored on this rank.
    pub l2l: u64,
}

impl ComponentStats {
    /// Sum of all component sizes on this rank.
    pub fn total(&self) -> u64 {
        self.eh2eh + self.e2l + self.l2e + self.h2l + self.l2h + self.l2l
    }
}

impl ToJson for ComponentStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("eh2eh", self.eh2eh)
            .field("e2l", self.e2l)
            .field("l2e", self.l2e)
            .field("h2l", self.h2l)
            .field("l2h", self.l2h)
            .field("l2l", self.l2l)
            .field("total", self.total())
            .build()
    }
}

/// One rank's share of the 1.5D-partitioned graph.
#[derive(Clone, Debug)]
pub struct RankPartition {
    /// This rank's id.
    pub rank: usize,
    /// Vertex block distribution.
    pub dist: VertexDistribution,
    /// Replicated hub directory.
    pub directory: HubDirectory,
    /// Exact degrees of the vertices this rank owns.
    pub owned_degrees: Vec<u32>,
    /// EH2EH block, push orientation: src hubs in this column's source
    /// range → dst hub ids.
    pub eh_by_src: Csr,
    /// EH2EH block, pull orientation: dst hubs in this row's
    /// destination range → src hub ids.
    pub eh_by_dst: Csr,
    /// E↔L edges at L's owner, keyed by hub id (push E→L / pull L2E).
    pub el_by_hub: Csr,
    /// E↔L edges at L's owner, keyed by owned vertex (pull E2L / push L2E).
    pub el_by_local: Csr,
    /// H→L edges at the row/column intersection, keyed by hub id (push).
    pub h2l_by_hub: Csr,
    /// H→L edges at the intersection, keyed by the L endpoint over this
    /// *row's* owned interval (pull).
    pub h2l_by_local: Csr,
    /// L↔H edges at L's owner, keyed by hub id (pull L2H).
    pub lh_by_hub: Csr,
    /// L↔H edges at L's owner, keyed by owned vertex (push L2H).
    pub lh_by_local: Csr,
    /// L→L edges keyed by owned source vertex.
    pub l2l: Csr,
    /// Component sizes on this rank.
    pub stats: ComponentStats,
}

impl RankPartition {
    /// Global vertex interval owned by this rank.
    pub fn owned_range(&self) -> std::ops::Range<u64> {
        self.dist.range_of(self.rank)
    }

    /// Global vertex interval owned by this rank's whole mesh row.
    pub fn row_range(&self, topo: &Topology) -> std::ops::Range<u64> {
        row_vertex_range(&self.dist, topo, topo.row_of(self.rank))
    }
}

/// Global vertex interval owned by mesh row `row` (ranks of a row are
/// consecutive, so their blocks concatenate into one interval).
pub fn row_vertex_range(
    dist: &VertexDistribution,
    topo: &Topology,
    row: usize,
) -> std::ops::Range<u64> {
    let first = topo.rank_at(row, 0);
    let last = topo.rank_at(row, topo.shape().cols - 1);
    dist.range_of(first).start..dist.range_of(last).end
}

/// Build this rank's partition from its chunk of the global edge list.
///
/// SPMD: every rank calls this with the same `n` and `thresholds` and
/// its own `edges` chunk; the union of chunks is the global multigraph.
pub fn build_1p5d(
    ctx: &mut RankCtx,
    n: u64,
    edges: &[Edge],
    thresholds: Thresholds,
) -> RankPartition {
    let topo = ctx.topology();
    let p = ctx.nranks();
    let rank = ctx.rank();
    let dist = VertexDistribution::new(n, p);

    // ---- (1) exact degrees at owners ----------------------------------
    let mut endpoint_msgs: Vec<Vec<VertexId>> = vec![Vec::new(); p];
    for e in edges {
        endpoint_msgs[dist.owner(e.u)].push(e.u);
        endpoint_msgs[dist.owner(e.v)].push(e.v);
    }
    let received = ctx.alltoallv(Scope::World, "prep.alltoallv", endpoint_msgs);
    let my_range = dist.range_of(rank);
    let mut owned_degrees = vec![0u32; (my_range.end - my_range.start) as usize];
    for batch in received {
        for v in batch {
            owned_degrees[(v - my_range.start) as usize] += 1;
        }
    }

    // ---- (2) replicated hub directory ---------------------------------
    let local_heavy: Vec<(VertexId, u32)> = owned_degrees
        .iter()
        .enumerate()
        .filter(|(_, &d)| d >= thresholds.h)
        .map(|(i, &d)| (my_range.start + i as u64, d))
        .collect();
    let gathered = ctx.allgatherv(Scope::World, "prep.allgather", local_heavy);
    let directory = HubDirectory::build(gathered.into_iter().flatten().collect(), thresholds);
    let (rows, cols) = (topo.shape().rows, topo.shape().cols);

    // ---- (3) route edges to their storage ranks ------------------------
    let mut eh_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut el_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut h2l_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut lh_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
    let mut l2l_msgs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];

    let route_hub_pair = |eh_msgs: &mut Vec<Vec<(u64, u64)>>, hs: u32, hd: u32| {
        let dest = topo.rank_at(directory.dest_row(hd, rows), directory.src_col(hs, cols));
        eh_msgs[dest].push((hs as u64, hd as u64));
    };

    for e in edges {
        if e.is_self_loop() {
            continue;
        }
        let cu = directory.class_of(e.u);
        let cv = directory.class_of(e.v);
        use VertexClass::*;
        match (cu, cv) {
            // Both hubs: both orientations, 2D-partitioned.
            (E | H, E | H) => {
                let hu = directory.hub_id(e.u).unwrap();
                let hv = directory.hub_id(e.v).unwrap();
                route_hub_pair(&mut eh_msgs, hu, hv);
                route_hub_pair(&mut eh_msgs, hv, hu);
            }
            // E ↔ L: stored once at L's owner.
            (E, L) | (L, E) => {
                let (hub_v, l) = if cu == E { (e.u, e.v) } else { (e.v, e.u) };
                let hub = directory.hub_id(hub_v).unwrap() as u64;
                el_msgs[dist.owner(l)].push((hub, l));
            }
            // H ↔ L: H→L copy at (row(owner(l)), col(owner(h))),
            // L→H copy at owner(l).
            (H, L) | (L, H) => {
                let (hub_v, l) = if cu == H { (e.u, e.v) } else { (e.v, e.u) };
                let hub = directory.hub_id(hub_v).unwrap() as u64;
                let inter =
                    topo.rank_at(topo.row_of(dist.owner(l)), topo.col_of(dist.owner(hub_v)));
                h2l_msgs[inter].push((hub, l));
                lh_msgs[dist.owner(l)].push((hub, l));
            }
            // L ↔ L: both orientations at their source owners.
            (L, L) => {
                l2l_msgs[dist.owner(e.u)].push((e.u, e.v));
                l2l_msgs[dist.owner(e.v)].push((e.v, e.u));
            }
        }
    }

    let eh_recv: Vec<(u64, u64)> = ctx
        .alltoallv(Scope::World, "prep.alltoallv", eh_msgs)
        .into_iter()
        .flatten()
        .collect();
    let el_recv: Vec<(u64, u64)> = ctx
        .alltoallv(Scope::World, "prep.alltoallv", el_msgs)
        .into_iter()
        .flatten()
        .collect();
    let h2l_recv: Vec<(u64, u64)> = ctx
        .alltoallv(Scope::World, "prep.alltoallv", h2l_msgs)
        .into_iter()
        .flatten()
        .collect();
    let lh_recv: Vec<(u64, u64)> = ctx
        .alltoallv(Scope::World, "prep.alltoallv", lh_msgs)
        .into_iter()
        .flatten()
        .collect();
    let l2l_recv: Vec<(u64, u64)> = ctx
        .alltoallv(Scope::World, "prep.alltoallv", l2l_msgs)
        .into_iter()
        .flatten()
        .collect();

    // ---- (4) component CSRs --------------------------------------------
    let nh = directory.num_hubs() as u64;
    let my_row = topo.row_of(rank);
    let row_range = row_vertex_range(&dist, &topo, my_row);
    let my_count = my_range.end - my_range.start;

    // EH csrs are keyed over the full (small) hub-id space; only hubs in
    // this rank's cyclic column/row slice have entries.
    let eh_by_src = Csr::from_pairs(0, nh, eh_recv.clone(), true);
    let eh_by_dst = Csr::from_pairs(
        0,
        nh,
        eh_recv.into_iter().map(|(s, d)| (d, s)).collect(),
        true,
    );
    let el_by_hub = Csr::from_pairs(0, nh, el_recv.clone(), true);
    let el_by_local = Csr::from_pairs(
        my_range.start,
        my_count,
        el_recv.into_iter().map(|(h, l)| (l, h)).collect(),
        true,
    );
    let h2l_by_hub = Csr::from_pairs(0, nh, h2l_recv.clone(), true);
    let h2l_by_local = Csr::from_pairs(
        row_range.start,
        row_range.end - row_range.start,
        h2l_recv.into_iter().map(|(h, l)| (l, h)).collect(),
        true,
    );
    let lh_by_hub = Csr::from_pairs(0, nh, lh_recv.clone(), true);
    let lh_by_local = Csr::from_pairs(
        my_range.start,
        my_count,
        lh_recv.into_iter().map(|(h, l)| (l, h)).collect(),
        true,
    );
    let l2l = Csr::from_pairs(my_range.start, my_count, l2l_recv, true);

    let stats = ComponentStats {
        eh2eh: eh_by_src.num_edges(),
        e2l: el_by_hub.num_edges(),
        l2e: el_by_local.num_edges(),
        h2l: h2l_by_hub.num_edges(),
        l2h: lh_by_local.num_edges(),
        l2l: l2l.num_edges(),
    };

    RankPartition {
        rank,
        dist,
        directory,
        owned_degrees,
        eh_by_src,
        eh_by_dst,
        el_by_hub,
        el_by_local,
        h2l_by_hub,
        h2l_by_local,
        lh_by_hub,
        lh_by_local,
        l2l,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use sunbfs_common::MachineConfig;
    use sunbfs_net::{Cluster, MeshShape};

    /// A small deterministic multigraph with skewed degrees: vertex 0 is
    /// a super-hub, 1..4 are medium, the rest sparse.
    fn skewed_edges(n: u64, m: usize, seed: u64) -> Vec<Edge> {
        let mut rng = sunbfs_common::SplitMix64::new(seed);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = match rng.next_below(10) {
                0..=3 => 0,
                4..=6 => 1 + rng.next_below(4),
                _ => rng.next_below(n),
            };
            let v = rng.next_below(n);
            edges.push(Edge::new(u, v));
        }
        edges
    }

    fn build_on_cluster(
        rows: usize,
        cols: usize,
        n: u64,
        edges: &[Edge],
        th: Thresholds,
    ) -> Vec<RankPartition> {
        let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
        let p = rows * cols;
        cluster.run(|ctx| {
            let chunk: Vec<Edge> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % p == ctx.rank())
                .map(|(_, e)| *e)
                .collect();
            build_1p5d(ctx, n, &chunk, th)
        })
    }

    fn canonical_input(edges: &[Edge]) -> BTreeSet<(u64, u64)> {
        edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .map(|e| {
                let c = e.canonical();
                (c.u, c.v)
            })
            .collect()
    }

    /// Reassemble the undirected edge set from all components of all
    /// ranks; must equal the deduplicated input (minus self loops).
    fn reassemble(parts: &[RankPartition]) -> BTreeSet<(u64, u64)> {
        let mut out = BTreeSet::new();
        let dir = &parts[0].directory;
        let canon = |a: u64, b: u64| if a <= b { (a, b) } else { (b, a) };
        for p in parts {
            for (hs, hd) in p.eh_by_src.iter_edges() {
                out.insert(canon(dir.vertex_of(hs as u32), dir.vertex_of(hd as u32)));
            }
            for (h, l) in p.el_by_hub.iter_edges() {
                out.insert(canon(dir.vertex_of(h as u32), l));
            }
            for (h, l) in p.lh_by_hub.iter_edges() {
                out.insert(canon(dir.vertex_of(h as u32), l));
            }
            for (u, v) in p.l2l.iter_edges() {
                out.insert(canon(u, v));
            }
        }
        out
    }

    #[test]
    fn components_cover_the_input_exactly() {
        let n = 256;
        let edges = skewed_edges(n, 2000, 1);
        let parts = build_on_cluster(2, 2, n, &edges, Thresholds::new(100, 20));
        assert_eq!(reassemble(&parts), canonical_input(&edges));
    }

    #[test]
    fn degrees_are_exact() {
        let n = 128;
        let edges = skewed_edges(n, 1000, 2);
        let parts = build_on_cluster(2, 2, n, &edges, Thresholds::new(50, 10));
        // Independent sequential count.
        let mut deg = vec![0u32; n as usize];
        for e in &edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        for p in &parts {
            let range = p.owned_range();
            for v in range.clone() {
                assert_eq!(
                    p.owned_degrees[(v - range.start) as usize],
                    deg[v as usize],
                    "degree mismatch at v={v}"
                );
            }
        }
    }

    #[test]
    fn directories_agree_across_ranks() {
        let n = 128;
        let edges = skewed_edges(n, 1500, 3);
        let parts = build_on_cluster(2, 3, n, &edges, Thresholds::new(80, 15));
        let d0 = &parts[0].directory;
        for p in &parts[1..] {
            assert_eq!(p.directory.num_e(), d0.num_e());
            assert_eq!(p.directory.num_hubs(), d0.num_hubs());
            for h in 0..d0.num_hubs() {
                assert_eq!(p.directory.vertex_of(h), d0.vertex_of(h));
            }
        }
    }

    #[test]
    fn h2l_lives_on_the_intersection_rank() {
        let n = 64;
        let edges = skewed_edges(n, 800, 4);
        let rows = 2;
        let cols = 2;
        let parts = build_on_cluster(rows, cols, n, &edges, Thresholds::new(1000, 20));
        let topo = Topology::new(MeshShape::new(rows, cols));
        let dist = parts[0].dist;
        let dir = &parts[0].directory;
        for p in &parts {
            let my_row = topo.row_of(p.rank);
            let my_col = topo.col_of(p.rank);
            for (h, l) in p.h2l_by_hub.iter_edges() {
                let hv = dir.vertex_of(h as u32);
                assert_eq!(
                    topo.row_of(dist.owner(l)),
                    my_row,
                    "H2L must sit on L's row"
                );
                assert_eq!(
                    topo.col_of(dist.owner(hv)),
                    my_col,
                    "H2L must sit on H's column"
                );
            }
        }
    }

    #[test]
    fn l_components_live_at_owners() {
        let n = 64;
        let edges = skewed_edges(n, 800, 5);
        let parts = build_on_cluster(2, 2, n, &edges, Thresholds::new(100, 30));
        for p in &parts {
            let range = p.owned_range();
            for (l, _) in p.el_by_local.iter_edges() {
                assert!(range.contains(&l));
            }
            for (l, _) in p.lh_by_local.iter_edges() {
                assert!(range.contains(&l));
            }
            for (u, _) in p.l2l.iter_edges() {
                assert!(range.contains(&u));
            }
        }
    }

    #[test]
    fn no_hubs_degenerates_to_pure_1d() {
        let n = 64;
        let edges = skewed_edges(n, 500, 6);
        let parts = build_on_cluster(1, 4, n, &edges, Thresholds::none());
        for p in &parts {
            assert_eq!(p.directory.num_hubs(), 0);
            assert_eq!(p.stats.eh2eh + p.stats.e2l + p.stats.h2l + p.stats.l2h, 0);
        }
        assert_eq!(reassemble(&parts), canonical_input(&edges));
    }

    #[test]
    fn all_hubs_degenerates_to_2d() {
        let n = 64;
        let edges = skewed_edges(n, 500, 7);
        let parts = build_on_cluster(2, 2, n, &edges, Thresholds::all_hubs(1 << 20));
        for p in &parts {
            assert_eq!(
                p.stats.e2l + p.stats.l2e + p.stats.h2l + p.stats.l2h + p.stats.l2l,
                0
            );
        }
        assert_eq!(reassemble(&parts), canonical_input(&edges));
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let edges = vec![
            Edge::new(3, 3),
            Edge::new(1, 2),
            Edge::new(2, 1),
            Edge::new(1, 2),
        ];
        let parts = build_on_cluster(1, 2, 8, &edges, Thresholds::none());
        let total: u64 = parts.iter().map(|p| p.stats.l2l).sum();
        // One undirected edge {1,2} → two stored orientations.
        assert_eq!(total, 2);
    }
}
