//! General-purpose graph processing over the 1.5D partition.
//!
//! §8 of the paper: *"a general-purpose graph processing framework is
//! possible to be built with the proposed techniques: 3-level
//! degree-aware 1.5D partitioning is a graph partitioning method
//! neutral to the graph algorithm ... One of our future work will be
//! designing and implementing the next-generation ShenTu on New Sunway
//! upon the proposed techniques."*
//!
//! This crate is that direction, built: a Pregel-style vertex-program
//! API ([`VertexProgram`]) executed over the same six-component
//! partition, the same delegate discipline, and the same messaging
//! substrate as the BFS engine:
//!
//! * **hub values are replicated**; messages addressed to a hub are
//!   combined locally (the user combiner must be associative and
//!   commutative), then merged across ranks at the round boundary with
//!   the row-then-column reduction of §4.1 — every replica applies the
//!   identical combined message, so replicas stay consistent without
//!   any per-vertex locking;
//! * **L values live at their owner**; messages are bucketed by
//!   destination rank with OCS-RMA (§4.4) and exchanged via `alltoallv`
//!   (intra-row for H→L edges, hierarchically forwarded for L→L);
//! * per-round cost is charged through the same chip and network models
//!   as BFS, so algorithm studies inherit the machine.
//!
//! Four classic programs ship in [`programs`]: BFS (as a sanity
//! anchor), single-source shortest paths (Bellman-Ford with integer
//! weights — Graph 500's second kernel), connected components (label
//! propagation), and PageRank (§8 names SSSP and PageRank explicitly as
//! push/pull candidates).

pub mod engine;
pub mod programs;
pub mod weights;

pub use engine::{run_program, ProgramOutput, ProgramStats};
pub use programs::{Bfs, ConnectedComponents, PageRank, ShortestPaths};
pub use weights::edge_weight;

use sunbfs_common::VertexId;

/// A Pregel-style vertex program executed over the 1.5D partition.
///
/// Semantics per superstep (round):
/// 1. every *active* vertex `u` calls [`VertexProgram::scatter`] once
///    per incident edge `(u, v)`, optionally emitting a message to `v`;
/// 2. messages addressed to the same vertex are folded with
///    [`VertexProgram::combine`] (must be associative + commutative:
///    hub replicas depend on it);
/// 3. each vertex with a combined message calls
///    [`VertexProgram::apply`]; returning `true` re-activates the
///    vertex for the next round.
///
/// Vertices start with [`VertexProgram::init`]; the initially active
/// set is chosen by [`VertexProgram::initially_active`].
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type Value: Clone + Send + Sync + 'static;
    /// Message payload (kept `Copy` so OCS-RMA can batch it).
    type Message: Copy + Send + Sync + 'static;

    /// Initial value of vertex `v` with global degree `degree`.
    fn init(&self, v: VertexId, degree: u32) -> Self::Value;

    /// Whether `v` is active in round 1.
    fn initially_active(&self, v: VertexId) -> bool;

    /// Produce the message `src` sends along edge `(src, dst)`, if any.
    fn scatter(
        &self,
        src_value: &Self::Value,
        src: VertexId,
        dst: VertexId,
    ) -> Option<Self::Message>;

    /// Fold `b` into `a` (associative + commutative).
    fn combine(&self, a: &mut Self::Message, b: Self::Message);

    /// Apply the round's combined message; `true` keeps `v` active.
    fn apply(&self, v: VertexId, value: &mut Self::Value, msg: Self::Message) -> bool;

    /// Optional hard round limit (e.g. fixed-iteration PageRank).
    /// `None` runs until quiescence.
    fn max_rounds(&self) -> Option<u32> {
        None
    }

    /// Whether every vertex should be re-activated each round regardless
    /// of `apply` (dense iterative algorithms like PageRank).
    fn always_active(&self) -> bool {
        false
    }
}
