//! Worker-count determinism sweep: the intra-rank worker pool
//! (`sunbfs_common::pool`) must never change a single output byte.
//!
//! The contract (see `docs/PERF.md`): `SUNBFS_WORKERS` only decides how
//! many OS threads staff each kernel scan — per-chunk results merge in
//! chunk order, so parents and depths are byte-identical to the serial
//! path. This test sweeps worker counts {1, 2, 4, 7} at SCALE 12 across
//! two mesh shapes and asserts exactly that, for both the single-source
//! engine and the 64-root bit-parallel batch engine, with the serial
//! reference Graph500-validated.

use sunbfs::common::MachineConfig;
use sunbfs::core::batch::run_bfs_batch;
use sunbfs::core::{run_bfs, validate_parents, EngineConfig};
use sunbfs::net::{Cluster, MeshShape};
use sunbfs::part::{build_1p5d, Thresholds, VertexDistribution};
use sunbfs::rmat::{degrees, generate_chunk, generate_edges, RmatParams};

const SCALE: u32 = 12;
const SEED: u64 = 42;
const BATCH_WIDTH: usize = 64;

/// Global outputs of one full traversal pass at a fixed worker count.
#[derive(PartialEq, Eq)]
struct PassOutput {
    single_parents: Vec<u64>,
    batch_parents: Vec<Vec<u64>>,
    batch_depths: Vec<Vec<u32>>,
}

/// Run single-source + batch BFS over `mesh` and assemble the global
/// parent/depth arrays from the rank-owned block slices.
fn run_pass(mesh: MeshShape, root: u64, roots: &[u64]) -> PassOutput {
    let params = RmatParams::graph500(SCALE, SEED);
    let n = params.num_vertices();
    let ranks = mesh.rows * mesh.cols;
    let thresholds = Thresholds::new(128, 32);
    let cfg = EngineConfig::default();
    let cluster = Cluster::new(mesh, MachineConfig::new_sunway());
    let outs = cluster.run(|ctx| {
        let chunk = generate_chunk(&params, ctx.rank() as u64, ranks as u64);
        let part = build_1p5d(ctx, n, &chunk, thresholds);
        let single = run_bfs(ctx, &part, root, &cfg).expect("single-source BFS terminates");
        let batch = run_bfs_batch(ctx, &part, roots, &cfg).expect("batch BFS terminates");
        (single, batch)
    });

    let mut single_parents = Vec::with_capacity(n as usize);
    for (single, _) in &outs {
        single_parents.extend_from_slice(&single.parents);
    }

    let nb = roots.len();
    let mut batch_parents = vec![vec![0u64; n as usize]; nb];
    let mut batch_depths = vec![vec![0u32; n as usize]; nb];
    let dist = VertexDistribution::new(n, ranks);
    for (rank, (_, batch)) in outs.iter().enumerate() {
        let range = dist.range_of(rank);
        for li in 0..(range.end - range.start) as usize {
            let v = range.start as usize + li;
            for b in 0..nb {
                batch_parents[b][v] = batch.parent_of(li, b);
                batch_depths[b][v] = batch.depth_of(li, b);
            }
        }
    }
    PassOutput {
        single_parents,
        batch_parents,
        batch_depths,
    }
}

/// First `k` distinct vertices with nonzero degree — all valid BFS
/// roots of the generated graph.
fn connected_roots(params: &RmatParams, k: usize) -> Vec<u64> {
    let degs = degrees(params.num_vertices(), &generate_edges(params));
    (0..params.num_vertices())
        .filter(|&v| degs[v as usize] > 0)
        .take(k)
        .collect()
}

/// One `#[test]` for the whole sweep: `pool::set_workers` is
/// process-global, so the worker counts must change sequentially.
#[test]
fn outputs_are_byte_identical_across_worker_counts() {
    let params = RmatParams::graph500(SCALE, SEED);
    let edges = generate_edges(&params);
    let n = params.num_vertices();
    let roots = connected_roots(&params, BATCH_WIDTH);
    assert_eq!(roots.len(), BATCH_WIDTH, "graph too small for the batch");
    let root = roots[0];

    for mesh in [MeshShape::near_square(4), MeshShape::new(2, 3)] {
        // Serial reference (workers = 1), Graph500-validated.
        sunbfs::common::pool::set_workers(1);
        let serial = run_pass(mesh, root, &roots);
        validate_parents(n, &edges, root, &serial.single_parents)
            .expect("serial single-source parents validate");
        for (b, &r) in roots.iter().enumerate() {
            validate_parents(n, &edges, r, &serial.batch_parents[b])
                .expect("serial batch parents validate");
        }

        for workers in [2usize, 4, 7] {
            sunbfs::common::pool::set_workers(workers);
            let parallel = run_pass(mesh, root, &roots);
            assert!(
                parallel.single_parents == serial.single_parents,
                "single-source parents differ at {workers} workers on {}x{}",
                mesh.rows,
                mesh.cols
            );
            assert!(
                parallel.batch_parents == serial.batch_parents,
                "batch parents differ at {workers} workers on {}x{}",
                mesh.rows,
                mesh.cols
            );
            assert!(
                parallel.batch_depths == serial.batch_depths,
                "batch depths differ at {workers} workers on {}x{}",
                mesh.rows,
                mesh.cols
            );
        }
    }
    // Drop the override so any later code in this process sees the
    // environment default again.
    sunbfs::common::pool::set_workers(0);
}
