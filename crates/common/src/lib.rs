//! Shared primitives for the `sunbfs` workspace.
//!
//! This crate holds the small, dependency-free building blocks used by
//! every other crate in the reproduction of *"Scaling Graph Traversal to
//! 281 Trillion Edges with 40 Million Cores"* (PPoPP 2022):
//!
//! * [`types`] — vertex/edge identifiers and the global graph header,
//! * [`bitmap`] — dense bit vectors (the frontier/visited representation),
//! * [`hist`] — logarithmic histograms for degree-distribution studies,
//! * [`rng`] — a deterministic SplitMix64/xoshiro-style generator used in
//!   hot paths where pulling in `rand` machinery would dominate,
//! * [`timing`] — simulated-time accounting shared by the chip and
//!   network cost models,
//! * [`pool`] — the bounded intra-rank worker pool (the CPE analogue)
//!   that the hot kernels route through, sized by `SUNBFS_WORKERS`,
//! * [`json`] — hand-rolled JSON emission for the observability layer
//!   (the build environment has no crates.io access, so no serde).

#![warn(missing_docs)]

pub mod bitmap;
pub mod hist;
pub mod json;
pub mod machine;
pub mod pool;
pub mod rng;
pub mod timing;
pub mod types;

pub use bitmap::Bitmap;
pub use hist::LogHistogram;
pub use json::{JsonObject, JsonValue, ToJson, MAX_PARSE_DEPTH};
pub use machine::MachineConfig;
pub use pool::PoolStats;
pub use rng::{LabelScrambler, SplitMix64};
pub use timing::{SimTime, TimeAccumulator};
pub use types::{Edge, GlobalGraphHeader, VertexId, INVALID_VERTEX};
