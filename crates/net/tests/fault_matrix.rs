//! Fault-injection matrix: every fault kind × every collective
//! category × mesh shapes {1×1, 2×2, 4×2} must terminate cleanly —
//! a structured per-rank outcome within a watchdog timeout, never a
//! deadlocked barrier — and a failure must name the faulty rank.
//!
//! Each case also re-runs the same cluster afterwards to prove the
//! runtime healed (barriers unpoisoned, slots cleared) and that the
//! consumed fault does not re-fire — the property the driver's
//! retry-with-backoff loop is built on.

use std::sync::mpsc;
use std::time::Duration;

use sunbfs_common::MachineConfig;
use sunbfs_net::{
    Cluster, CorruptMode, FailureKind, FaultEvent, FaultKind, FaultPlan, MeshShape, RankCtx,
    RankFailure, Scope,
};

/// Per-case watchdog: a hung barrier fails the test instead of hanging
/// the suite (the spawned thread leaks, but the suite completes).
const CASE_TIMEOUT: Duration = Duration::from_secs(60);

const SHAPES: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 2)];

/// The collective program every rank executes, one op per category.
/// Returns a value that depends on every exchanged payload so silent
/// corruption is observable.
fn collective_program(ctx: &mut RankCtx) -> u64 {
    let n = ctx.nranks() as u64;
    // op 0: barrier
    ctx.barrier(Scope::World);
    // op 1: allreduce (vector payload so truncation is detectable)
    let red = ctx.allreduce_with(
        Scope::World,
        "red",
        vec![ctx.rank() as u64, 1, 2],
        None,
        |a, b| *a += b,
    );
    // op 2: allgatherv
    let gathered = ctx.allgatherv(Scope::World, "gather", vec![ctx.rank() as u64; 2]);
    // op 3: alltoallv
    let send: Vec<Vec<u64>> = (0..n).map(|d| vec![ctx.rank() as u64 * 100 + d]).collect();
    let recv = ctx.alltoallv(Scope::World, "a2a", send);
    // op 4: scoped collectives so row/col barriers are exercised too
    let row_sum = ctx.allreduce_sum(Scope::Row, "rowsum", 1);
    let col_sum = ctx.allreduce_sum(Scope::Col, "colsum", 1);
    let mut acc = red.iter().sum::<u64>() + row_sum + col_sum;
    acc += gathered.iter().flatten().sum::<u64>();
    acc += recv.iter().flatten().sum::<u64>();
    acc
}

/// Number of ops in [`collective_program`]'s world-visible index space
/// (indices 0..=5; Row/Col ops share the same per-rank counter).
const CATEGORY_OPS: [(&str, u64); 6] = [
    ("barrier", 0),
    ("allreduce", 1),
    ("allgatherv", 2),
    ("alltoallv", 3),
    ("row_allreduce", 4),
    ("col_allreduce", 5),
];

/// Run `f` under the watchdog; panics if it neither returns nor panics
/// within [`CASE_TIMEOUT`] (i.e. a deadlocked barrier).
fn with_timeout<R: Send + 'static>(label: String, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(CASE_TIMEOUT) {
        Ok(r) => r,
        Err(_) => panic!("case '{label}' deadlocked or overran {CASE_TIMEOUT:?}"),
    }
}

fn run_case(
    shape: (usize, usize),
    kind: FaultKind,
    op_index: u64,
) -> (Cluster, Vec<Result<u64, RankFailure>>) {
    let (rows, cols) = shape;
    // Target the highest rank: exercises non-zero scope positions.
    let target = rows * cols - 1;
    let plan = FaultPlan::from_events(vec![FaultEvent {
        rank: target,
        op_index,
        kind,
    }]);
    let cluster = Cluster::with_faults(
        MeshShape::new(rows, cols),
        MachineConfig::new_sunway(),
        plan,
    );
    let results = cluster.run_fallible(collective_program);
    (cluster, results)
}

#[test]
fn injected_panic_matrix_terminates_and_names_rank() {
    for shape in SHAPES {
        for (category, op_index) in CATEGORY_OPS {
            let label = format!("panic/{category}/{}x{}", shape.0, shape.1);
            let target = shape.0 * shape.1 - 1;
            let (cluster, results) = with_timeout(label.clone(), move || {
                run_case(shape, FaultKind::Panic, op_index)
            });
            let failure = results[target].as_ref().expect_err("target rank must fail");
            assert_eq!(failure.rank, target, "{label}: failure names the rank");
            assert!(
                matches!(&failure.kind, FailureKind::Injected { op_index: oi, .. } if *oi == op_index),
                "{label}: expected a typed injected failure, got {failure}"
            );
            // Survivors either completed (they passed every collective
            // the victim reached) or were torn down via poisoning —
            // never left hanging.
            for (rank, r) in results.iter().enumerate() {
                if rank != target {
                    if let Err(f) = r {
                        assert!(
                            !f.is_root_cause(),
                            "{label}: rank {rank} must only fail as collateral, got {f}"
                        );
                    }
                }
            }
            // The log pins the event; the healed cluster retries clean.
            assert_eq!(cluster.fault_log().len(), 1, "{label}");
            let retry = cluster.run_fallible(collective_program);
            for r in retry {
                r.unwrap_or_else(|f| panic!("{label}: retry must succeed, got {f}"));
            }
        }
    }
}

#[test]
fn straggler_matrix_completes_with_imbalance_charged() {
    for shape in SHAPES {
        for (category, op_index) in CATEGORY_OPS {
            let label = format!("straggler/{category}/{}x{}", shape.0, shape.1);
            let (cluster, results) = with_timeout(label.clone(), move || {
                run_case(shape, FaultKind::Straggler { secs: 0.5 }, op_index)
            });
            let values: Vec<u64> = results
                .into_iter()
                .map(|r| r.unwrap_or_else(|f| panic!("{label}: stragglers must not fail: {f}")))
                .collect();
            assert!(!values.is_empty());
            let log = cluster.fault_log();
            assert_eq!(log.len(), 1, "{label}: event must be logged");
            assert!(log[0].applied, "{label}");
            assert_eq!(log[0].rank, shape.0 * shape.1 - 1, "{label}");
        }
    }
}

#[test]
fn corruption_matrix_heals_by_retransmit_with_correct_values() {
    for shape in SHAPES {
        // Fault-free reference values, once per shape: a healed run
        // must reproduce these exactly — corruption may cost time,
        // never correctness.
        let clean = Cluster::new(
            MeshShape::new(shape.0, shape.1),
            MachineConfig::new_sunway(),
        );
        let expected: Vec<u64> = clean
            .run_fallible(collective_program)
            .into_iter()
            .map(|r| r.expect("fault-free run cannot fail"))
            .collect();
        for mode in [CorruptMode::BitFlip, CorruptMode::Truncate] {
            for (category, op_index) in CATEGORY_OPS {
                let label = format!("corrupt-{mode:?}/{category}/{}x{}", shape.0, shape.1);
                let target = shape.0 * shape.1 - 1;
                let (cluster, results) = with_timeout(label.clone(), move || {
                    run_case(shape, FaultKind::Corrupt { mode }, op_index)
                });
                // The exchange layer detects the damage via payload
                // framing and heals it with a retransmit: every rank
                // completes with the fault-free value. No silent
                // corruption, no violation, no hang.
                for (rank, r) in results.iter().enumerate() {
                    let v = r
                        .as_ref()
                        .unwrap_or_else(|f| panic!("{label}: rank {rank} must heal, got {f}"));
                    assert_eq!(*v, expected[rank], "{label}: healed value must be clean");
                }
                // The event is always logged; it is `applied` unless
                // the payload was uncorruptible (a barrier's `()`).
                let log = cluster.fault_log();
                assert_eq!(log.len(), 1, "{label}");
                let retrans = cluster.retransmit_log();
                if log[0].applied {
                    assert_eq!(retrans.len(), 1, "{label}: one heal round suffices");
                    assert_eq!(
                        (retrans[0].from, retrans[0].op_index, retrans[0].attempt),
                        (target, op_index, 1),
                        "{label}: retransmit names the corrupt sender and op"
                    );
                } else {
                    assert!(
                        retrans.is_empty(),
                        "{label}: nothing to retransmit for an unapplied corruption"
                    );
                }
                // Healed cluster retries clean in every case.
                let retry = cluster.run_fallible(collective_program);
                for r in retry {
                    r.unwrap_or_else(|f| panic!("{label}: retry must succeed, got {f}"));
                }
            }
        }
    }
}

#[test]
fn multiple_simultaneous_faults_still_terminate() {
    // Two panics on different ranks in the same collective, plus a
    // straggler: the aggregate teardown must stay structured.
    for shape in [(2usize, 2usize), (4, 2)] {
        let label = format!("multi/{}x{}", shape.0, shape.1);
        let (cluster, results) = with_timeout(label.clone(), move || {
            let plan = FaultPlan::from_events(vec![
                FaultEvent {
                    rank: 0,
                    op_index: 1,
                    kind: FaultKind::Panic,
                },
                FaultEvent {
                    rank: 1,
                    op_index: 1,
                    kind: FaultKind::Panic,
                },
                FaultEvent {
                    rank: shape.0 * shape.1 - 1,
                    op_index: 0,
                    kind: FaultKind::Straggler { secs: 0.1 },
                },
            ]);
            let cluster = Cluster::with_faults(
                MeshShape::new(shape.0, shape.1),
                MachineConfig::new_sunway(),
                plan,
            );
            let results = cluster.run_fallible(collective_program);
            (cluster, results)
        });
        // The two victims race: whichever fires first poisons the
        // barriers, and the other may be torn down as collateral before
        // reaching its own injection point. At least one must fire as a
        // typed root cause, and both candidates are named victims only.
        let injected: Vec<usize> = results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .filter(|f| matches!(f.kind, FailureKind::Injected { .. }))
            .map(|f| f.rank)
            .collect();
        assert!(
            !injected.is_empty() && injected.iter().all(|r| *r < 2),
            "{label}: injected root causes must be among the victims, got {injected:?}"
        );
        // Fire-once semantics: bounded retries drain the remaining
        // unfired events one by one, then the cluster runs clean — the
        // exact property the driver's retry loop depends on.
        let mut healed = false;
        for _ in 0..3 {
            let retry = cluster.run_fallible(collective_program);
            if retry.iter().all(Result::is_ok) {
                healed = true;
                break;
            }
        }
        assert!(healed, "{label}: bounded retries must eventually succeed");
        assert_eq!(
            cluster.fault_log().len(),
            3,
            "{label}: every planned event fires exactly once across attempts"
        );
    }
}
