//! Closed-form cost estimators for recurring chip access patterns.
//!
//! Node-level time in the reproduction comes from a handful of access
//! patterns with well-understood costs on SW26010-Pro (§3.1):
//!
//! * **DMA streaming** — bulk sequential transfers between main memory
//!   and LDM; good utilization needs ≥ 1 KB grains, sub-grain transfers
//!   waste bandwidth proportionally,
//! * **CPE scalar work** — per-item register/LDM work on the 64 CPEs of
//!   each active core group,
//! * **GLD/GST loops** — random uncached main-memory accesses, each a
//!   full round-trip latency (the pattern segmenting exists to kill),
//! * **MPE scalar scatter** — the management core chasing random
//!   addresses, the Figure 14 baseline,
//! * **cross-CG atomics** — the only synchronization SW26010-Pro offers
//!   between core groups; slow because it bounces through main memory.
//!
//! Each estimator returns a [`KernelReport`] so callers can charge the
//! time and keep the byte/op counts for the experiment write-ups.

use sunbfs_common::{JsonValue, MachineConfig, PoolStats, SimTime, ToJson};

/// Outcome of a simulated chip kernel: elapsed time plus traffic/op
/// counters for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelReport {
    /// Simulated elapsed time of the kernel (critical path over CPEs).
    pub time: SimTime,
    /// Bytes moved by DMA (main memory ↔ LDM).
    pub dma_bytes: u64,
    /// Bytes moved by RMA (LDM ↔ LDM).
    pub rma_bytes: u64,
    /// Number of RMA get/put operations.
    pub rma_ops: u64,
    /// Number of GLD/GST direct main-memory accesses.
    pub gld_ops: u64,
    /// Number of atomic operations (cross-CG synchronization).
    pub atomic_ops: u64,
    /// Items processed (kernel-specific meaning).
    pub items: u64,
    /// Host worker-pool activity of the kernel's functional pass (how
    /// the simulation itself was parallelized; no effect on simulated
    /// time).
    pub pool: PoolStats,
}

impl KernelReport {
    /// Merge another report, taking the max of times (parallel
    /// composition) and summing the counters.
    pub fn join_parallel(&mut self, other: &KernelReport) {
        self.time = self.time.max(other.time);
        self.add_counters(other);
    }

    /// Merge another report, adding times (sequential composition) and
    /// summing the counters.
    pub fn join_serial(&mut self, other: &KernelReport) {
        self.time += other.time;
        self.add_counters(other);
    }

    fn add_counters(&mut self, other: &KernelReport) {
        self.dma_bytes += other.dma_bytes;
        self.rma_bytes += other.rma_bytes;
        self.rma_ops += other.rma_ops;
        self.gld_ops += other.gld_ops;
        self.atomic_ops += other.atomic_ops;
        self.items += other.items;
        self.pool.merge(&other.pool);
    }

    /// Throughput in bytes/second over `payload_bytes` of useful data.
    pub fn throughput(&self, payload_bytes: u64) -> f64 {
        if self.time.as_secs() <= 0.0 {
            0.0
        } else {
            payload_bytes as f64 / self.time.as_secs()
        }
    }
}

impl ToJson for KernelReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("time_s", self.time.to_json())
            .field("dma_bytes", self.dma_bytes)
            .field("rma_bytes", self.rma_bytes)
            .field("rma_ops", self.rma_ops)
            .field("gld_ops", self.gld_ops)
            .field("atomic_ops", self.atomic_ops)
            .field("items", self.items)
            .field("pool", self.pool.to_json())
            .build()
    }
}

/// DMA transfer efficiency for a given grain size: full bandwidth at or
/// above the machine's efficient grain, degrading linearly below it
/// (a short transfer still pays the setup of a full grain).
#[inline]
pub fn dma_efficiency(machine: &MachineConfig, grain_bytes: usize) -> f64 {
    if grain_bytes >= machine.dma_grain_bytes {
        1.0
    } else {
        (grain_bytes.max(1) as f64) / machine.dma_grain_bytes as f64
    }
}

/// Time to DMA-stream `bytes` with transfers of `grain_bytes`, when
/// `active_cgs` core groups share the chip's DMA bandwidth.
pub fn dma_stream(
    machine: &MachineConfig,
    bytes: u64,
    grain_bytes: usize,
    active_cgs: usize,
) -> SimTime {
    let cgs = active_cgs.clamp(1, machine.cgs_per_node);
    let bw = machine.dma_bandwidth * cgs as f64 / machine.cgs_per_node as f64;
    let eff = dma_efficiency(machine, grain_bytes);
    SimTime::secs(bytes as f64 / (bw * eff))
}

/// Time for `items` of scalar CPE work at `cycles_per_item`, spread
/// perfectly over the CPEs of `active_cgs` core groups.
pub fn cpe_work(
    machine: &MachineConfig,
    items: u64,
    cycles_per_item: f64,
    active_cgs: usize,
) -> SimTime {
    let cpes = (machine.cpes_per_cg * active_cgs.max(1).min(machine.cgs_per_node)) as f64;
    SimTime::secs(items as f64 * cycles_per_item / machine.cpe_hz / cpes)
}

/// Time for `accesses` random GLD/GST round trips spread over
/// `parallel_cpes` cores (each access is latency-bound; the memory
/// system pipelines across cores but not within one).
pub fn gld_random(machine: &MachineConfig, accesses: u64, parallel_cpes: usize) -> SimTime {
    SimTime::secs(accesses as f64 * machine.gld_latency / parallel_cpes.max(1) as f64)
}

/// Time for `accesses` random RMA gets/puts spread over `parallel_cpes`
/// cores.
pub fn rma_random(machine: &MachineConfig, accesses: u64, parallel_cpes: usize) -> SimTime {
    SimTime::secs(accesses as f64 * machine.rma_latency / parallel_cpes.max(1) as f64)
}

/// Time for the MPE to process `items` with one random main-memory
/// access each — the sequential baseline of Figure 14.
pub fn mpe_scatter(machine: &MachineConfig, items: u64) -> SimTime {
    SimTime::secs(items as f64 * machine.mpe_item_cost)
}

/// Time for `accesses` random reads through the optional LDCache
/// (§3.1.2): the cache shares physical space with LDM, so its capacity
/// is at most the LDM size. Uniform random access over a working set
/// larger than the cache misses proportionally, each miss a GLD round
/// trip — the quantitative form of §3.3's "the cache size is not large
/// enough to hold the hot data given millions of vertices each node is
/// responsible for".
pub fn ldcache_random(
    machine: &MachineConfig,
    accesses: u64,
    working_set_bytes: u64,
    parallel_cpes: usize,
) -> SimTime {
    let cache = machine.ldm_bytes as f64;
    let hit_rate = (cache / working_set_bytes.max(1) as f64).min(1.0);
    let hit_cost = machine.cpe_cycles_per_item / machine.cpe_hz;
    let miss_cost = machine.gld_latency;
    let per_access = hit_rate * hit_cost + (1.0 - hit_rate) * miss_cost;
    SimTime::secs(accesses as f64 * per_access / parallel_cpes.max(1) as f64)
}

/// Time for `ops` cross-CG atomic operations issued from one core group.
pub fn atomics(machine: &MachineConfig, ops: u64) -> SimTime {
    SimTime::secs(ops as f64 * machine.atomic_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineConfig {
        MachineConfig::new_sunway()
    }

    #[test]
    fn dma_efficiency_saturates_at_grain() {
        let m = m();
        assert_eq!(dma_efficiency(&m, 1024), 1.0);
        assert_eq!(dma_efficiency(&m, 4096), 1.0);
        assert_eq!(dma_efficiency(&m, 512), 0.5);
        assert!(dma_efficiency(&m, 0) > 0.0);
    }

    #[test]
    fn dma_stream_scales_with_cgs() {
        let m = m();
        let one = dma_stream(&m, 1 << 30, 2048, 1);
        let six = dma_stream(&m, 1 << 30, 2048, 6);
        assert!((one.as_secs() / six.as_secs() - 6.0).abs() < 1e-9);
        // Full-chip streaming of 1 GiB at 249 GB/s:
        let expect = (1u64 << 30) as f64 / 249.0e9;
        assert!((six.as_secs() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn small_grain_halves_bandwidth() {
        let m = m();
        let full = dma_stream(&m, 1 << 20, 1024, 6);
        let half = dma_stream(&m, 1 << 20, 512, 6);
        assert!((half.as_secs() / full.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cpe_work_uses_all_cores() {
        let m = m();
        let t = cpe_work(&m, 384_000, 8.0, 6);
        // 1000 items per CPE at 8 cycles.
        let expect = 1000.0 * 8.0 / m.cpe_hz;
        assert!((t.as_secs() - expect).abs() < 1e-15);
    }

    #[test]
    fn gld_is_much_slower_than_rma() {
        let m = m();
        let gld = gld_random(&m, 1_000_000, 64);
        let rma = rma_random(&m, 1_000_000, 64);
        let ratio = gld.as_secs() / rma.as_secs();
        assert!(
            ratio > 8.0 && ratio < 10.0,
            "GLD/RMA ratio {ratio} should be ~9 (paper's 9x)"
        );
    }

    #[test]
    fn mpe_matches_figure14_baseline() {
        let m = m();
        // 4 GB of 8-byte items on the MPE: paper measures 0.0406 GB/s.
        let items = (4u64 << 30) / 8;
        let t = mpe_scatter(&m, items);
        let gbps = (4u64 << 30) as f64 / t.as_secs() / 1e9;
        assert!(
            (gbps - 0.0406).abs() < 0.01,
            "MPE throughput {gbps} GB/s vs paper 0.0406"
        );
    }

    #[test]
    fn ldcache_interpolates_between_ldm_and_gld() {
        let m = m();
        let cpes = m.cpes_per_node();
        // Working set inside the cache: pure hit cost, far below GLD.
        let hot = ldcache_random(&m, 1_000_000, 64 * 1024, cpes);
        let gld = gld_random(&m, 1_000_000, cpes);
        assert!(hot.as_secs() < gld.as_secs() / 50.0);
        // Working set 100x the cache: nearly every access misses.
        let cold = ldcache_random(&m, 1_000_000, 100 * m.ldm_bytes as u64, cpes);
        assert!(cold.as_secs() > gld.as_secs() * 0.9);
        // Monotone in working-set size.
        let mut prev = SimTime::ZERO;
        for ws in [1u64 << 14, 1 << 18, 1 << 22, 1 << 26] {
            let t = ldcache_random(&m, 1_000_000, ws, cpes);
            assert!(t >= prev);
            prev = t;
        }
        // The paper's point: the RMA-segmented probe beats LDCache on
        // the EH2EH pull working set (a few MB of bits per node).
        let pull_ws = 4 * 1024 * 1024u64;
        let via_cache = ldcache_random(&m, 1_000_000, pull_ws, cpes);
        let via_rma = rma_random(&m, 1_000_000, m.cpes_per_cg);
        assert!(
            via_rma.as_secs() < via_cache.as_secs(),
            "segmenting must beat LDCache"
        );
    }

    #[test]
    fn report_compositions() {
        let a = KernelReport {
            time: SimTime::secs(1.0),
            dma_bytes: 10,
            ..Default::default()
        };
        let b = KernelReport {
            time: SimTime::secs(2.0),
            dma_bytes: 5,
            ..Default::default()
        };
        let mut par = a;
        par.join_parallel(&b);
        assert_eq!(par.time.as_secs(), 2.0);
        assert_eq!(par.dma_bytes, 15);
        let mut ser = a;
        ser.join_serial(&b);
        assert_eq!(ser.time.as_secs(), 3.0);
    }

    #[test]
    fn throughput_guards_zero_time() {
        let r = KernelReport::default();
        assert_eq!(r.throughput(100), 0.0);
    }
}
