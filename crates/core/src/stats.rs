//! Per-run statistics: everything the evaluation figures read.

use sunbfs_common::{JsonValue, PoolStats, TimeAccumulator, ToJson};
use sunbfs_net::CommStats;
use sunbfs_sunway::KernelReport;

use crate::config::{Component, Direction};

/// Counters of one sub-iteration (one subgraph component's expansion
/// inside one BFS iteration). The component itself is implied by the
/// slot index in [`IterationStats::subs`] ([`Component::ALL`] order).
#[derive(Clone, Copy, Debug, Default)]
pub struct SubIterationStats {
    /// Direction this component actually executed.
    pub direction: Direction,
    /// True when the decision was refreshed mid-iteration from the
    /// piggybacked visited count (H2L/L2L under sub-iteration
    /// optimization), rather than taken from the iteration-start
    /// heuristics.
    pub refreshed: bool,
    /// Measured frontier edge mass `m_f` the direction decision saw:
    /// the global degree-sum of the deciding class's frontier. Zero
    /// under the fixed heuristic (schema v10;
    /// [`crate::config::DirectionHeuristic`]).
    pub frontier_edges: u64,
    /// Measured unexplored edge mass `m_u` the decision saw: the global
    /// degree-sum of the destination class's unvisited vertices. Zero
    /// under the fixed heuristic (schema v10).
    pub unexplored_edges: u64,
    /// Edges scanned by this component on this rank.
    pub scanned_edges: u64,
    /// Aggregated OCS on-chip kernel work (bucketing sorts) this
    /// component ran on this rank: times summed, counters summed.
    pub kernel: KernelReport,
    /// Worker-pool activity for this component's scans on this rank:
    /// how the scan was chunked and how many helper threads staffed it
    /// (the schema-v5 worker-scaling surface).
    pub pool: PoolStats,
}

impl ToJson for SubIterationStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("direction", direction_name(self.direction))
            .field("refreshed", self.refreshed)
            .field("frontier_edges", self.frontier_edges)
            .field("unexplored_edges", self.unexplored_edges)
            .field("scanned_edges", self.scanned_edges)
            .field("kernel", self.kernel.to_json())
            .field("pool", self.pool.to_json())
            .build()
    }
}

fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::Push => "push",
        Direction::Pull => "pull",
    }
}

/// Counters of one BFS iteration (one frontier expansion).
#[derive(Clone, Copy, Debug, Default)]
pub struct IterationStats {
    /// Iteration number (1-based).
    pub iter: u32,
    /// Active (frontier) vertices per class at iteration start — the
    /// Figure 5 series.
    pub active_e: u64,
    /// Active H vertices.
    pub active_h: u64,
    /// Active L vertices (global).
    pub active_l: u64,
    /// Vertices discovered this iteration, per class.
    pub newly_e: u64,
    /// Newly discovered H vertices.
    pub newly_h: u64,
    /// Newly discovered L vertices (global).
    pub newly_l: u64,
    /// Direction chosen per component, in [`Component::ALL`] order.
    pub directions: [Direction; 6],
    /// Edges scanned across all sub-iterations (work metric).
    pub scanned_edges: u64,
    /// This rank's collective-call counter right after the iteration's
    /// closing allreduce — the op index of the first collective *after*
    /// the iteration completed (identical on every rank: the schedule
    /// is SPMD). Fault campaigns use it to aim injections at exact
    /// iteration boundaries.
    pub end_op: u64,
    /// Per-sub-iteration detail, in [`Component::ALL`] order.
    pub subs: [SubIterationStats; 6],
}

impl ToJson for IterationStats {
    fn to_json(&self) -> JsonValue {
        let subs = JsonValue::Object(
            Component::ALL
                .iter()
                .zip(&self.subs)
                .map(|(c, s)| (c.name().to_string(), s.to_json()))
                .collect(),
        );
        JsonValue::object()
            .field("iter", self.iter)
            .field("active_e", self.active_e)
            .field("active_h", self.active_h)
            .field("active_l", self.active_l)
            .field("newly_e", self.newly_e)
            .field("newly_h", self.newly_h)
            .field("newly_l", self.newly_l)
            .field("scanned_edges", self.scanned_edges)
            .field("end_op", self.end_op)
            .field("subs", subs)
            .build()
    }
}

/// Statistics of one complete BFS traversal on one rank.
#[derive(Clone, Debug, Default)]
pub struct BfsRunStats {
    /// Per-iteration counters (identical on every rank for the
    /// replicated fields; L counts are global sums).
    pub iterations: Vec<IterationStats>,
    /// Graph 500 `m`: undirected edges in the traversed component
    /// (global; used for TEPS). This is the engine's degree-sum
    /// estimate, which counts duplicate input edges — the driver
    /// replaces it with the spec-conformant deduplicated count when it
    /// validates (see `validate::component_edges`).
    pub traversed_edges: u64,
    /// Vertices reached (global, including the root).
    pub visited_vertices: u64,
    /// Simulated seconds the traversal took on this rank.
    pub sim_seconds: f64,
    /// Per-category simulated time on this rank (BFS phase only).
    pub times: TimeAccumulator,
    /// Per-scope collective call counts and byte volumes on this rank
    /// (BFS phase only).
    pub comm: CommStats,
}

impl BfsRunStats {
    /// Giga-traversed-edges-per-second on the simulated machine —
    /// the paper's headline metric.
    pub fn gteps(&self) -> f64 {
        if self.sim_seconds <= 0.0 {
            return 0.0;
        }
        self.traversed_edges as f64 / self.sim_seconds / 1e9
    }
}

impl ToJson for BfsRunStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("traversed_edges", self.traversed_edges)
            .field("visited_vertices", self.visited_vertices)
            .field("sim_seconds", self.sim_seconds)
            .field("gteps", self.gteps())
            .field("times", self.times.to_json())
            .field("comm", self.comm.to_json())
            .field("iterations", self.iterations.to_json())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::SimTime;

    #[test]
    fn gteps_formula() {
        let s = BfsRunStats {
            traversed_edges: 2_000_000_000,
            sim_seconds: 2.0,
            ..Default::default()
        };
        assert!((s.gteps() - 1.0).abs() < 1e-12);
        let zero = BfsRunStats::default();
        assert_eq!(zero.gteps(), 0.0);
    }

    #[test]
    fn iteration_stats_serialize_all_six_components() {
        let mut st = IterationStats {
            iter: 3,
            ..Default::default()
        };
        st.subs[0].direction = Direction::Pull;
        st.subs[3].refreshed = true;
        st.subs[4].frontier_edges = 17;
        st.subs[4].unexplored_edges = 99;
        st.subs[5].scanned_edges = 42;
        let js = st.to_json().render();
        for c in Component::ALL {
            assert!(
                js.contains(&format!("\"{}\"", c.name())),
                "missing {} in {js}",
                c.name()
            );
        }
        assert!(js.contains("\"direction\":\"pull\""));
        assert!(js.contains("\"refreshed\":true"));
        assert!(js.contains("\"frontier_edges\":17"));
        assert!(js.contains("\"unexplored_edges\":99"));
        assert!(js.contains("\"scanned_edges\":42"));
    }

    #[test]
    fn run_stats_serialize_with_kernel_and_times() {
        let mut st = BfsRunStats {
            traversed_edges: 10,
            visited_vertices: 5,
            ..Default::default()
        };
        st.sim_seconds = 0.5;
        st.times.add("sub.EH2EH.push", SimTime::secs(0.25));
        let mut it = IterationStats {
            iter: 1,
            ..Default::default()
        };
        it.subs[0].kernel.rma_ops = 7;
        st.iterations.push(it);
        let js = st.to_json().render();
        assert!(js.contains("\"sub.EH2EH.push\":0.25"));
        assert!(js.contains("\"rma_ops\":7"));
        assert!(js.contains("\"gteps\":"));
    }
}
