//! The superstep executor: scatter → exchange → combine → apply, over
//! the six components of a [`sunbfs_part::RankPartition`].
//!
//! The execution discipline mirrors the BFS engine's (§4): hub state is
//! replicated and merged at round boundaries with a row-then-column
//! reduction; L-addressed messages travel intra-row for H→L edges and
//! through the column/row intersection forwarder for L→L (§4.4); all
//! outgoing batches are bucketed on-chip with OCS-RMA before the
//! `alltoallv`. Each directed edge orientation is stored on exactly one
//! rank, so a scatter emits every message exactly once globally — the
//! invariant the combiner algebra relies on.

use sunbfs_common::{Bitmap, SimTime, TimeAccumulator};
use sunbfs_net::{RankCtx, Scope};
use sunbfs_part::RankPartition;
use sunbfs_sunway::kernels;
use sunbfs_sunway::{ocs_sort_rma, OcsConfig};

use crate::VertexProgram;

/// Per-round counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundStats {
    /// Round number (1-based).
    pub round: u32,
    /// Active vertices at round start (global).
    pub active: u64,
    /// Messages generated on this rank.
    pub messages: u64,
    /// Edges scanned on this rank.
    pub scanned_edges: u64,
}

/// Whole-run statistics.
#[derive(Clone, Debug, Default)]
pub struct ProgramStats {
    /// One entry per superstep.
    pub rounds: Vec<RoundStats>,
    /// Simulated seconds on this rank.
    pub sim_seconds: f64,
    /// Per-category simulated time (program phase only).
    pub times: TimeAccumulator,
}

/// Result of a program run on one rank.
#[derive(Clone, Debug)]
pub struct ProgramOutput<V> {
    /// Final values of this rank's owned vertices, in owned order
    /// (hub-class vertices carry the replicated hub value).
    pub values: Vec<V>,
    /// Run statistics.
    pub stats: ProgramStats,
}

/// Charge a streaming scan of `edges` adjacency entries.
fn charge_scan(ctx: &mut RankCtx, category: &str, edges: u64) {
    if edges == 0 {
        return;
    }
    let m = *ctx.machine();
    let dma = kernels::dma_stream(&m, edges * 8, m.dma_grain_bytes, m.cgs_per_node);
    let cpe = kernels::cpe_work(&m, edges, 8.0, m.cgs_per_node);
    ctx.charge(category, dma.max(cpe));
}

/// Run `program` to completion over this rank's partition. SPMD.
pub fn run_program<P: VertexProgram>(
    ctx: &mut RankCtx,
    part: &RankPartition,
    program: &P,
) -> ProgramOutput<P::Value> {
    let t_start = ctx.now();
    let acc_start = ctx.accumulator().clone();
    let dir = &part.directory;
    let dist = part.dist;
    let topo = ctx.topology();
    let (rows, cols) = (topo.shape().rows, topo.shape().cols);
    let my_col = ctx.col();
    let range = part.owned_range();
    let local_n = (range.end - range.start) as usize;
    let nh = dir.num_hubs() as usize;
    let num_e = dir.num_e() as u64;

    if program.always_active() {
        assert!(
            program.max_rounds().is_some(),
            "always_active programs must bound max_rounds"
        );
    }

    // ---- state ----
    let mut hub_values: Vec<P::Value> = (0..nh as u32)
        .map(|h| program.init(dir.vertex_of(h), dir.degree_of(h)))
        .collect();
    let mut l_values: Vec<P::Value> = (0..local_n)
        .map(|i| {
            let v = range.start + i as u64;
            program.init(v, part.owned_degrees[i])
        })
        .collect();
    let mut hub_active = Bitmap::new(nh as u64);
    let mut l_active = Bitmap::new(local_n as u64);
    for h in 0..nh as u32 {
        if program.initially_active(dir.vertex_of(h)) {
            hub_active.set(h as u64);
        }
    }
    for i in 0..local_n as u64 {
        let v = range.start + i;
        if dir.hub_id(v).is_none() && program.initially_active(v) {
            l_active.set(i);
        }
    }

    let mut stats = ProgramStats::default();
    let mut round = 0u32;
    let machine = *ctx.machine();
    loop {
        round += 1;
        let mut rs = RoundStats {
            round,
            ..Default::default()
        };
        let active_l = ctx.allreduce_sum(Scope::World, "fw.active", l_active.count_ones());
        rs.active = hub_active.count_ones() + active_l;
        if rs.active == 0 {
            break;
        }

        // ---- scatter ----
        let mut hub_msgs: Vec<Option<P::Message>> = vec![None; nh];
        let mut l_msgs: Vec<Option<P::Message>> = vec![None; local_n];
        let mut row_wire: Vec<(u64, P::Message)> = Vec::new(); // H→L, intra-row
        let mut world_wire: Vec<(u64, P::Message)> = Vec::new(); // L→L, forwarded
        let mut scanned = 0u64;
        let mut emitted = 0u64;

        let emit_hub = |msgs: &mut Vec<Option<P::Message>>, h: u64, m: P::Message| match &mut msgs
            [h as usize]
        {
            Some(acc) => program.combine(acc, m),
            slot => *slot = Some(m),
        };

        // EH2EH: hub → hub, my column's source slice.
        for u in hub_active
            .iter_ones()
            .filter(|&u| u % cols as u64 == my_col as u64)
        {
            let uv = dir.vertex_of(u as u32);
            let value = hub_values[u as usize].clone();
            for &v in part.eh_by_src.neighbors(u) {
                scanned += 1;
                if let Some(m) = program.scatter(&value, uv, dir.vertex_of(v as u32)) {
                    emitted += 1;
                    emit_hub(&mut hub_msgs, v, m);
                }
            }
        }
        // E2L: E hub → local L.
        for e in hub_active.iter_ones_range(0, num_e) {
            let ev = dir.vertex_of(e as u32);
            let value = hub_values[e as usize].clone();
            for &l in part.el_by_hub.neighbors(e) {
                scanned += 1;
                if let Some(m) = program.scatter(&value, ev, l) {
                    emitted += 1;
                    match &mut l_msgs[(l - range.start) as usize] {
                        Some(acc) => program.combine(acc, m),
                        slot => *slot = Some(m),
                    }
                }
            }
        }
        // H2L: H hub → L along the row.
        for h in hub_active.iter_ones_range(num_e, nh as u64) {
            let hv = dir.vertex_of(h as u32);
            let value = hub_values[h as usize].clone();
            for &l in part.h2l_by_hub.neighbors(h) {
                scanned += 1;
                if let Some(m) = program.scatter(&value, hv, l) {
                    emitted += 1;
                    row_wire.push((l, m));
                }
            }
        }
        // L-sourced components: L→E, L→H (hub accumulators), L→L (wire).
        for li in l_active.iter_ones() {
            let l = range.start + li;
            let value = l_values[li as usize].clone();
            for &e in part.el_by_local.neighbors(l) {
                scanned += 1;
                if let Some(m) = program.scatter(&value, l, dir.vertex_of(e as u32)) {
                    emitted += 1;
                    emit_hub(&mut hub_msgs, e, m);
                }
            }
            for &h in part.lh_by_local.neighbors(l) {
                scanned += 1;
                if let Some(m) = program.scatter(&value, l, dir.vertex_of(h as u32)) {
                    emitted += 1;
                    emit_hub(&mut hub_msgs, h, m);
                }
            }
            for &v in part.l2l.neighbors(l) {
                scanned += 1;
                if let Some(m) = program.scatter(&value, l, v) {
                    emitted += 1;
                    world_wire.push((v, m));
                }
            }
        }
        rs.scanned_edges = scanned;
        rs.messages = emitted;
        charge_scan(ctx, "fw.scatter", scanned);

        // ---- L-message exchange ----
        // H→L: bucket by destination column, one intra-row alltoallv.
        let (row_buckets, rep) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &row_wire,
            cols,
            machine.cgs_per_node,
            |&(l, _)| topo.col_of(dist.owner(l)),
        );
        ctx.charge("fw.sort", rep.time);
        let received = ctx.alltoallv(Scope::Row, "comm.alltoallv.fw", row_buckets);
        let mut applied_msgs = 0u64;
        for batch in received {
            for (l, m) in batch {
                applied_msgs += 1;
                match &mut l_msgs[(l - range.start) as usize] {
                    Some(acc) => program.combine(acc, m),
                    slot => *slot = Some(m),
                }
            }
        }
        // L→L: forward through the column/row intersection (§4.4).
        let (col_buckets, rep) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &world_wire,
            rows,
            machine.cgs_per_node,
            |&(v, _)| topo.row_of(dist.owner(v)),
        );
        ctx.charge("fw.sort", rep.time);
        let forwarded: Vec<(u64, P::Message)> = ctx
            .alltoallv(Scope::Col, "comm.alltoallv.fw", col_buckets)
            .into_iter()
            .flatten()
            .collect();
        let (row_buckets, rep) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &forwarded,
            cols,
            machine.cgs_per_node,
            |&(v, _)| topo.col_of(dist.owner(v)),
        );
        ctx.charge("fw.sort", rep.time);
        let received = ctx.alltoallv(Scope::Row, "comm.alltoallv.fw", row_buckets);
        for batch in received {
            for (v, m) in batch {
                applied_msgs += 1;
                match &mut l_msgs[(v - range.start) as usize] {
                    Some(acc) => program.combine(acc, m),
                    slot => *slot = Some(m),
                }
            }
        }
        charge_scan(ctx, "fw.apply", applied_msgs);

        // ---- hub-message merge: row reduction then column reduction,
        // the §4.1 delegate pattern. Message sets per rank are disjoint
        // (each directed edge lives on one rank), so the fold sees every
        // message exactly once.
        if nh > 0 {
            let combine = |a: &mut Option<P::Message>, b: &Option<P::Message>| {
                if let Some(m) = b {
                    match a {
                        Some(acc) => program.combine(acc, *m),
                        slot => *slot = Some(*m),
                    }
                }
            };
            hub_msgs = ctx.allreduce_with(Scope::Row, "hubsync.fw", hub_msgs, None, combine);
            hub_msgs = ctx.allreduce_with(Scope::Col, "hubsync.fw", hub_msgs, None, combine);
        }

        // ---- apply ----
        hub_active.clear();
        for (h, slot) in hub_msgs.into_iter().enumerate() {
            if let Some(m) = slot {
                let v = dir.vertex_of(h as u32);
                if program.apply(v, &mut hub_values[h], m) {
                    hub_active.set(h as u64);
                }
            }
        }
        l_active.clear();
        for (i, slot) in l_msgs.into_iter().enumerate() {
            if let Some(m) = slot {
                let v = range.start + i as u64;
                if program.apply(v, &mut l_values[i], m) {
                    l_active.set(i as u64);
                }
            }
        }
        if program.always_active() {
            for h in 0..nh as u64 {
                hub_active.set(h);
            }
            for i in 0..local_n as u64 {
                let v = range.start + i;
                if dir.hub_id(v).is_none() {
                    l_active.set(i);
                }
            }
        }
        // Apply cost: one pass over the touched values.
        ctx.charge(
            "fw.apply",
            SimTime::from_items(
                (nh + local_n) as u64,
                machine.cpe_hz / 4.0 * machine.cpes_per_node() as f64,
            ),
        );

        stats.rounds.push(rs);
        if let Some(limit) = program.max_rounds() {
            if round >= limit {
                break;
            }
        }
        if round > 100_000 {
            panic!("vertex program failed to quiesce — runaway loop");
        }
    }

    // ---- output: owned values, hubs taken from the replica ----
    let values: Vec<P::Value> = (0..local_n)
        .map(|i| {
            let v = range.start + i as u64;
            match dir.hub_id(v) {
                Some(h) => hub_values[h as usize].clone(),
                None => l_values[i].clone(),
            }
        })
        .collect();
    stats.sim_seconds = (ctx.now() - t_start).as_secs();
    stats.times = ctx.accumulator().diff(&acc_start);
    ProgramOutput { values, stats }
}
