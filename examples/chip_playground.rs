//! Chip playground: the SW26010-Pro kernels in isolation.
//!
//! Demonstrates the two chip-level techniques on the simulator:
//!
//! 1. **OCS-RMA** (§4.4) — bucket 64-bit integers by their low 8 bits
//!    on the MPE, one core group, and six core groups, reproducing the
//!    Figure 14 throughput ladder (paper: 0.0406 / 12.5 / 58.6 GB/s);
//! 2. **CG-aware segmenting** (§4.3) — random bit probes through the
//!    LDM-distributed bit vector (RMA) versus direct main-memory reads
//!    (GLD), the 9× kernel gap behind Figure 15.
//!
//! ```text
//! cargo run --release --example chip_playground -- [mib]
//! ```

use sunbfs::common::{MachineConfig, SplitMix64};
use sunbfs::sunway::kernels;
use sunbfs::sunway::{ocs_sort_mpe, ocs_sort_rma, OcsConfig, SegmentedBitvec};

fn main() {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let machine = MachineConfig::new_sunway();
    let n = mib * 1024 * 1024 / 8;
    let mut rng = SplitMix64::new(7);
    let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let bytes = (n * 8) as u64;
    let bucket = |x: &u64| (x & 0xff) as usize;

    println!("OCS-RMA bucketing {mib} MiB of u64 by low 8 bits (paper Figure 14):");
    let (_, mpe) = ocs_sort_mpe(&machine, &items, 256, bucket);
    println!(
        "  MPE (sequential):   {:>9.4} GB/s   (paper: 0.0406)",
        mpe.throughput(bytes) / 1e9
    );
    let (_, cg1) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 1, bucket);
    println!(
        "  1 CG  (64 CPEs):    {:>9.2} GB/s   (paper: 12.5)   rma puts: {}",
        cg1.throughput(bytes) / 1e9,
        cg1.rma_ops
    );
    let (buckets, cg6) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 6, bucket);
    println!(
        "  6 CGs (384 CPEs):   {:>9.2} GB/s   (paper: 58.6)   atomics: {}",
        cg6.throughput(bytes) / 1e9,
        cg6.atomic_ops
    );
    let check: usize = buckets.iter().map(Vec::len).sum();
    assert_eq!(check, n, "sorter lost items");
    println!(
        "  speedup 6CG/MPE:    {:>9.0}x  (paper: 1443x)",
        cg6.throughput(bytes) / mpe.throughput(bytes)
    );

    // ---- segmented bit-vector probes ----
    println!("\nCG-aware segmenting: 1M random probes of a 2 MB activeness bit vector:");
    let bits = 2 * 1024 * 1024 * 8u64;
    let mut seg = SegmentedBitvec::new(bits, machine.cpes_per_cg);
    let mut rng = SplitMix64::new(8);
    for _ in 0..100_000 {
        seg.set(rng.next_below(bits));
    }
    println!(
        "  LDM per CPE: {} KB (budget 256 KB)",
        seg.ldm_bytes_per_cpe() / 1024
    );
    let probes = 1_000_000u64;
    let mut remote = 0u64;
    let mut hits = 0u64;
    for i in 0..probes {
        let cpe = (i % 64) as usize;
        let (v, was_remote) = seg.get_from(cpe, rng.next_below(bits));
        remote += was_remote as u64;
        hits += v as u64;
    }
    let t_rma = kernels::rma_random(&machine, remote, machine.cpes_per_cg);
    let t_gld = kernels::gld_random(&machine, probes, machine.cpes_per_cg);
    println!(
        "  remote (RMA) fraction: {:.1}%  hits: {hits}",
        100.0 * remote as f64 / probes as f64
    );
    println!("  probe time via RMA:  {:>8.1} us", t_rma.as_secs() * 1e6);
    println!("  probe time via GLD:  {:>8.1} us", t_gld.as_secs() * 1e6);
    println!(
        "  segmenting speedup:  {:>8.1}x   (paper: ~9x on the EH2EH pull kernel)",
        t_gld.as_secs() / t_rma.as_secs()
    );
}
