//! Classic vertex programs over the 1.5D framework.
//!
//! §8 of the paper argues its techniques generalize beyond BFS and
//! names SSSP and PageRank as immediate candidates for the push/pull
//! discipline. These four programs exercise the framework end to end
//! and double as oracles for the framework's own tests:
//!
//! * [`Bfs`] — parent forest; must reach exactly the vertices the
//!   dedicated engine reaches,
//! * [`ShortestPaths`] — Bellman-Ford with the deterministic integer
//!   weights of [`crate::weights`] (Graph 500's second kernel),
//! * [`ConnectedComponents`] — min-label propagation,
//! * [`PageRank`] — fixed-iteration power method with degree-normalized
//!   contributions.

use sunbfs_common::{VertexId, INVALID_VERTEX};

use crate::weights::edge_weight;
use crate::VertexProgram;

// ---------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------

/// Breadth-first search as a vertex program.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Search root.
    pub root: VertexId,
}

/// BFS vertex state: the parent (INVALID until reached).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsValue {
    /// Parent in the BFS forest.
    pub parent: VertexId,
}

impl VertexProgram for Bfs {
    type Value = BfsValue;
    type Message = VertexId; // proposed parent

    fn init(&self, v: VertexId, _degree: u32) -> BfsValue {
        BfsValue {
            parent: if v == self.root {
                self.root
            } else {
                INVALID_VERTEX
            },
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.root
    }

    fn scatter(&self, value: &BfsValue, src: VertexId, _dst: VertexId) -> Option<VertexId> {
        debug_assert_ne!(value.parent, INVALID_VERTEX, "inactive vertex scattered");
        Some(src)
    }

    fn combine(&self, a: &mut VertexId, b: VertexId) {
        // Deterministic tie-break: smallest proposed parent wins.
        *a = (*a).min(b);
    }

    fn apply(&self, _v: VertexId, value: &mut BfsValue, msg: VertexId) -> bool {
        if value.parent == INVALID_VERTEX {
            value.parent = msg;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------
// SSSP (Bellman-Ford)
// ---------------------------------------------------------------------

/// Single-source shortest paths with deterministic integer weights.
#[derive(Clone, Copy, Debug)]
pub struct ShortestPaths {
    /// Source vertex.
    pub root: VertexId,
    /// Weight seed (see [`crate::weights::edge_weight`]).
    pub weight_seed: u64,
}

/// SSSP vertex state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsspValue {
    /// Tentative distance from the root (`u64::MAX` = unreached).
    pub dist: u64,
    /// Predecessor on a shortest path.
    pub parent: VertexId,
}

/// Relaxation offer: distance through `parent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsspMessage {
    /// Offered distance.
    pub dist: u64,
    /// The relaxing neighbor.
    pub parent: VertexId,
}

impl VertexProgram for ShortestPaths {
    type Value = SsspValue;
    type Message = SsspMessage;

    fn init(&self, v: VertexId, _degree: u32) -> SsspValue {
        if v == self.root {
            SsspValue { dist: 0, parent: v }
        } else {
            SsspValue {
                dist: u64::MAX,
                parent: INVALID_VERTEX,
            }
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.root
    }

    fn scatter(&self, value: &SsspValue, src: VertexId, dst: VertexId) -> Option<SsspMessage> {
        debug_assert_ne!(value.dist, u64::MAX, "inactive vertex scattered");
        Some(SsspMessage {
            dist: value.dist + edge_weight(src, dst, self.weight_seed),
            parent: src,
        })
    }

    fn combine(&self, a: &mut SsspMessage, b: SsspMessage) {
        // Min by (distance, parent) — total order keeps replicas equal.
        if (b.dist, b.parent) < (a.dist, a.parent) {
            *a = b;
        }
    }

    fn apply(&self, _v: VertexId, value: &mut SsspValue, msg: SsspMessage) -> bool {
        if msg.dist < value.dist {
            value.dist = msg.dist;
            value.parent = msg.parent;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------

/// Min-label propagation: every vertex converges to the smallest vertex
/// id in its component.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type Value = VertexId; // current component label
    type Message = VertexId;

    fn init(&self, v: VertexId, _degree: u32) -> VertexId {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn scatter(&self, value: &VertexId, _src: VertexId, _dst: VertexId) -> Option<VertexId> {
        Some(*value)
    }

    fn combine(&self, a: &mut VertexId, b: VertexId) {
        *a = (*a).min(b);
    }

    fn apply(&self, _v: VertexId, value: &mut VertexId, msg: VertexId) -> bool {
        if msg < *value {
            *value = msg;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------

/// Fixed-iteration PageRank over the undirected graph (each edge acts
/// as two directed links, the usual symmetric-graph convention).
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 classically).
    pub damping: f64,
    /// Number of power iterations.
    pub iterations: u32,
    /// Total vertex count (for the teleport term).
    pub num_vertices: u64,
}

impl PageRank {
    /// The standard configuration.
    pub fn new(num_vertices: u64, iterations: u32) -> Self {
        PageRank {
            damping: 0.85,
            iterations,
            num_vertices,
        }
    }
}

/// PageRank vertex state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankValue {
    /// Current rank.
    pub rank: f64,
    /// Degree (cached for the contribution split).
    pub degree: u32,
}

impl VertexProgram for PageRank {
    type Value = RankValue;
    type Message = f64; // summed neighbor contributions

    fn init(&self, _v: VertexId, degree: u32) -> RankValue {
        RankValue {
            rank: 1.0 / self.num_vertices as f64,
            degree,
        }
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn scatter(&self, value: &RankValue, _src: VertexId, _dst: VertexId) -> Option<f64> {
        if value.degree == 0 {
            None
        } else {
            Some(value.rank / value.degree as f64)
        }
    }

    fn combine(&self, a: &mut f64, b: f64) {
        *a += b;
    }

    fn apply(&self, _v: VertexId, value: &mut RankValue, msg: f64) -> bool {
        value.rank = (1.0 - self.damping) / self.num_vertices as f64 + self.damping * msg;
        true
    }

    fn max_rounds(&self) -> Option<u32> {
        Some(self.iterations)
    }

    fn always_active(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_combine_is_min() {
        let p = Bfs { root: 0 };
        let mut a = 5u64;
        p.combine(&mut a, 3);
        p.combine(&mut a, 9);
        assert_eq!(a, 3);
    }

    #[test]
    fn bfs_apply_first_wins() {
        let p = Bfs { root: 0 };
        let mut v = BfsValue {
            parent: INVALID_VERTEX,
        };
        assert!(p.apply(1, &mut v, 7));
        assert!(!p.apply(1, &mut v, 3));
        assert_eq!(v.parent, 7);
    }

    #[test]
    fn sssp_combine_total_order() {
        let p = ShortestPaths {
            root: 0,
            weight_seed: 1,
        };
        let mut a = SsspMessage {
            dist: 10,
            parent: 5,
        };
        p.combine(
            &mut a,
            SsspMessage {
                dist: 10,
                parent: 3,
            },
        );
        assert_eq!(a.parent, 3, "equal distance ties break by parent");
        p.combine(&mut a, SsspMessage { dist: 2, parent: 9 });
        assert_eq!(a.dist, 2);
    }

    #[test]
    fn sssp_apply_only_improves() {
        let p = ShortestPaths {
            root: 0,
            weight_seed: 1,
        };
        let mut v = SsspValue {
            dist: 100,
            parent: 1,
        };
        assert!(!p.apply(
            2,
            &mut v,
            SsspMessage {
                dist: 100,
                parent: 9
            }
        ));
        assert!(p.apply(
            2,
            &mut v,
            SsspMessage {
                dist: 50,
                parent: 9
            }
        ));
        assert_eq!(v.dist, 50);
    }

    #[test]
    fn cc_converges_to_min() {
        let p = ConnectedComponents;
        let mut label = 17u64;
        assert!(p.apply(17, &mut label, 4));
        assert!(!p.apply(17, &mut label, 8));
        assert_eq!(label, 4);
    }

    #[test]
    fn pagerank_is_always_active_and_bounded() {
        let p = PageRank::new(100, 20);
        assert!(p.always_active());
        assert_eq!(p.max_rounds(), Some(20));
        let v = p.init(3, 5);
        assert!((v.rank - 0.01).abs() < 1e-12);
    }
}
