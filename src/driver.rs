//! End-to-end Graph 500 benchmark driver.
//!
//! Reproduces the paper's measurement procedure (§6.1): generate an
//! R-MAT graph at a given SCALE, build the 1.5D partition on a mesh of
//! simulated ranks, traverse from a set of random roots ("64 random
//! roots" at full scale; fewer at laptop scale), validate every parent
//! tree against the specification, and report TEPS statistics with the
//! harmonic mean the benchmark mandates.

use std::fmt;

use sunbfs_common::{Edge, MachineConfig, TimeAccumulator};
use sunbfs_core::validate::{self, ValidationError};
use sunbfs_core::{run_bfs, BfsOutput, EngineConfig, EngineError, IterationStats};
use sunbfs_net::{Cluster, CommStats, MeshShape};
use sunbfs_part::{build_1p5d, ComponentStats, Thresholds};
use sunbfs_rmat::RmatParams;

/// Everything one benchmark run needs.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Graph 500 SCALE (`2^scale` vertices, `16 · 2^scale` edges).
    pub scale: u32,
    /// Edges per vertex (spec: 16).
    pub edge_factor: u32,
    /// Mesh of simulated ranks (rows map to supernodes).
    pub mesh: MeshShape,
    /// E/H degree thresholds.
    pub thresholds: Thresholds,
    /// Engine technique toggles.
    pub engine: EngineConfig,
    /// Machine constants.
    pub machine: MachineConfig,
    /// Generator seed.
    pub seed: u64,
    /// Number of BFS roots to run.
    pub num_roots: usize,
    /// Validate every traversal against the spec (needs the full edge
    /// list on the driver; keep SCALE modest when enabled).
    pub validate: bool,
}

impl RunConfig {
    /// A sensible laptop-scale configuration.
    pub fn small_test(scale: u32, ranks: usize) -> Self {
        RunConfig {
            scale,
            edge_factor: 16,
            mesh: MeshShape::near_square(ranks),
            thresholds: Thresholds::new(256, 64),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            num_roots: 3,
            validate: true,
        }
    }

    fn rmat(&self) -> RmatParams {
        let mut p = RmatParams::graph500(self.scale, self.seed);
        p.edge_factor = self.edge_factor;
        p
    }
}

/// A traversal or validation failure surfaced by [`run_benchmark`] as a
/// diagnosable error instead of a rank-local abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The BFS engine itself failed (e.g. non-termination on a broken
    /// partition) — replicated across ranks, so the whole SPMD phase
    /// returns it coherently.
    Engine(EngineError),
    /// A parent tree failed Graph 500 validation.
    Validation {
        /// The root whose traversal failed validation.
        root: u64,
        /// The specification rule that was violated.
        error: ValidationError,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Engine(e) => write!(f, "engine failure: {e}"),
            DriverError::Validation { root, error } => {
                write!(f, "Graph 500 validation failed for root {root}: {error:?}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

impl From<EngineError> for DriverError {
    fn from(e: EngineError) -> Self {
        DriverError::Engine(e)
    }
}

/// Results of one root's traversal, aggregated over ranks.
#[derive(Clone, Debug)]
pub struct RootRun {
    /// The root vertex.
    pub root: u64,
    /// Simulated traversal seconds (max over ranks — they finish
    /// together at the final collective).
    pub sim_seconds: f64,
    /// Graph 500 `m` for this root: the spec-conformant
    /// [`validate::component_edges`] count when validation ran,
    /// otherwise the engine's degree-sum estimate.
    pub traversed_edges: u64,
    /// The engine's own degree-sum estimate of `m`. Counts duplicate
    /// generator edges per entry, so on multigraphs it exceeds the
    /// deduplicated spec count in `traversed_edges`.
    pub engine_traversed_edges: u64,
    /// Vertices reached.
    pub visited_vertices: u64,
    /// Giga-TEPS on the simulated machine (from `traversed_edges`).
    pub gteps: f64,
    /// Iteration series (identical replicated counters from rank 0).
    pub iterations: Vec<IterationStats>,
    /// Per-category simulated time summed over ranks (for breakdowns).
    pub times: TimeAccumulator,
    /// Collective call counts and byte volumes summed over ranks.
    pub comm: CommStats,
}

/// A full benchmark report.
#[derive(Clone, Debug)]
pub struct BenchmarkReport {
    /// The configuration that produced it.
    pub config: RunConfig,
    /// Per-rank component sizes (Figure 13's raw data).
    pub partition_stats: Vec<ComponentStats>,
    /// One entry per root.
    pub runs: Vec<RootRun>,
    /// True when validation ran and every root passed.
    pub validated: bool,
}

impl BenchmarkReport {
    /// Arithmetic mean GTEPS over roots.
    pub fn mean_gteps(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.gteps).sum::<f64>() / self.runs.len() as f64
    }

    /// Harmonic mean GTEPS — the Graph 500 headline statistic.
    pub fn harmonic_mean_gteps(&self) -> f64 {
        if self.runs.is_empty() || self.runs.iter().any(|r| r.gteps <= 0.0) {
            return 0.0;
        }
        self.runs.len() as f64 / self.runs.iter().map(|r| 1.0 / r.gteps).sum::<f64>()
    }

    /// Sum the per-category times of all runs into one accumulator.
    pub fn total_times(&self) -> TimeAccumulator {
        let mut acc = TimeAccumulator::new();
        for r in &self.runs {
            acc.merge(&r.times);
        }
        acc
    }
}

/// Choose `k` distinct roots with nonzero degree, deterministically
/// from the generator's first edge chunk.
pub fn pick_roots(params: &RmatParams, k: usize) -> Vec<u64> {
    let probe =
        sunbfs_rmat::generate_range(params, 0, (k as u64 * 64 + 64).min(params.num_edges()));
    let mut roots = Vec::with_capacity(k);
    for e in &probe {
        if e.is_self_loop() {
            continue;
        }
        if !roots.contains(&e.u) {
            roots.push(e.u);
        }
        if roots.len() == k {
            break;
        }
        if !roots.contains(&e.v) {
            roots.push(e.v);
        }
        if roots.len() == k {
            break;
        }
    }
    assert!(!roots.is_empty(), "could not find any connected root");
    roots
}

/// Run the complete benchmark pipeline.
///
/// # Errors
/// Returns [`DriverError::Engine`] when any traversal fails inside the
/// engine, and [`DriverError::Validation`] when `config.validate` is
/// set and a parent tree violates the Graph 500 specification.
pub fn run_benchmark(config: &RunConfig) -> Result<BenchmarkReport, DriverError> {
    let params = config.rmat();
    let n = params.num_vertices();
    let p = config.mesh.num_ranks() as u64;
    let roots = pick_roots(&params, config.num_roots);
    let cluster = Cluster::new(config.mesh, config.machine);

    // SPMD phase: each rank generates its chunk, partitions, traverses.
    // `EngineError` is replicated state, so every rank agrees on
    // success or failure and the collectives stay in lock-step.
    let rank_results: Vec<(ComponentStats, Result<Vec<BfsOutput>, EngineError>)> =
        cluster.run(|ctx| {
            let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, p);
            let part = build_1p5d(ctx, n, &chunk, config.thresholds);
            drop(chunk);
            let outputs: Result<Vec<BfsOutput>, EngineError> = roots
                .iter()
                .map(|&root| run_bfs(ctx, &part, root, &config.engine))
                .collect();
            (part.stats, outputs)
        });

    let partition_stats: Vec<ComponentStats> = rank_results.iter().map(|(s, _)| *s).collect();
    let per_rank: Vec<Vec<BfsOutput>> = rank_results
        .into_iter()
        .map(|(_, r)| r.map_err(DriverError::Engine))
        .collect::<Result<_, _>>()?;

    // Per-root aggregation (and optional validation).
    let full_edges: Option<Vec<Edge>> = config
        .validate
        .then(|| sunbfs_rmat::generate_edges(&params));
    let mut runs = Vec::with_capacity(roots.len());
    let validated = full_edges.is_some();
    for (ri, &root) in roots.iter().enumerate() {
        let mut times = TimeAccumulator::new();
        let mut comm = CommStats::new();
        let mut sim_seconds = 0.0f64;
        for outputs in &per_rank {
            times.merge(&outputs[ri].stats.times);
            comm.merge(&outputs[ri].stats.comm);
            sim_seconds = sim_seconds.max(outputs[ri].stats.sim_seconds);
        }
        let stats0 = &per_rank[0][ri].stats;
        let engine_traversed_edges = stats0.traversed_edges;
        // Spec-conformant TEPS `m`: duplicate generator edges count
        // once. Only computable with the full edge list on the driver,
        // so fall back to the engine's estimate when not validating.
        let mut traversed_edges = engine_traversed_edges;
        if let Some(edges) = &full_edges {
            let parents: Vec<u64> = per_rank
                .iter()
                .flat_map(|outputs| outputs[ri].parents.iter().copied())
                .collect();
            validate::validate_parents(n, edges, root, &parents)
                .map_err(|error| DriverError::Validation { root, error })?;
            traversed_edges = validate::component_edges(edges, &parents);
        }
        runs.push(RootRun {
            root,
            sim_seconds,
            traversed_edges,
            engine_traversed_edges,
            visited_vertices: stats0.visited_vertices,
            gteps: if sim_seconds > 0.0 {
                traversed_edges as f64 / sim_seconds / 1e9
            } else {
                0.0
            },
            iterations: stats0.iterations.clone(),
            times,
            comm,
        });
    }
    Ok(BenchmarkReport {
        config: *config,
        partition_stats,
        runs,
        validated,
    })
}

/// Re-exported so callers can name validation errors without another
/// import path.
pub type DriverValidationError = ValidationError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_benchmark_runs_and_validates() {
        let report = run_benchmark(&RunConfig::small_test(9, 4)).expect("benchmark must pass");
        assert!(report.validated);
        assert_eq!(report.runs.len(), 3);
        assert!(report.mean_gteps() > 0.0);
        assert!(report.harmonic_mean_gteps() <= report.mean_gteps() + 1e-12);
        assert_eq!(report.partition_stats.len(), 4);
    }

    #[test]
    fn validated_teps_is_spec_conformant_at_scale_9() {
        // Acceptance criterion: on every validated root the driver's
        // TEPS `m` equals `validate::component_edges`, and the engine's
        // multigraph degree-sum estimate is never below it.
        let config = RunConfig::small_test(9, 4);
        let report = run_benchmark(&config).expect("benchmark must pass");
        let params = RmatParams::graph500(config.scale, config.seed);
        let edges = sunbfs_rmat::generate_edges(&params);
        for run in &report.runs {
            let (parents, _) = validate::reference_bfs(params.num_vertices(), &edges, run.root);
            let spec_m = validate::component_edges(&edges, &parents);
            assert_eq!(run.traversed_edges, spec_m, "root {}", run.root);
            assert!(
                run.engine_traversed_edges >= spec_m,
                "engine estimate {} below spec count {spec_m} for root {}",
                run.engine_traversed_edges,
                run.root
            );
            assert!(run.gteps > 0.0);
        }
    }

    #[test]
    fn roots_are_distinct_and_connected() {
        let params = RmatParams::graph500(10, 7);
        let roots = pick_roots(&params, 8);
        assert_eq!(roots.len(), 8);
        let mut dedup = roots.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "roots must be distinct");
        let deg =
            sunbfs_rmat::degrees(params.num_vertices(), &sunbfs_rmat::generate_edges(&params));
        for r in roots {
            assert!(deg[r as usize] > 0, "root {r} is isolated");
        }
    }

    #[test]
    fn degenerate_partitions_also_validate() {
        let mut cfg = RunConfig::small_test(9, 4);
        cfg.thresholds = Thresholds::none();
        assert!(run_benchmark(&cfg).expect("none-thresholds run").validated);
        cfg.thresholds = Thresholds::all_hubs(1 << 20);
        cfg.num_roots = 1;
        assert!(run_benchmark(&cfg).expect("all-hubs run").validated);
    }

    #[test]
    fn driver_error_displays() {
        let e = DriverError::Validation {
            root: 7,
            error: ValidationError::BadRoot,
        };
        assert!(e.to_string().contains("root 7"));
    }
}
