//! Closed-duration open-loop load generator for the TCP server.
//!
//! Opens N connections and offers a configured total queries/sec for a
//! configured duration, then settles (waits for every outstanding
//! reply), optionally triggers a graceful server shutdown, and folds
//! what it saw into a [`LoadgenReport`] — accepted/rejected counts,
//! rejection classes, backoff-hint coverage, and p50/p99/p999
//! end-to-end latency. The report renders as the `serve_load` section
//! of the schema-v7 metrics JSON (`docs/METRICS.md`), which is what
//! the committed saturation artifact and the CI sustained-load smoke
//! regression-gate.
//!
//! Accounting invariants the overload tests pin:
//!
//! * every offered query is acknowledged exactly once (`unacked == 0`),
//! * every accepted query gets exactly one result
//!   (`lost_replies == 0`, `duplicate_replies == 0`),
//! * a reply line is never malformed (`protocol_errors == 0`).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sunbfs_common::{JsonValue, SplitMix64, ToJson};

/// Knobs for one load run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:4700`.
    pub addr: String,
    /// Connections to open; offered load is split evenly across them.
    pub connections: usize,
    /// Total offered queries/sec across all connections.
    pub qps: u64,
    /// How long to offer load.
    pub duration: Duration,
    /// Roots are drawn uniformly from `[0, root_max)`.
    pub root_max: u64,
    /// Deterministic root sequence seed.
    pub seed: u64,
    /// Send `{"cmd":"shutdown"}` after settling, exercising the
    /// server's graceful drain.
    pub shutdown_at_end: bool,
    /// How long to wait for outstanding replies after the offered-load
    /// window closes.
    pub settle_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:4700".into(),
            connections: 4,
            qps: 200,
            duration: Duration::from_secs(3),
            root_max: 1 << 10,
            seed: 42,
            shutdown_at_end: true,
            settle_timeout: Duration::from_secs(30),
        }
    }
}

/// End-to-end latency distribution (accepted → result), milliseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    /// Samples (== queries that went accepted → result).
    pub count: u64,
    /// Fastest sample.
    pub min_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let n = samples.len();
        let pct = |q: f64| {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        LatencySummary {
            count: n as u64,
            min_ms: samples[0],
            mean_ms: samples.iter().sum::<f64>() / n as f64,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            p999_ms: pct(0.999),
            max_ms: samples[n - 1],
        }
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("count", self.count)
            .field("min_ms", self.min_ms)
            .field("mean_ms", self.mean_ms)
            .field("p50_ms", self.p50_ms)
            .field("p99_ms", self.p99_ms)
            .field("p999_ms", self.p999_ms)
            .field("max_ms", self.max_ms)
            .build()
    }
}

/// What one load run saw, end to end. Renders as the `serve_load`
/// JSON section.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Connections opened.
    pub connections: u64,
    /// Configured total offered queries/sec.
    pub target_qps: u64,
    /// Configured offered-load window, seconds.
    pub duration_s: f64,
    /// Observed wall time of the whole run (offer + settle), seconds.
    pub elapsed_s: f64,
    /// Query lines actually written.
    pub offered: u64,
    /// `offered / duration_s`.
    pub offered_qps: f64,
    /// Queries the server admitted.
    pub accepted: u64,
    /// `accepted / duration_s`.
    pub accepted_qps: f64,
    /// Rejections with reason `queue_full`.
    pub rejected_full: u64,
    /// Rejections with reason `client_backlog`.
    pub rejected_backlog: u64,
    /// Rejections with reason `shutting_down`.
    pub rejected_shutdown: u64,
    /// Rejections with any other reason (e.g. `invalid_root`).
    pub rejected_other: u64,
    /// Rejections that carried a non-null `retry_after_ticks` hint.
    pub rejects_with_hint: u64,
    /// Results with status `served`.
    pub served: u64,
    /// Results with status `quarantined`.
    pub quarantined: u64,
    /// Accepted queries that never got a result — must be 0.
    pub lost_replies: u64,
    /// Offered queries never acknowledged at all — must be 0.
    pub unacked: u64,
    /// Results for ids not awaiting one — must be 0.
    pub duplicate_replies: u64,
    /// Error replies or unparseable reply lines — must be 0.
    pub protocol_errors: u64,
    /// Query lines that failed to write.
    pub write_errors: u64,
    /// End-to-end accepted→result latency distribution.
    pub latency: LatencySummary,
}

impl ToJson for LoadgenReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("connections", self.connections)
            .field("target_qps", self.target_qps)
            .field("duration_s", self.duration_s)
            .field("elapsed_s", self.elapsed_s)
            .field("offered", self.offered)
            .field("offered_qps", self.offered_qps)
            .field("accepted", self.accepted)
            .field("accepted_qps", self.accepted_qps)
            .field("rejected_full", self.rejected_full)
            .field("rejected_backlog", self.rejected_backlog)
            .field("rejected_shutdown", self.rejected_shutdown)
            .field("rejected_other", self.rejected_other)
            .field("rejects_with_hint", self.rejects_with_hint)
            .field("served", self.served)
            .field("quarantined", self.quarantined)
            .field("lost_replies", self.lost_replies)
            .field("unacked", self.unacked)
            .field("duplicate_replies", self.duplicate_replies)
            .field("protocol_errors", self.protocol_errors)
            .field("write_errors", self.write_errors)
            .field("latency", self.latency.to_json())
            .build()
    }
}

impl LoadgenReport {
    /// True when every accounting invariant held: nothing lost,
    /// nothing duplicated, nothing malformed, nothing unacknowledged.
    pub fn clean(&self) -> bool {
        self.lost_replies == 0
            && self.duplicate_replies == 0
            && self.protocol_errors == 0
            && self.unacked == 0
            && self.write_errors == 0
    }
}

/// Send times and in-flight ids shared between one connection's sender
/// and receiver. Replies to one connection arrive in submission order
/// for the accepted/rejected acknowledgment (the service thread is a
/// single serialized stream), so a FIFO of send timestamps matches
/// acks to offers; results carry ids and match through the map.
#[derive(Default)]
struct ConnShared {
    /// Send instants of offered queries awaiting accepted/rejected.
    awaiting_ack: Mutex<std::collections::VecDeque<Instant>>,
    /// Accepted id → send instant, awaiting its result.
    awaiting_result: Mutex<HashMap<u64, Instant>>,
}

/// Per-connection receiver tallies, merged into the report at the end.
#[derive(Default)]
struct ConnStats {
    accepted: u64,
    rejected_full: u64,
    rejected_backlog: u64,
    rejected_shutdown: u64,
    rejected_other: u64,
    rejects_with_hint: u64,
    served: u64,
    quarantined: u64,
    duplicate_replies: u64,
    protocol_errors: u64,
    latency_ms: Vec<f64>,
}

fn sender_loop(
    mut stream: TcpStream,
    shared: &ConnShared,
    mut rng: SplitMix64,
    per_conn_interval: Duration,
    duration: Duration,
    root_max: u64,
) -> (u64, u64) {
    let start = Instant::now();
    let mut offered = 0u64;
    let mut write_errors = 0u64;
    while start.elapsed() < duration {
        let root = rng.next_below(root_max.max(1));
        let line = format!("{{\"cmd\":\"query\",\"root\":{root}}}\n");
        // Record the offer before writing so the receiver can never see
        // the ack while the FIFO is still empty.
        shared
            .awaiting_ack
            .lock()
            .unwrap()
            .push_back(Instant::now());
        if stream.write_all(line.as_bytes()).is_err() {
            shared.awaiting_ack.lock().unwrap().pop_back();
            write_errors += 1;
            break;
        }
        offered += 1;
        let target = start + per_conn_interval.mul_f64(offered as f64);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
    }
    // Flush whatever partial batch our last queries are sitting in.
    let _ = stream.write_all(b"{\"cmd\":\"drain\"}\n");
    (offered, write_errors)
}

fn receiver_loop(stream: TcpStream, shared: &ConnShared) -> ConnStats {
    let mut stats = ConnStats::default();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Ok(reply) = JsonValue::parse(trimmed) else {
            stats.protocol_errors += 1;
            continue;
        };
        match reply.get("reply").and_then(JsonValue::as_str) {
            Some("accepted") => {
                let t0 = shared.awaiting_ack.lock().unwrap().pop_front();
                let Some(id) = reply.get("id").and_then(JsonValue::as_u64) else {
                    stats.protocol_errors += 1;
                    continue;
                };
                match t0 {
                    Some(t0) => {
                        shared.awaiting_result.lock().unwrap().insert(id, t0);
                        stats.accepted += 1;
                    }
                    None => stats.protocol_errors += 1,
                }
            }
            Some("rejected") => {
                if shared.awaiting_ack.lock().unwrap().pop_front().is_none() {
                    stats.protocol_errors += 1;
                    continue;
                }
                match reply.get("reason").and_then(JsonValue::as_str) {
                    Some("queue_full") => stats.rejected_full += 1,
                    Some("client_backlog") => stats.rejected_backlog += 1,
                    Some("shutting_down") => stats.rejected_shutdown += 1,
                    _ => stats.rejected_other += 1,
                }
                if reply
                    .get("retry_after_ticks")
                    .and_then(JsonValue::as_u64)
                    .is_some()
                {
                    stats.rejects_with_hint += 1;
                }
            }
            Some("result") => {
                let Some(id) = reply.get("id").and_then(JsonValue::as_u64) else {
                    stats.protocol_errors += 1;
                    continue;
                };
                match shared.awaiting_result.lock().unwrap().remove(&id) {
                    Some(t0) => {
                        stats.latency_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        match reply.get("status").and_then(JsonValue::as_str) {
                            Some("served") => stats.served += 1,
                            _ => stats.quarantined += 1,
                        }
                    }
                    None => stats.duplicate_replies += 1,
                }
            }
            // Lifecycle acknowledgments, not per-query accounting.
            Some("drained" | "shutting_down" | "shutdown" | "stats") => {}
            Some("error") | Some(_) | None => stats.protocol_errors += 1,
        }
    }
    stats
}

/// Drive one configured load run against a listening server.
///
/// # Errors
/// Connection setup errors; a run that connects always returns a
/// report (individual socket failures surface as its counters).
pub fn run_loadgen(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let started = Instant::now();
    let connections = cfg.connections.max(1);
    let per_conn_interval = Duration::from_secs_f64(connections as f64 / cfg.qps.max(1) as f64);

    let mut streams = Vec::with_capacity(connections);
    let mut shareds = Vec::with_capacity(connections);
    for _ in 0..connections {
        streams.push(TcpStream::connect(&cfg.addr)?);
        shareds.push(Arc::new(ConnShared::default()));
    }

    let mut receivers = Vec::with_capacity(connections);
    let mut senders = Vec::with_capacity(connections);
    for (i, stream) in streams.iter().enumerate() {
        let shared = Arc::clone(&shareds[i]);
        let read_half = stream.try_clone()?;
        receivers.push(std::thread::spawn(move || {
            receiver_loop(read_half, &shared)
        }));
        let shared = Arc::clone(&shareds[i]);
        let write_half = stream.try_clone()?;
        let rng = SplitMix64::new(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (duration, root_max) = (cfg.duration, cfg.root_max);
        senders.push(std::thread::spawn(move || {
            sender_loop(
                write_half,
                &shared,
                rng,
                per_conn_interval,
                duration,
                root_max,
            )
        }));
    }

    let mut offered = 0u64;
    let mut write_errors = 0u64;
    for s in senders {
        let (o, w) = s.join().expect("sender thread panicked");
        offered += o;
        write_errors += w;
    }

    // Settle: wait until every offer is acknowledged and every accepted
    // query has its result, or give up at the settle deadline.
    let settle_deadline = Instant::now() + cfg.settle_timeout;
    loop {
        let outstanding: usize = shareds
            .iter()
            .map(|s| s.awaiting_ack.lock().unwrap().len() + s.awaiting_result.lock().unwrap().len())
            .sum();
        if outstanding == 0 || Instant::now() >= settle_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    if cfg.shutdown_at_end {
        // Exercise the graceful drain; the server answers with a final
        // shutdown line and closes every connection (receiver EOF).
        let _ = (&streams[0]).write_all(b"{\"cmd\":\"shutdown\"}\n");
    } else {
        for s in &streams {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    let mut report = LoadgenReport {
        connections: connections as u64,
        target_qps: cfg.qps,
        duration_s: cfg.duration.as_secs_f64(),
        offered,
        write_errors,
        ..LoadgenReport::default()
    };
    let mut samples = Vec::new();
    for r in receivers {
        let s = r.join().expect("receiver thread panicked");
        report.accepted += s.accepted;
        report.rejected_full += s.rejected_full;
        report.rejected_backlog += s.rejected_backlog;
        report.rejected_shutdown += s.rejected_shutdown;
        report.rejected_other += s.rejected_other;
        report.rejects_with_hint += s.rejects_with_hint;
        report.served += s.served;
        report.quarantined += s.quarantined;
        report.duplicate_replies += s.duplicate_replies;
        report.protocol_errors += s.protocol_errors;
        samples.extend(s.latency_ms);
    }
    for s in &shareds {
        report.unacked += s.awaiting_ack.lock().unwrap().len() as u64;
        report.lost_replies += s.awaiting_result.lock().unwrap().len() as u64;
    }
    report.latency = LatencySummary::from_samples(samples);
    report.elapsed_s = started.elapsed().as_secs_f64();
    let window = report.duration_s.max(1e-9);
    report.offered_qps = report.offered as f64 / window;
    report.accepted_qps = report.accepted as f64 / window;
    Ok(report)
}
