//! Seeded, fire-once update schedules (`SUNBFS_UPDATE_PLAN`).
//!
//! Mirrors the `FaultPlan` machinery in `sunbfs-net`: a plan parsed
//! once from a compact grammar, with each event consumed exactly once
//! via an atomic compare-exchange, so a schedule threaded through a
//! soak or a test commits the same insert batches at the same points in
//! the query stream on every run.
//!
//! Grammar — `;`-separated events:
//!
//! ```text
//! seed@<u64>                     RNG seed for generated batches (default 42)
//! insert@<after_queries>:<edges> commit <edges> seeded inserts once
//!                                <after_queries> queries have been served
//! ```
//!
//! Example: `SUNBFS_UPDATE_PLAN="seed@7;insert@8:16;insert@32:64"`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sunbfs_common::{Edge, SplitMix64};

/// One scheduled insert batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateEvent {
    /// Fires once at least this many queries have been served.
    pub after_queries: u64,
    /// Edges in the generated batch.
    pub edges: u64,
}

/// A parsed, fire-once update schedule.
///
/// Cloning shares the fire state (like `FaultPlan`): an event fired
/// through any clone stays fired everywhere.
#[derive(Clone, Debug, Default)]
pub struct UpdatePlan {
    seed: u64,
    events: Vec<UpdateEvent>,
    fired: Arc<Vec<AtomicBool>>,
}

impl UpdatePlan {
    /// The empty schedule.
    pub fn none() -> Self {
        UpdatePlan::default()
    }

    /// Build a schedule from explicit events.
    pub fn from_events(seed: u64, events: Vec<UpdateEvent>) -> Self {
        let fired = Arc::new(events.iter().map(|_| AtomicBool::new(false)).collect());
        UpdatePlan {
            seed,
            events,
            fired,
        }
    }

    /// Parse the `SUNBFS_UPDATE_PLAN` grammar.
    ///
    /// # Errors
    /// A human-readable description of the first malformed event.
    pub fn parse(s: &str) -> Result<UpdatePlan, String> {
        let mut seed = 42u64;
        let mut events = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (verb, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("update event '{part}' is missing '@'"))?;
            let fields: Vec<&str> = rest.split(':').collect();
            match verb.trim() {
                "seed" => {
                    if fields.len() != 1 {
                        return Err(format!("update event '{part}' needs one field"));
                    }
                    seed = fields[0]
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("update event '{part}' has a bad seed"))?;
                }
                "insert" => {
                    if fields.len() != 2 {
                        return Err(format!(
                            "update event '{part}' needs 2 ':'-separated fields, got {}",
                            fields.len()
                        ));
                    }
                    let after_queries = fields[0]
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("update event '{part}' has a bad query count"))?;
                    let edges = fields[1]
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("update event '{part}' has a bad edge count"))?;
                    if edges == 0 {
                        return Err(format!("update event '{part}' inserts zero edges"));
                    }
                    events.push(UpdateEvent {
                        after_queries,
                        edges,
                    });
                }
                other => return Err(format!("unknown update verb '{other}' in '{part}'")),
            }
        }
        Ok(UpdatePlan::from_events(seed, events))
    }

    /// Read `SUNBFS_UPDATE_PLAN` from the environment.
    ///
    /// # Errors
    /// The variable is set but does not parse.
    pub fn from_env() -> Result<Option<UpdatePlan>, String> {
        match std::env::var("SUNBFS_UPDATE_PLAN") {
            Ok(s) => UpdatePlan::parse(&s).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// The scheduled events, in declaration order.
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet fired.
    pub fn pending(&self) -> usize {
        self.fired
            .iter()
            .filter(|f| !f.load(Ordering::Acquire))
            .count()
    }

    /// Fire the first due, unfired event: once at least `queries_done`
    /// queries have been served, generate its seeded insert batch with
    /// endpoints drawn uniformly below `root_max`. Each event fires
    /// exactly once across all clones; the generated batch depends only
    /// on the plan seed and the event's position, never on timing.
    pub fn fire(&self, queries_done: u64, root_max: u64) -> Option<Vec<Edge>> {
        for (i, e) in self.events.iter().enumerate() {
            if e.after_queries > queries_done {
                continue;
            }
            if self.fired[i]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(generate_batch(self.seed, i as u64, e.edges, root_max));
            }
        }
        None
    }
}

/// The deterministic insert batch for event `index` of a plan with
/// `seed`: `edges` pairs drawn uniformly below `root_max` (self loops
/// redrawn once, then kept — the routing pass skips them anyway).
pub fn generate_batch(seed: u64, index: u64, edges: u64, root_max: u64) -> Vec<Edge> {
    let mut rng = SplitMix64::new(seed ^ (index + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let max = root_max.max(2);
    (0..edges)
        .map(|_| {
            let u = rng.next_below(max);
            let mut v = rng.next_below(max);
            if v == u {
                v = rng.next_below(max);
            }
            Edge::new(u, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_and_rejects_malformed_events() {
        let plan = UpdatePlan::parse("seed@7; insert@8:16; insert@32:64").expect("parses");
        assert_eq!(
            plan.events(),
            &[
                UpdateEvent {
                    after_queries: 8,
                    edges: 16
                },
                UpdateEvent {
                    after_queries: 32,
                    edges: 64
                },
            ]
        );
        assert_eq!(plan.pending(), 2);
        for bad in [
            "insert@8",
            "insert@8:0",
            "insert@x:4",
            "seed@8:1",
            "grow@1:2",
            "insert",
        ] {
            assert!(UpdatePlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
        assert!(UpdatePlan::parse("").expect("empty parses").is_empty());
    }

    #[test]
    fn events_fire_exactly_once_and_in_order_of_readiness() {
        let plan = UpdatePlan::parse("insert@4:8;insert@10:2").expect("parses");
        assert!(plan.fire(3, 100).is_none());
        let first = plan.fire(4, 100).expect("first event due");
        assert_eq!(first.len(), 8);
        assert!(plan.fire(4, 100).is_none(), "first event already consumed");
        let second = plan.fire(10, 100).expect("second event due");
        assert_eq!(second.len(), 2);
        assert!(plan.fire(u64::MAX, 100).is_none());
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn generated_batches_are_deterministic_and_bounded() {
        let a = generate_batch(7, 0, 32, 1 << 10);
        let b = generate_batch(7, 0, 32, 1 << 10);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e.u < (1 << 10) && e.v < (1 << 10)));
        let c = generate_batch(7, 1, 32, 1 << 10);
        assert_ne!(a, c, "events draw from distinct streams");
    }

    #[test]
    fn clones_share_fire_state() {
        let plan = UpdatePlan::parse("insert@0:4").expect("parses");
        let clone = plan.clone();
        assert!(clone.fire(0, 16).is_some());
        assert!(plan.fire(0, 16).is_none(), "fired through the clone");
    }
}
