//! Chaos-serving tests: the live-fault soak end to end at a small
//! scale, the `health` request over TCP, deadline budgets over TCP,
//! and the satellite claim that honoring `retry_after_ticks` hints
//! reduces the terminal rejection rate under overload.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use sunbfs_common::JsonValue;
use sunbfs_net::FaultPlan;
use sunbfs_serve::{
    run_chaos_soak, run_loadgen, BfsService, ChaosConfig, ChaosSoakConfig, GraphSession,
    LoadgenConfig, NetConfig, ServeConfig, SessionConfig, TcpServer,
};

fn start(scale: u32, ranks: usize, serve_cfg: ServeConfig, net_cfg: NetConfig) -> TcpServer {
    let session =
        GraphSession::load(SessionConfig::small(scale, ranks), FaultPlan::none()).expect("load");
    let svc = BfsService::new(session, serve_cfg);
    sunbfs_serve::serve(svc, "127.0.0.1:0", net_cfg).expect("bind")
}

/// A blocking NDJSON test client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &TcpServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read");
            assert!(n > 0, "unexpected EOF from server");
            if line.trim().is_empty() {
                continue;
            }
            return JsonValue::parse(line.trim()).expect("well-formed reply line");
        }
    }
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("<none>")
}

#[test]
fn health_request_over_tcp_reports_the_state_machine() {
    let server = start(8, 4, ServeConfig::default(), NetConfig::default());
    let mut c = Client::connect(&server);

    c.send(r#"{"cmd":"health"}"#);
    let h = c.recv();
    assert_eq!(str_field(&h, "reply"), "health");
    assert_eq!(str_field(&h, "state"), "healthy");
    for key in [
        "ticks",
        "queue_depth",
        "served",
        "quarantined",
        "deadline_exceeded",
        "rejected_degraded",
    ] {
        assert!(
            h.get(key).and_then(JsonValue::as_u64).is_some(),
            "health reply must carry numeric {key}"
        );
    }
    assert!(
        matches!(h.get("transitions"), Some(JsonValue::Array(_))),
        "health reply must carry the transition log"
    );

    // Health is read-only: the service still serves afterwards.
    c.send(r#"{"cmd":"query","root":1}"#);
    let acc = c.recv();
    assert_eq!(str_field(&acc, "reply"), "accepted");
    let res = c.recv();
    assert_eq!(str_field(&res, "reply"), "result");
    assert_eq!(str_field(&res, "status"), "served");

    server.shutdown();
    server.join().expect_clean();
}

#[test]
fn a_deadline_budget_expires_into_a_typed_eviction_over_tcp() {
    // No flush pressure: huge batch, long flush deadline — the only way
    // out for the query is its own deadline budget.
    let server = start(
        8,
        4,
        ServeConfig {
            batch_max: 64,
            flush_deadline: 10_000,
            ..ServeConfig::default()
        },
        NetConfig {
            tick_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    );
    let mut c = Client::connect(&server);
    c.send(r#"{"cmd":"query","root":3,"deadline_ticks":2}"#);
    let acc = c.recv();
    assert_eq!(str_field(&acc, "reply"), "accepted");

    let res = c.recv();
    assert_eq!(str_field(&res, "reply"), "result");
    assert_eq!(str_field(&res, "status"), "deadline_exceeded");
    assert_eq!(
        res.get("deadline_ticks").and_then(JsonValue::as_u64),
        Some(2)
    );
    assert!(
        res.get("waited_ticks")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            >= 2,
        "the eviction must report at least the budget's wait"
    );
    assert!(
        matches!(res.get("batch_id"), Some(JsonValue::Null)),
        "an evicted query never joined a batch"
    );

    server.shutdown();
    let outcome = server.join();
    let summary = outcome.expect_clean().1;
    assert_eq!(summary.results_deadline_exceeded, 1);
    assert_eq!(summary.results_served, 0);
    assert_eq!(summary.final_health, "healthy");
}

/// The tentpole soak, miniaturized: live chaos against the serving
/// path, health observed over a side connection, recovery driven to
/// `healthy`, and exactly-once accounting for every accepted query.
#[test]
fn chaos_soak_survives_faults_and_recovers_to_healthy() {
    let cfg = ChaosSoakConfig {
        session: SessionConfig::small(8, 4),
        serve: ServeConfig::default(),
        net: NetConfig {
            tick_interval: Duration::from_millis(2),
            ..NetConfig::default()
        },
        chaos: ChaosConfig {
            seed: 7,
            every_queries: 24,
            horizon: 48,
            straggler_secs: 0.01,
            max_events: 3,
        },
        load: LoadgenConfig {
            connections: 2,
            qps: 150,
            duration: Duration::from_secs(2),
            root_max: 1 << 8,
            deadline_ticks: Some(200),
            retry_max: 2,
            tick_hint: Duration::from_millis(2),
            retry_grace: Duration::from_secs(1),
            ..LoadgenConfig::default()
        },
        availability_gate: 0.90,
        recovery_gate_ticks: 5_000,
        health_poll: Duration::from_millis(25),
        recovery_timeout: Duration::from_secs(20),
    };
    let report = run_chaos_soak(&cfg).expect("soak runs");

    // The server never crashed or wedged.
    assert!(!report.server_panicked, "panic: {:?}", report.join_error);
    assert_eq!(report.load.protocol_errors, 0);

    // Exactly-once: every accepted query got exactly one typed reply.
    assert_eq!(report.load.lost_replies, 0);
    assert_eq!(report.load.duplicate_replies, 0);
    assert_eq!(report.load.unacked, 0);
    assert_eq!(
        report.load.accepted,
        report.load.served + report.load.quarantined + report.load.deadline_exceeded,
        "accepted queries must partition exactly into the completion classes"
    );

    // Chaos actually fired, and the service healed from it.
    assert!(
        report.serve.chaos_injected > 0,
        "the soak must inject at least one live fault"
    );
    assert!(report.recovered, "service must end the run healthy");
    assert_eq!(report.final_health, "healthy");
    assert!(
        report.availability >= cfg.availability_gate,
        "availability {} under gate {}",
        report.availability,
        cfg.availability_gate
    );
    assert!(report.passed(), "the composite verdict must hold");

    // The side poller saw the machine leave healthy and come back.
    assert!(
        report.observed_states.first().map(String::as_str) == Some("healthy"),
        "poll sequence must start healthy, got {:?}",
        report.observed_states
    );
    assert!(
        report.observed_states.last().map(String::as_str) == Some("healthy"),
        "poll sequence must end healthy, got {:?}",
        report.observed_states
    );
    // The full required path is in the service's own transition log.
    let hops: Vec<(&str, &str)> = report
        .serve
        .health_transitions
        .iter()
        .map(|t| (t.from, t.to))
        .collect();
    assert!(
        hops.contains(&("healthy", "degraded")),
        "no degradation recorded: {hops:?}"
    );
    assert!(
        hops.iter()
            .any(|&(from, to)| to == "recovering" || from == "recovering"),
        "no recovery hop recorded: {hops:?}"
    );
    assert!(
        hops.last() == Some(&("recovering", "healthy")),
        "the log must close back at healthy: {hops:?}"
    );
    assert!(report.recovery_episodes > 0);
    assert!(report.max_recovery_ticks <= cfg.recovery_gate_ticks);
}

/// Satellite 3's claim, measured: with the same offered load against
/// the same overloaded server shape, clients that honor
/// `retry_after_ticks` end the run with a lower terminal rejection
/// rate than clients that treat every rejection as final.
#[test]
fn honoring_retry_hints_reduces_the_terminal_rejection_rate() {
    let overloaded = || {
        start(
            8,
            4,
            // A slow flush cycle (40 ticks × 5 ms) with a 4-slot queue:
            // offered load far outruns admission, so most offers bounce
            // off a full queue with a retry hint pointing at the next
            // flush.
            ServeConfig {
                queue_capacity: 4,
                batch_max: 64,
                flush_deadline: 40,
                ..ServeConfig::default()
            },
            NetConfig {
                tick_interval: Duration::from_millis(5),
                ..NetConfig::default()
            },
        )
    };
    let load = |addr: String, retry_max: u32| LoadgenConfig {
        addr,
        connections: 2,
        qps: 400,
        duration: Duration::from_millis(1500),
        root_max: 1 << 8,
        retry_max,
        tick_hint: Duration::from_millis(5),
        retry_grace: Duration::from_secs(2),
        shutdown_at_end: false,
        ..LoadgenConfig::default()
    };

    let server = overloaded();
    let naive = run_loadgen(&load(server.local_addr().to_string(), 0)).expect("naive run");
    server.shutdown();
    server.join().expect_clean();

    let server = overloaded();
    let polite = run_loadgen(&load(server.local_addr().to_string(), 3)).expect("polite run");
    server.shutdown();
    server.join().expect_clean();

    // Both runs oversubscribed the queue and saw hinted rejections.
    assert!(naive.rejected_full > 0, "naive run must hit backpressure");
    assert!(naive.rejects_with_hint > 0);
    assert!(
        polite.rejections_seen > 0,
        "polite run must hit backpressure"
    );
    assert!(polite.retried > 0, "hints must actually be honored");
    assert!(
        polite.retry_successes > 0,
        "some retried offers must land once the queue drains"
    );

    let naive_rate = naive.terminal_rejection_rate();
    let polite_rate = polite.terminal_rejection_rate();
    assert!(
        polite_rate < naive_rate,
        "honoring hints must reduce terminal rejections: polite {polite_rate:.4} vs naive {naive_rate:.4}"
    );
    // And both runs keep the exactly-once accounting clean.
    assert!(naive.clean(), "naive accounting");
    assert!(polite.clean(), "polite accounting");
}
