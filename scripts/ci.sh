#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

# Worker-pool determinism: SUNBFS_WORKERS must never change an output
# byte (parents and depths identical to the serial path at every worker
# count) — the contract that makes the parallel kernels trustworthy.
echo "==> worker-pool equivalence sweep (hard timeout)"
timeout 600 cargo test -q --release --test parallel_equivalence

# The fault suites prove every injected failure terminates in a typed
# outcome instead of a hung barrier — so they run under a hard wall
# timeout: a hang is a regression, not a slow test.
echo "==> fault containment suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-net --test fault_matrix
timeout 300 cargo test -q --test fault_e2e --test fault_env

# Self-healing: exchange-layer retransmission heals corruption below
# the retry loop, and checkpoint/resume salvages completed iterations.
# Same hard-timeout rule — the heal protocol's barriers must never hang.
echo "==> recovery suite (hard timeout)"
timeout 600 cargo test -q --test checkpoint_resume --test recovery_env

# Smoke: an injected bitflip on a live runner invocation must be healed
# at the exchange layer and surface as a retransmit in the JSON report.
echo "==> fault-plan smoke (graph500_runner --json)"
SMOKE_JSON="$(mktemp)"
SUNBFS_FAULT_PLAN="corrupt@1:3:bitflip" timeout 300 \
    cargo run -q --release --example graph500_runner -- 9 4 256 64 1 --json "$SMOKE_JSON" \
    > /dev/null
grep -Eq '"retransmits": *[1-9]' "$SMOKE_JSON"
grep -Eq '"schema_version": *5' "$SMOKE_JSON"
rm -f "$SMOKE_JSON"

# Serve suite: admission control, batch formation, fault containment,
# batch-vs-sequential equivalence, and the >=2x roots/sec acceptance
# bar. Hard timeout for the same reason as the fault suites — a stuck
# queue or hung batch is a regression.
echo "==> serve suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-serve
timeout 600 cargo test -q --test serve_equivalence --test serve_perf

# Smoke: the bfs_server stdin protocol answers with well-formed JSON —
# a load acknowledgment, per-query results, and a stats reply carrying
# the serve section.
echo "==> bfs_server stdin smoke"
SERVE_OUT="$(mktemp)"
printf '%s\n' \
    '{"cmd":"load","scale":9,"ranks":4}' \
    '{"cmd":"batch","roots":[1,2,3]}' \
    '{"cmd":"stats"}' \
    | timeout 300 cargo run -q --release --example bfs_server > "$SERVE_OUT"
grep -Eq '"reply":"loaded"' "$SERVE_OUT"
grep -Eq '"reply":"result".*"status":"served"' "$SERVE_OUT"
grep -Eq '"reply":"stats".*"batch_roots_per_sec"' "$SERVE_OUT"
rm -f "$SERVE_OUT"

# Perf trajectory: regenerate the committed BENCH_<scale>_<rows>x<cols>
# artifact and smoke-check the schema-v5 wall-clock section plus the
# parallel-vs-serial throughput bound (strict only on >= 4 cores; see
# the script header and docs/PERF.md).
echo "==> bench trajectory (hard timeout inside)"
./scripts/bench_trajectory.sh

echo "CI green."
