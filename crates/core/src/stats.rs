//! Per-run statistics: everything the evaluation figures read.

use sunbfs_common::TimeAccumulator;

use crate::config::Direction;

/// Counters of one BFS iteration (one frontier expansion).
#[derive(Clone, Copy, Debug, Default)]
pub struct IterationStats {
    /// Iteration number (1-based).
    pub iter: u32,
    /// Active (frontier) vertices per class at iteration start — the
    /// Figure 5 series.
    pub active_e: u64,
    /// Active H vertices.
    pub active_h: u64,
    /// Active L vertices (global).
    pub active_l: u64,
    /// Vertices discovered this iteration, per class.
    pub newly_e: u64,
    /// Newly discovered H vertices.
    pub newly_h: u64,
    /// Newly discovered L vertices (global).
    pub newly_l: u64,
    /// Direction chosen per component, in [`crate::config::Component::ALL`] order.
    pub directions: [Direction; 6],
    /// Edges scanned across all sub-iterations (work metric).
    pub scanned_edges: u64,
}

impl Default for Direction {
    fn default() -> Self {
        Direction::Push
    }
}

/// Statistics of one complete BFS traversal on one rank.
#[derive(Clone, Debug, Default)]
pub struct BfsRunStats {
    /// Per-iteration counters (identical on every rank for the
    /// replicated fields; L counts are global sums).
    pub iterations: Vec<IterationStats>,
    /// Graph 500 `m`: undirected edges in the traversed component
    /// (global; used for TEPS).
    pub traversed_edges: u64,
    /// Vertices reached (global, including the root).
    pub visited_vertices: u64,
    /// Simulated seconds the traversal took on this rank.
    pub sim_seconds: f64,
    /// Per-category simulated time on this rank (BFS phase only).
    pub times: TimeAccumulator,
}

impl BfsRunStats {
    /// Giga-traversed-edges-per-second on the simulated machine —
    /// the paper's headline metric.
    pub fn gteps(&self) -> f64 {
        if self.sim_seconds <= 0.0 {
            return 0.0;
        }
        self.traversed_edges as f64 / self.sim_seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gteps_formula() {
        let s = BfsRunStats { traversed_edges: 2_000_000_000, sim_seconds: 2.0, ..Default::default() };
        assert!((s.gteps() - 1.0).abs() < 1e-12);
        let zero = BfsRunStats::default();
        assert_eq!(zero.gteps(), 0.0);
    }
}
