//! Dense bit vectors.
//!
//! Frontier and visited sets in the BFS engine are bit vectors, exactly
//! as in the paper's implementation (the EH2EH pull kernel distributes
//! an "activeness bit vector" over CPE scratchpads). This module
//! provides a compact, allocation-friendly `Bitmap` built on `u64`
//! words with the operations the engine needs: set/test, word-level
//! bulk OR, population count, iteration over set bits, and in-place
//! difference.

pub mod wide;

/// A fixed-capacity dense bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    bits: u64,
    words: Vec<u64>,
}

impl Bitmap {
    /// Create an all-zero bitmap capable of holding `bits` bits.
    pub fn new(bits: u64) -> Self {
        let nwords = bits.div_ceil(64) as usize;
        Bitmap {
            bits,
            words: vec![0; nwords],
        }
    }

    /// Number of bits this bitmap can hold.
    #[inline]
    pub fn len(&self) -> u64 {
        self.bits
    }

    /// True when the bitmap has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Test bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` in debug builds.
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        debug_assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to one. Returns the previous value.
    #[inline]
    pub fn set(&mut self, i: u64) -> bool {
        debug_assert!(i < self.bits, "bit index {i} out of range {}", self.bits);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let old = *w & mask != 0;
        *w |= mask;
        old
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear_bit(&mut self, i: u64) {
        debug_assert!(i < self.bits);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Zero the whole bitmap, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        wide::count_ones(&self.words)
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise OR of `other` into `self`.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.bits, other.bits, "bitmap length mismatch");
        wide::or_assign(&mut self.words, &other.words);
    }

    /// Bitwise AND-NOT: remove from `self` every bit set in `other`.
    pub fn and_not_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.bits, other.bits, "bitmap length mismatch");
        wide::and_not_assign(&mut self.words, &other.words);
    }

    /// Count bits set in `self` but not in `other` (`|self \ other|`).
    pub fn count_and_not(&self, other: &Bitmap) -> u64 {
        assert_eq!(self.bits, other.bits, "bitmap length mismatch");
        wide::and_not_count(&self.words, &other.words)
    }

    /// Count set bits within `[start, end)`.
    pub fn count_ones_range(&self, start: u64, end: u64) -> u64 {
        let end = end.min(self.bits);
        if start >= end {
            return 0;
        }
        let (ws, we) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        let mut total = 0u64;
        for w in ws..=we {
            let mut word = self.words[w];
            if w == ws {
                word &= u64::MAX << (start % 64);
            }
            if w == we {
                let top = end - w as u64 * 64;
                if top < 64 {
                    word &= (1u64 << top) - 1;
                }
            }
            total += word.count_ones() as u64;
        }
        total
    }

    /// Raw word storage (read-only); used by collectives to ship bitmaps.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Raw word storage (mutable); used by collectives to receive bitmaps.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        self.iter_ones_words(0, self.words.len())
    }

    /// Number of `u64` words backing the bitmap — the unit the worker
    /// pool chunks scans on (one word = a 64-vertex block).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Iterate set-bit indices (global, ascending) of the word window
    /// `[wstart, wend)`. This is the worker-pool entry point: chunking
    /// a scan on disjoint word windows and concatenating the results in
    /// window order reproduces [`Bitmap::iter_ones`] exactly.
    pub fn iter_ones_words(&self, wstart: usize, wend: usize) -> OnesIter<'_> {
        let wend = wend.min(self.words.len());
        let wstart = wstart.min(wend);
        OnesIter {
            words: &self.words[..wend],
            bits: self.bits,
            word_idx: wstart,
            current: self.words.get(wstart).copied().unwrap_or(0),
        }
    }

    /// Iterate over set-bit indices within `[start, end)`.
    ///
    /// Word-indexed: only the words overlapping the range are visited,
    /// so a short window over a huge bitmap costs O(window), not
    /// O(len).
    pub fn iter_ones_range(&self, start: u64, end: u64) -> impl Iterator<Item = u64> + '_ {
        let end = end.min(self.bits);
        let wstart = (start / 64) as usize;
        let wend = end.div_ceil(64) as usize;
        self.iter_ones_words(wstart, wend)
            .skip_while(move |&i| i < start)
            .take_while(move |&i| i < end)
    }
}

/// Iterator over set bit indices of a [`Bitmap`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    bits: u64,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                let idx = self.word_idx as u64 * 64 + tz;
                if idx < self.bits {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_zero());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(100);
        assert!(!b.set(63));
        assert!(b.set(63)); // second set reports prior value
        b.set(64);
        b.set(99);
        assert!(b.get(63) && b.get(64) && b.get(99));
        assert!(!b.get(0) && !b.get(65));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn clear_bit_resets() {
        let mut b = Bitmap::new(10);
        b.set(5);
        b.clear_bit(5);
        assert!(!b.get(5));
        assert!(b.is_zero());
    }

    #[test]
    fn or_assign_unions() {
        let mut a = Bitmap::new(70);
        let mut b = Bitmap::new(70);
        a.set(1);
        b.set(69);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(69));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn and_not_removes() {
        let mut a = Bitmap::new(70);
        let mut b = Bitmap::new(70);
        a.set(1);
        a.set(2);
        b.set(2);
        assert_eq!(a.count_and_not(&b), 1);
        a.and_not_assign(&b);
        assert!(a.get(1) && !a.get(2));
    }

    #[test]
    fn iter_ones_yields_ascending_indices() {
        let mut b = Bitmap::new(200);
        let idxs = [0u64, 63, 64, 127, 128, 199];
        for &i in &idxs {
            b.set(i);
        }
        let got: Vec<u64> = b.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn iter_ones_range_windows() {
        let mut b = Bitmap::new(100);
        for i in (0..100).step_by(10) {
            b.set(i);
        }
        let got: Vec<u64> = b.iter_ones_range(15, 55).collect();
        assert_eq!(got, vec![20, 30, 40, 50]);
    }

    #[test]
    fn count_ones_range_matches_iteration() {
        let mut b = Bitmap::new(300);
        for i in (0..300).step_by(7) {
            b.set(i);
        }
        for (lo, hi) in [
            (0u64, 300u64),
            (0, 0),
            (5, 5),
            (63, 65),
            (64, 128),
            (1, 299),
            (128, 300),
        ] {
            let expect = b.iter_ones_range(lo, hi).count() as u64;
            assert_eq!(b.count_ones_range(lo, hi), expect, "range [{lo},{hi})");
        }
    }

    #[test]
    fn word_windows_tile_iter_ones() {
        let mut b = Bitmap::new(1000);
        for i in (0..1000).step_by(13) {
            b.set(i);
        }
        let serial: Vec<u64> = b.iter_ones().collect();
        // Any partition of the word range, concatenated in order, must
        // reproduce the full iteration — the pool's determinism basis.
        for window in [1usize, 3, 7, 16] {
            let mut tiled = Vec::new();
            let mut w = 0;
            while w < b.num_words() {
                tiled.extend(b.iter_ones_words(w, (w + window).min(b.num_words())));
                w += window;
            }
            assert_eq!(tiled, serial, "window={window}");
        }
    }

    #[test]
    fn iter_ones_words_clamps_out_of_range() {
        let mut b = Bitmap::new(100);
        b.set(99);
        assert_eq!(b.iter_ones_words(5, 99).count(), 0);
        assert_eq!(b.iter_ones_words(0, usize::MAX).count(), 1);
        assert_eq!(b.iter_ones_words(9, 3).count(), 0);
    }

    #[test]
    fn iter_ones_ignores_bits_past_len() {
        // length not a multiple of 64: highest word has slack which must
        // never be reported even if set through words_mut.
        let mut b = Bitmap::new(65);
        b.words_mut()[1] = u64::MAX;
        let got: Vec<u64> = b.iter_ones().collect();
        assert_eq!(got, vec![64]);
    }

    #[test]
    #[should_panic]
    fn or_assign_length_mismatch_panics() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(20);
        a.or_assign(&b);
    }
}
