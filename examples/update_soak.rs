//! `update_soak` — the live-mutation artifact: commit seeded edge-insert
//! batches against a resident graph and prove, with the clock running,
//! that incremental BFS repair beats full recompute while staying
//! depth-identical to it — then do it again over TCP under paced query
//! load with updates interleaved into the stream.
//!
//! Two phases, one verdict:
//!
//! * **Phase A (in-process)** — build a session, cache full-BFS results
//!   for a seeded root set, then commit `--rounds` update batches. After
//!   every commit each cached result is repaired in place
//!   (`repair_in_place`, seeded by just that batch) and independently
//!   recomputed from scratch over the same base+delta union adjacency.
//!   Any depth disagreement is an `equivalence_violation`; the timed
//!   ratio is `repair_speedup`.
//! * **Phase B (TCP)** — serve a second session with a seeded
//!   [`UpdatePlan`] (`SUNBFS_UPDATE_PLAN` grammar, default
//!   `insert@8:32;insert@24:32`) armed, and drive it with the load
//!   generator interleaving `{"cmd":"update"}` batches every
//!   `--update-every` queries. The epoch stamped on every reply must
//!   never regress on a connection (`torn_reads`), accounting must be
//!   exactly-once, and the drain must be clean.
//!
//! The run prints a schema-v10 `{"schema_version":10,"update_soak":{...}}`
//! document (tables in `docs/METRICS.md`), optionally written with
//! `--json PATH`.
//!
//! ```text
//! cargo run --release --example update_soak -- \
//!     --scale 14 --ranks 4 --rounds 6 --batch 64 --json UPDATE_14.json
//! ```
//!
//! Flags: `--scale N` (14), `--ranks N` (4), `--rounds N` (6),
//! `--batch N` (64, edges per Phase-A commit), `--roots N` (8, cached
//! result set), `--seed N` (42), `--qps N` (300), `--duration SECS`
//! (2), `--update-every N` (16), `--update-batch N` (4),
//! `--json PATH`. Unknown flags exit 2.
//!
//! Exit status: 0 when every gate held — zero equivalence violations,
//! `repair_speedup >= 1.0`, zero torn reads, committed updates > 0, and
//! a clean drain — 1 otherwise, so CI can gate on the process status.

use std::time::{Duration, Instant};

use sunbfs::common::{Edge, JsonValue, ToJson};
use sunbfs::metrics::SCHEMA_VERSION;
use sunbfs::mutate::{generate_batch, repair_in_place, UnionAdjacency, UpdatePlan};
use sunbfs::net::FaultPlan;
use sunbfs::serve::{
    run_loadgen, BfsService, GraphSession, LoadgenConfig, LoadgenReport, NetConfig, ServeConfig,
    SessionConfig,
};

struct Cli {
    scale: u32,
    ranks: usize,
    rounds: u64,
    batch: u64,
    roots: usize,
    seed: u64,
    qps: u64,
    duration: Duration,
    update_every: u64,
    update_batch: usize,
    json_path: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 14,
            ranks: 4,
            rounds: 6,
            batch: 64,
            roots: 8,
            seed: 42,
            qps: 300,
            duration: Duration::from_secs(2),
            update_every: 16,
            update_batch: 4,
            json_path: None,
        }
    }
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(String::from)
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        let knob = |name: &str, raw: String| -> Result<u64, String> {
            raw.parse::<u64>()
                .map_err(|_| format!("flag {name} needs an unsigned integer, got {raw:?}"))
        };
        match arg.as_str() {
            "--scale" => cli.scale = knob(arg, value(arg)?)? as u32,
            "--ranks" => cli.ranks = knob(arg, value(arg)?)?.max(1) as usize,
            "--rounds" => cli.rounds = knob(arg, value(arg)?)?.max(1),
            "--batch" => cli.batch = knob(arg, value(arg)?)?.max(1),
            "--roots" => cli.roots = knob(arg, value(arg)?)?.max(1) as usize,
            "--seed" => cli.seed = knob(arg, value(arg)?)?,
            "--qps" => cli.qps = knob(arg, value(arg)?)?.max(1),
            "--duration" => cli.duration = Duration::from_secs(knob(arg, value(arg)?)?),
            "--update-every" => cli.update_every = knob(arg, value(arg)?)?,
            "--update-batch" => cli.update_batch = knob(arg, value(arg)?)?.max(1) as usize,
            "--json" => cli.json_path = Some(value(arg)?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

/// One cached BFS result, repaired forward round after round.
struct Cached {
    root: u64,
    parents: Vec<u64>,
    depths: Vec<u64>,
}

/// What Phase A measured.
#[derive(Default)]
struct PhaseA {
    updates_applied: u64,
    update_edges: u64,
    final_epoch: u64,
    compactions: u64,
    repair_ms: f64,
    recompute_ms: f64,
    repaired_roots: u64,
    repaired_vertices: u64,
    equivalence_violations: u64,
    apply_seconds: f64,
}

impl PhaseA {
    fn repair_speedup(&self) -> f64 {
        self.recompute_ms / self.repair_ms.max(1e-6)
    }

    fn updates_per_sec(&self) -> f64 {
        self.updates_applied as f64 / self.apply_seconds.max(1e-9)
    }

    fn edges_per_sec(&self) -> f64 {
        self.update_edges as f64 / self.apply_seconds.max(1e-9)
    }
}

/// Commit `rounds` seeded batches against a fresh session, repairing
/// the cached root results after every commit and checking each one
/// depth-identical against a full recompute over the same union view.
fn run_phase_a(cli: &Cli) -> Result<PhaseA, String> {
    let cfg = SessionConfig::small(cli.scale, cli.ranks);
    let mut session =
        GraphSession::load(cfg, FaultPlan::none()).map_err(|e| format!("session load: {e}"))?;
    let n = session.num_vertices();
    let mut rng = sunbfs::common::SplitMix64::new(cli.seed ^ 0xA5A5_5A5A);
    let mut cache: Vec<Cached> = (0..cli.roots)
        .map(|_| {
            let root = rng.next_below(n);
            let adj = UnionAdjacency::new(session.partitions(), session.deltas());
            let (parents, depths) = adj.full_bfs(root);
            Cached {
                root,
                parents,
                depths,
            }
        })
        .collect();

    let mut out = PhaseA::default();
    for round in 0..cli.rounds {
        let batch: Vec<Edge> = generate_batch(cli.seed, round, cli.batch, n);
        let t0 = Instant::now();
        session
            .apply_updates(&batch)
            .map_err(|e| format!("apply round {round}: {e}"))?;
        out.apply_seconds += t0.elapsed().as_secs_f64();
        out.updates_applied += 1;
        out.update_edges += batch.len() as u64;

        // The union view after this commit — identical whether the
        // round's edges still sit in the delta or a promotion /
        // threshold trigger already compacted them into the base.
        let adj = UnionAdjacency::new(session.partitions(), session.deltas());
        for c in cache.iter_mut() {
            let t0 = Instant::now();
            let stats = repair_in_place(&adj, &batch, &mut c.parents, &mut c.depths);
            out.repair_ms += t0.elapsed().as_secs_f64() * 1e3;
            out.repaired_roots += 1;
            out.repaired_vertices += stats.improved;

            let t0 = Instant::now();
            let (_, fresh_depths) = adj.full_bfs(c.root);
            out.recompute_ms += t0.elapsed().as_secs_f64() * 1e3;
            if c.depths != fresh_depths {
                out.equivalence_violations += 1;
                eprintln!(
                    "update_soak: EQUIVALENCE VIOLATION root {} round {round}",
                    c.root
                );
            }
        }
    }
    out.final_epoch = session.epoch();
    out.compactions = session.compactions();
    Ok(out)
}

/// What Phase B observed: the client view plus the server outcome.
struct PhaseB {
    load: LoadgenReport,
    serve_json: JsonValue,
    plan_events: u64,
    server_panicked: bool,
}

/// Serve a session with a seeded update plan armed and drive it with
/// update-interleaved load over TCP, then drain gracefully.
fn run_phase_b(cli: &Cli) -> Result<PhaseB, String> {
    let plan = UpdatePlan::from_env()
        .map_err(|e| format!("bad SUNBFS_UPDATE_PLAN: {e}"))?
        .unwrap_or_else(|| {
            UpdatePlan::parse("insert@8:32;insert@24:32").expect("default plan parses")
        });
    let plan_events = plan.events().len() as u64;
    let cfg = SessionConfig::small(cli.scale, cli.ranks);
    let session =
        GraphSession::load(cfg, FaultPlan::none()).map_err(|e| format!("session load: {e}"))?;
    let n = session.num_vertices();
    let svc = BfsService::new(session, ServeConfig::default()).with_update_plan(plan);
    let net = NetConfig {
        tick_interval: Duration::from_millis(2),
        ..NetConfig::default()
    };
    let server = sunbfs::serve::serve(svc, "127.0.0.1:0", net).map_err(|e| format!("bind: {e}"))?;
    let load_cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        qps: cli.qps,
        duration: cli.duration,
        root_max: n,
        seed: cli.seed,
        update_every: cli.update_every,
        update_batch: cli.update_batch,
        shutdown_at_end: true,
        ..LoadgenConfig::default()
    };
    let load = run_loadgen(&load_cfg).map_err(|e| format!("loadgen: {e}"))?;
    let outcome = server.join();
    let serve_json = match &outcome.service {
        Some(svc) => svc.report().to_summary_json(),
        None => JsonValue::Null,
    };
    Ok(PhaseB {
        load,
        serve_json,
        plan_events,
        server_panicked: outcome.panicked(),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("update_soak: {msg}");
            eprintln!(
                "usage: update_soak [--scale N] [--ranks N] [--rounds N] [--batch N] \
                 [--roots N] [--seed N] [--qps N] [--duration SECS] [--update-every N] \
                 [--update-batch N] [--json PATH]"
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "update_soak: scale {} ranks {} — phase A: {} rounds x {} edges over {} roots",
        cli.scale, cli.ranks, cli.rounds, cli.batch, cli.roots
    );
    let a = match run_phase_a(&cli) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("update_soak: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "update_soak: phase A — epoch {} compactions {} repair {:.2}ms recompute {:.2}ms \
         speedup {:.1}x {:.0} updates/s violations {}",
        a.final_epoch,
        a.compactions,
        a.repair_ms,
        a.recompute_ms,
        a.repair_speedup(),
        a.updates_per_sec(),
        a.equivalence_violations,
    );
    eprintln!(
        "update_soak: phase B — qps {} for {:?}, one update per {} queries per connection",
        cli.qps, cli.duration, cli.update_every
    );
    let b = match run_phase_b(&cli) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("update_soak: {e}");
            std::process::exit(1);
        }
    };
    let torn_reads = b.load.epoch_regressions;
    let clean_drain = b.load.clean() && !b.server_panicked;
    let passed = a.equivalence_violations == 0
        && a.repair_speedup() >= 1.0
        && torn_reads == 0
        && clean_drain
        && b.load.updates_committed > 0;
    let artifact = JsonValue::object()
        .field("schema_version", SCHEMA_VERSION)
        .field(
            "update_soak",
            JsonValue::object()
                .field("scale", u64::from(cli.scale))
                .field("ranks", cli.ranks as u64)
                .field("rounds", cli.rounds)
                .field("batch_edges", cli.batch)
                .field("roots", cli.roots as u64)
                .field("seed", cli.seed)
                .field("updates_applied", a.updates_applied)
                .field("update_edges", a.update_edges)
                .field("final_epoch", a.final_epoch)
                .field("compactions", a.compactions)
                .field("repair_ms", a.repair_ms)
                .field("recompute_ms", a.recompute_ms)
                .field("repair_speedup", a.repair_speedup())
                .field("updates_per_sec", a.updates_per_sec())
                .field("edges_per_sec", a.edges_per_sec())
                .field("repaired_roots", a.repaired_roots)
                .field("repaired_vertices", a.repaired_vertices)
                .field("equivalence_violations", a.equivalence_violations)
                .field("plan_events", b.plan_events)
                .field("torn_reads", torn_reads)
                .field("clean_drain", clean_drain)
                .field("passed", passed)
                .field("load", b.load.to_json())
                .field("serve", b.serve_json)
                .build(),
        )
        .build();
    let rendered = artifact.render_pretty();
    println!("{rendered}");
    if let Some(path) = &cli.json_path {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("update_soak: writing {path} failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "update_soak: phase B — committed {} ({} edges) rejected {} final_epoch {} \
         torn_reads {} clean {}",
        b.load.updates_committed,
        b.load.update_edges,
        b.load.updates_rejected,
        b.load.final_epoch,
        torn_reads,
        clean_drain,
    );
    if !passed {
        eprintln!(
            "update_soak: GATE FAILURE — violations {} speedup {:.2} torn_reads {} \
             clean_drain {} committed {}",
            a.equivalence_violations,
            a.repair_speedup(),
            torn_reads,
            clean_drain,
            b.load.updates_committed,
        );
        std::process::exit(1);
    }
}
