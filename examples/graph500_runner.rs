//! Graph 500 benchmark runner with command-line knobs.
//!
//! Mirrors the reporting style of the official benchmark: per-root TEPS
//! plus the harmonic mean, with the paper's technique toggles exposed.
//!
//! ```text
//! cargo run --release --example graph500_runner -- \
//!     [scale] [ranks] [e_threshold] [h_threshold] [num_roots] \
//!     [--json [path]]
//!
//! # defaults:         14      16          256          64        8
//! # --json without a path writes BENCH_<scale>_<rows>x<cols>.json
//! # disable a technique:
//! SUNBFS_NO_SUBITER=1 SUNBFS_NO_SEGMENT=1 cargo run --release \
//!     --example graph500_runner -- 14 16
//! ```

use sunbfs::core::EngineConfig;
use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs::metrics;
use sunbfs::net::MeshShape;
use sunbfs::part::Thresholds;

/// Split `--json [path]` out of the argument list, leaving the
/// positional knobs in place. `Some(None)` means "default filename".
fn parse_args() -> (Vec<u64>, Option<Option<String>>) {
    let mut positional = Vec::new();
    let mut json: Option<Option<String>> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            json = Some(args.next_if(|p| !p.starts_with("--")));
        } else if let Ok(v) = a.parse::<u64>() {
            positional.push(v);
        } else {
            eprintln!("ignoring unrecognized argument: {a}");
        }
    }
    (positional, json)
}

fn main() {
    let (positional, json) = parse_args();
    let arg = |n: usize, default: u64| positional.get(n).copied().unwrap_or(default);
    let scale = arg(0, 14) as u32;
    let ranks = arg(1, 16) as usize;
    let e_th = arg(2, 256) as u32;
    let h_th = arg(3, 64) as u32;
    let num_roots = arg(4, 8) as usize;

    let mut engine = EngineConfig::default();
    if std::env::var_os("SUNBFS_NO_SUBITER").is_some() {
        engine.sub_iteration = false;
    }
    if std::env::var_os("SUNBFS_NO_SEGMENT").is_some() {
        engine.segmenting = false;
    }

    let config = RunConfig {
        scale,
        edge_factor: 16,
        mesh: MeshShape::near_square(ranks),
        thresholds: Thresholds::new(e_th, h_th),
        engine,
        machine: sunbfs::common::MachineConfig::new_sunway(),
        seed: 42,
        num_roots,
        // Full-edge-list validation is O(edges) on the driver; keep it
        // for the scales a laptop handles comfortably.
        validate: scale <= 18,
        // Injection comes from SUNBFS_FAULT_PLAN when set (see
        // docs/FAULTS.md); no seeded campaign by default.
        faults: FaultSpec::NONE,
        max_root_retries: 2,
    };

    println!("graph500 runner");
    println!("  SCALE:          {scale} ({} vertices)", 1u64 << scale);
    println!("  edges:          {}", 16u64 << scale);
    println!(
        "  mesh:           {}x{} = {} ranks",
        config.mesh.rows, config.mesh.cols, ranks
    );
    println!("  thresholds:     E>={e_th}  H>={h_th}");
    println!(
        "  techniques:     sub-iteration={} segmenting={}",
        engine.sub_iteration, engine.segmenting
    );
    println!("  roots:          {num_roots}");

    let wall = std::time::Instant::now();
    let report = match run_benchmark(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = wall.elapsed();

    println!("\nper-root results:");
    for run in &report.runs {
        println!(
            "  root {:>8}: {:>7} iters, {:>9} visited, {:>11} edges, {:>9.3} ms sim, {:>8.3} GTEPS",
            run.root,
            run.iterations.len(),
            run.visited_vertices,
            run.traversed_edges,
            run.sim_seconds * 1e3,
            run.gteps,
        );
    }
    if let Some(path) = json {
        let path = path.unwrap_or_else(|| metrics::default_report_path(scale, config.mesh));
        match metrics::write_report(&report, std::path::Path::new(&path)) {
            Ok(()) => println!("\nJSON report:          {path}"),
            Err(e) => eprintln!("\ncould not write {path}: {e}"),
        }
    }

    if report.faults.degraded() || !report.faults.injected.is_empty() {
        println!(
            "\nfaults:               {} injected, {} retries, degraded={}",
            report.faults.injected.len(),
            report.faults.total_retries,
            report.faults.degraded()
        );
        for q in &report.faults.quarantined {
            println!(
                "  quarantined root {:>8}: {} ({})",
                q.root,
                q.reason.label(),
                q.reason.detail()
            );
        }
    }
    if report.recovery.retransmits() > 0 || report.recovery.iterations_salvaged > 0 {
        println!(
            "recovery:             {} retransmits, {} checkpoints, {} iterations salvaged",
            report.recovery.retransmits(),
            report.recovery.checkpoints_taken,
            report.recovery.iterations_salvaged
        );
    }

    println!("\nvalidated:            {}", report.validated);
    println!("mean GTEPS:           {:.3}", report.mean_gteps());
    println!("harmonic-mean GTEPS:  {:.3}", report.harmonic_mean_gteps());
    println!("driver wall time:     {:.2?}", wall);

    // Iteration-direction trace of the first root — the sub-iteration
    // optimization at work.
    if let Some(run) = report.runs.first() {
        println!("\ndirection trace (root {}):", run.root);
        println!("  iter  EH2EH  E2L   L2E   H2L   L2H   L2L    active(E/H/L)");
        for it in &run.iterations {
            let d: Vec<&str> = it
                .directions
                .iter()
                .map(|d| match d {
                    sunbfs::core::Direction::Push => "push",
                    sunbfs::core::Direction::Pull => "PULL",
                })
                .collect();
            println!(
                "  {:>4}  {:<5}  {:<4}  {:<4}  {:<4}  {:<4}  {:<4}   {}/{}/{}",
                it.iter, d[0], d[1], d[2], d[3], d[4], d[5], it.active_e, it.active_h, it.active_l
            );
        }
    }
}
