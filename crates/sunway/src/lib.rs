//! SW26010-Pro chip simulator.
//!
//! The paper's node-level kernels are written against the SW26010-Pro
//! many-core chip (§3.1): 6 core groups (CGs) × 64 Computing Processing
//! Elements (CPEs), each CPE with 256 KB of scratchpad LDM, DMA engines
//! for bulk main-memory transfers, and — new on this chip — **RMA**,
//! low-latency one-sided get/put between CPE LDMs within a CG. Atomics
//! and random main-memory accesses (GLD/GST) are slow; the paper's
//! kernels exist to avoid them.
//!
//! This crate simulates that chip at the fidelity the reproduction
//! needs:
//!
//! * [`ocs`] — **On-Chip Sorting with RMA** (§4.4): the functional
//!   producer/consumer bucket sort over simulated LDM buffers, the
//!   meta-kernel behind all edge messaging, plus MPE and multi-CG
//!   variants (Figure 14),
//! * [`segment`] — **CG-aware core-subgraph segmenting** (§4.3): the
//!   Figure 7 bit-vector-to-LDM offset mapping and the RMA-vs-GLD
//!   access cost accounting behind the 9× EH2EH pull speedup
//!   (Figure 15),
//! * [`kernels`] — closed-form cost estimators for the recurring chip
//!   access patterns (DMA streaming, CPE scalar work, GLD loops, MPE
//!   scatter), all reading their constants from
//!   [`sunbfs_common::MachineConfig`].

pub mod kernels;
pub mod ocs;
pub mod segment;

pub use kernels::KernelReport;
pub use ocs::{ocs_sort_mpe, ocs_sort_rma, OcsConfig};
pub use segment::SegmentedBitvec;
