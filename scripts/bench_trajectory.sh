#!/usr/bin/env bash
# Committed perf trajectory, multi-scale: run the graph500 runner at a
# sweep of pinned scales and leave one BENCH_<scale>_<rows>x<cols>.json
# per scale in the repository root — the committed GTEPS curve for this
# revision (see "Reading the GTEPS curve" in README.md).
#
# Gates, in order:
#
#   * regression gate (simulated, deterministic): on a machine with
#     >= 4 cores the fresh SCALE-14 harmonic-mean GTEPS must be >= the
#     committed BENCH_14_2x2.json baseline. The simulated metric does
#     not depend on host speed, so this is a hard floor, not a hint.
#   * wall-clock smoke (SCALE 14 only): parallel must not lose to a
#     serial (SUNBFS_WORKERS=1) reference on >= 4 cores, and must stay
#     within a generous overhead bound (>= serial/3) everywhere.
#   * schema smoke: every artifact carries the v10 wall section.
#
# Knobs (env): BENCH_SCALES ("14 16 18"), BENCH_RANKS (4), BENCH_ROOTS
# (4), BENCH_WORKERS (4), BENCH_TIMEOUT (600 s per run, hard).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALES="${BENCH_SCALES:-14 16 18}"
RANKS="${BENCH_RANKS:-4}"
ROOTS="${BENCH_ROOTS:-4}"
WORKERS="${BENCH_WORKERS:-4}"
BENCH_TIMEOUT="${BENCH_TIMEOUT:-600}"
CORES="$(nproc 2>/dev/null || echo 1)"

# One number per report: the wall section's edges_per_second and the
# top-level harmonic_mean_gteps each appear exactly once in the schema
# (src/metrics.rs).
eps_of() {
    sed -n 's/.*"edges_per_second": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}
hmean_of() {
    sed -n 's/.*"harmonic_mean_gteps": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}

echo "==> bench trajectory: SCALES='$SCALES' ranks=$RANKS roots=$ROOTS workers=$WORKERS"
cargo build -q --release --example graph500_runner

# The committed SCALE-14 baseline, captured before this sweep overwrites
# the artifact. Absent on a fresh clone pre-first-commit: gate skipped.
BASELINE_HMEAN=""
if [ -f BENCH_14_2x2.json ]; then
    BASELINE_HMEAN="$(hmean_of BENCH_14_2x2.json)"
fi

for SCALE in $SCALES; do
    echo "==> SCALE $SCALE (SUNBFS_WORKERS=$WORKERS) -> committed artifact"
    SUNBFS_WORKERS="$WORKERS" timeout "$BENCH_TIMEOUT" \
        cargo run -q --release --example graph500_runner -- \
        "$SCALE" "$RANKS" 256 64 "$ROOTS" --json > /dev/null
    BENCH_JSON="$(ls BENCH_"$SCALE"_*.json | head -1)"
    echo "    wrote $BENCH_JSON ($(hmean_of "$BENCH_JSON") harmonic-mean GTEPS)"

    # --- schema smoke: wall section present and sane ------------------
    grep -Eq '"schema_version": *10' "$BENCH_JSON"
    grep -q '"wall":' "$BENCH_JSON"
    grep -q '"available_parallelism":' "$BENCH_JSON"
    grep -Eq '"workers": *'"$WORKERS" "$BENCH_JSON"
    grep -Eq '"edges_per_second": *[0-9]' "$BENCH_JSON"
    grep -Eq '"harmonic_mean_gteps": *[0-9]' "$BENCH_JSON"
done

# --- regression gate: the curve must not sink at its anchor point -----
if [ -n "$BASELINE_HMEAN" ] && [ -f BENCH_14_2x2.json ]; then
    FRESH_HMEAN="$(hmean_of BENCH_14_2x2.json)"
    echo "==> regression gate: SCALE-14 harmonic-mean $FRESH_HMEAN vs committed $BASELINE_HMEAN"
    awk -v fresh="$FRESH_HMEAN" -v base="$BASELINE_HMEAN" -v c="$CORES" 'BEGIN {
        if (fresh <= 0) { print "bench gate: non-positive harmonic mean"; exit 1 }
        if (c >= 4 && fresh < base) {
            printf "bench gate: SCALE-14 harmonic-mean GTEPS regressed (%g < %g)\n", fresh, base
            exit 1
        }
    }'
fi

# --- wall-clock smoke at the anchor scale -----------------------------
case " $SCALES " in *" 14 "*)
    SERIAL_JSON="$(mktemp)"
    echo "==> serial reference at SCALE 14 (SUNBFS_WORKERS=1)"
    SUNBFS_WORKERS=1 timeout "$BENCH_TIMEOUT" \
        cargo run -q --release --example graph500_runner -- \
        14 "$RANKS" 256 64 "$ROOTS" --json "$SERIAL_JSON" > /dev/null

    SERIAL_EPS="$(eps_of "$SERIAL_JSON")"
    PARALLEL_EPS="$(eps_of BENCH_14_2x2.json)"
    rm -f "$SERIAL_JSON"

    echo "    serial:   $SERIAL_EPS edges/s"
    echo "    parallel: $PARALLEL_EPS edges/s ($CORES cores visible)"

    awk -v s="$SERIAL_EPS" -v p="$PARALLEL_EPS" -v c="$CORES" 'BEGIN {
        if (s <= 0 || p <= 0) { print "bench smoke: non-positive throughput"; exit 1 }
        if (c >= 4 && p < s) {
            printf "bench smoke: parallel (%g) lost to serial (%g) on %d cores\n", p, s, c
            exit 1
        }
        if (p < s / 3) {
            printf "bench smoke: parallel (%g) below overhead bound serial/3 (%g)\n", p, s / 3
            exit 1
        }
    }'
;; esac

echo "bench trajectory OK: $(ls BENCH_*_*.json | tr '\n' ' ')"
