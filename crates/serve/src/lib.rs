//! `sunbfs-serve` — the BFS query service.
//!
//! The ROADMAP's north star is a system that serves heavy query
//! traffic, not a one-shot benchmark. This crate closes that gap in
//! three layers:
//!
//! * [`GraphSession`] ([`session`]) — the **resident graph**: R-MAT
//!   generation and the 1.5D partition are built once and reused by
//!   every query; the simulated cluster survives across runs, and
//!   transient faults consumed by one query never invalidate the
//!   partition. A session can also be [saved](GraphSession::save) to
//!   and [opened](GraphSession::open) from the `sunbfs-store` paged
//!   file format (`docs/STORE.md`), so a restart pays file-open time
//!   instead of rebuild time ([`GraphSession::open_or_build`]).
//! * [`run_bfs_batch`](sunbfs_core::run_bfs_batch) (in `sunbfs-core`) —
//!   the **bit-parallel multi-source engine**: up to 64 roots share one
//!   traversal, packed as a `u64` frontier word per vertex, so the
//!   per-iteration fixed costs (hub syncs, heuristic collectives,
//!   bitmap sweeps) amortize across the batch.
//! * [`BfsService`] ([`service`]) — the **service mechanics**: bounded
//!   admission queue with typed rejections (backpressure), deadline-
//!   driven batch formation, per-query typed results (parent-array
//!   handle, depth histogram, served/quarantined status), per-root
//!   checkpointed fallback when a batch loses a rank, a health state
//!   machine with a load-shedding circuit breaker
//!   (`docs/FAULTS.md`), per-query deadline budgets, and a seeded
//!   [`ChaosConfig`] that arms live faults for soak testing.
//!
//! The service is reachable over two transports sharing one wire
//! protocol ([`proto`] — newline-delimited JSON with typed parse
//! errors): the stdin loop of `examples/bfs_server.rs`, and the
//! concurrent TCP server of [`net`] (accept loop with a connection
//! cap, per-connection deadlines, one deterministic service thread,
//! graceful drain-on-shutdown). [`loadgen`] drives the TCP server at a
//! configured offered load and folds what it saw into the `serve_load`
//! saturation artifact.
//!
//! Observability lives in [`ServeReport`] ([`report`]), which renders
//! as the `serve` section of the metrics JSON.
//!
//! The graph is **live** (`docs/UPDATES.md`): batched edge inserts
//! commit through [`GraphSession::apply_updates`] /
//! [`BfsService::apply_updates`] — or the wire's `update` command —
//! bumping a monotone epoch that stamps every reply. Committed inserts
//! sit in a per-rank delta overlay (`sunbfs-mutate`), query results
//! are patched by incremental BFS repair, and the delta compacts back
//! into the base CSRs on promotion or size triggers.

pub mod loadgen;
pub mod net;
pub mod proto;
pub mod report;
pub mod service;
pub mod session;

/// Widest batch the engine's frontier word can carry.
pub const MAX_BATCH: usize = sunbfs_core::MAX_BATCH_ROOTS;

pub use loadgen::{
    run_chaos_soak, run_loadgen, ChaosSoakConfig, ChaosSoakReport, LatencySummary, LoadgenConfig,
    LoadgenReport,
};
pub use net::{serve, JoinOutcome, NetConfig, NetSummary, TcpServer};
pub use proto::{parse_request, LoadRequest, ProtoError, Request, MAX_REQUEST_BYTES};
pub use report::{
    occupancy_bucket, BatchRecord, HealthTransition, QueryRecord, ServeReport, OCCUPANCY_LABELS,
};
pub use service::{
    BfsService, ChaosConfig, HealthConfig, HealthMachine, HealthSnapshot, HealthState, Quarantine,
    QueryId, QueryResult, QueryStatus, RejectReason, ServeConfig,
};
pub use session::{
    GraphSession, LoadError, SessionConfig, SessionError, StoreActivity, DELTA_COMPACT_THRESHOLD,
};
pub use sunbfs_mutate::{RepairStats, UpdateEvent, UpdatePlan};
pub use sunbfs_store::{StoreError, StoreHeader, StoreInfo};
