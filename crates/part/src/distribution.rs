//! Block distribution of vertices over ranks.
//!
//! "Vertices are first evenly distributed across nodes" (§6.2.2): rank
//! `r` owns the contiguous interval `[r·⌈n/P⌉, (r+1)·⌈n/P⌉) ∩ [0, n)`.
//! Owners hold the L-vertex state (frontier/visited/parent bits) and
//! the L-rooted components of the partition.

use std::ops::Range;

/// Block distribution of `n` vertices over `p` ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexDistribution {
    n: u64,
    p: usize,
    chunk: u64,
}

impl VertexDistribution {
    /// Distribution of `n` vertices over `p` ranks.
    pub fn new(n: u64, p: usize) -> Self {
        assert!(p > 0);
        assert!(n > 0, "empty vertex set");
        VertexDistribution {
            n,
            p,
            chunk: n.div_ceil(p as u64),
        }
    }

    /// Total vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.n
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Owning rank of vertex `v`.
    #[inline]
    pub fn owner(&self, v: u64) -> usize {
        debug_assert!(v < self.n);
        ((v / self.chunk) as usize).min(self.p - 1)
    }

    /// The interval rank `r` owns (possibly empty for trailing ranks).
    #[inline]
    pub fn range_of(&self, r: usize) -> Range<u64> {
        debug_assert!(r < self.p);
        let lo = (r as u64 * self.chunk).min(self.n);
        let hi = ((r as u64 + 1) * self.chunk).min(self.n);
        lo..hi
    }

    /// Local index of `v` on its owner.
    #[inline]
    pub fn local_index(&self, v: u64) -> u64 {
        v - self.range_of(self.owner(v)).start
    }

    /// Number of vertices rank `r` owns.
    #[inline]
    pub fn local_count(&self, r: usize) -> u64 {
        let range = self.range_of(r);
        range.end - range.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_vertex_set() {
        for (n, p) in [(100u64, 7usize), (64, 8), (10, 16), (1, 1), (1000, 3)] {
            let d = VertexDistribution::new(n, p);
            let mut covered = 0u64;
            for r in 0..p {
                let range = d.range_of(r);
                assert_eq!(range.start, covered.min(n));
                covered = covered.max(range.end);
                for v in range.clone() {
                    assert_eq!(d.owner(v), r, "owner mismatch at v={v}, n={n}, p={p}");
                    assert_eq!(d.local_index(v), v - range.start);
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn owner_clamps_to_last_rank() {
        // n=10, p=16: chunk=1, vertices 0..10 owned by ranks 0..10,
        // ranks 10..16 own nothing.
        let d = VertexDistribution::new(10, 16);
        assert_eq!(d.owner(9), 9);
        assert_eq!(d.local_count(12), 0);
    }

    #[test]
    fn local_counts_sum_to_n() {
        let d = VertexDistribution::new(12345, 17);
        let total: u64 = (0..17).map(|r| d.local_count(r)).sum();
        assert_eq!(total, 12345);
    }
}
