//! Back-of-envelope projection of the cost model to the paper's full
//! machine: SCALE 44 (281 trillion edges) on 103,912 nodes in a
//! 406 × 256 mesh.
//!
//! **This is an extrapolation across three orders of magnitude and is
//! labeled as such.** It exists to answer one question: when the same
//! analytic machine model that reproduces the laptop-scale figures is
//! evaluated at the paper's parameters, does it land in the right
//! *decade* of the 180,792 GTEPS headline? The class statistics
//! (per-class edge shares, per-iteration scan fractions) are measured
//! on a real traversal at SCALE 18 and reused verbatim — R-MAT is
//! self-similar enough for a decade-level estimate, no more.
//!
//! ```text
//! cargo run --release --example paper_scale_projection
//! ```

use sunbfs::common::{MachineConfig, SimTime};
use sunbfs::core::EngineConfig;
use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs::net::MeshShape;
use sunbfs::part::Thresholds;
use sunbfs::sunway::kernels;

fn main() {
    let machine = MachineConfig::new_sunway();

    // ---- (1) measure class structure on a real traversal ----
    let cal = RunConfig {
        scale: 18,
        edge_factor: 16,
        mesh: MeshShape::new(2, 8),
        thresholds: Thresholds::new(2048, 256),
        engine: EngineConfig::default(),
        machine,
        seed: 42,
        num_roots: 2,
        validate: false,
        faults: FaultSpec::NONE,
        max_root_retries: 2,
        serve_batch: false,
        serve_baseline: false,
        save_graph: None,
        load_graph: None,
    };
    let report = run_benchmark(&cal).expect("calibration run must pass");
    let stats = &report.partition_stats;
    let total_stored: u64 = stats.iter().map(|s| s.total()).sum();
    let share = |f: fn(&sunbfs::part::ComponentStats) -> u64| -> f64 {
        stats.iter().map(f).sum::<u64>() as f64 / total_stored as f64
    };
    let eh_share = share(|s| s.eh2eh);
    let hl_share = share(|s| s.h2l) + share(|s| s.l2h);
    let l2l_share = share(|s| s.l2l);
    let scanned: u64 = report.runs[0]
        .iterations
        .iter()
        .map(|it| it.scanned_edges)
        .sum();
    let m_cal = 16u64 << 18;
    let scan_factor = scanned as f64 / m_cal as f64;
    println!("calibration at SCALE 18 (measured, not assumed):");
    println!("  EH2EH share of stored edges: {:.1}%", eh_share * 100.0);
    println!("  H<->L share:                 {:.1}%", hl_share * 100.0);
    println!("  L2L share:                   {:.1}%", l2l_share * 100.0);
    println!("  edges scanned / m:           {scan_factor:.2}");

    // ---- (2) paper-scale parameters ----
    let nodes = 103_912f64;
    let m_full = 16f64 * 2f64.powi(44); // 281T directed-once edges
    let per_node_edges = m_full / nodes; // ~2.7e9
    println!(
        "\nprojection to SCALE 44 on {} nodes (406x256 mesh):",
        nodes as u64
    );
    println!("  edges per node: {:.2e}", per_node_edges);

    // Per-node scanned work (both stored orientations, early exit folded
    // into the measured scan factor).
    let scanned_per_node = per_node_edges * scan_factor * 2.0;

    // (a) node compute: stream scanned adjacency once.
    let t_compute = kernels::dma_stream(&machine, (scanned_per_node * 8.0) as u64, 1024, 6);

    // (b) intra-row messaging (H<->L): volume ~ its edge share, 16 B
    // messages, full NIC bandwidth.
    let row_bytes = per_node_edges * hl_share * 16.0;
    let t_row = SimTime::secs(row_bytes / machine.nic_bandwidth);

    // (c) global messaging (L2L): the forwarded hop crosses supernodes
    // at the oversubscribed share.
    let inter_bw = machine.nic_bandwidth / machine.oversubscription;
    let l2l_bytes = per_node_edges * l2l_share * 16.0;
    let t_l2l = SimTime::secs(l2l_bytes / inter_bw);

    // (d) delegate synchronization: per iteration, hub bitmap words over
    // rows and columns. Hub count per the paper's constraint: <= 100M
    // column hubs → 12.5 MB bit vector; ~10 iterations, 2 tiers.
    let hub_bytes = 12.5e6;
    let iters = 10.0;
    let t_sync =
        SimTime::secs(iters * 2.0 * (hub_bytes / machine.nic_bandwidth + hub_bytes / inter_bw));

    // (e) latency floor: ~30 collectives x log2(P) hops x net latency.
    let t_lat = SimTime::secs(iters * 3.0 * (nodes.log2()) * machine.net_latency);

    let total = t_compute + t_row + t_l2l + t_sync + t_lat;
    println!("\nprojected per-BFS time components (seconds):");
    println!(
        "  compute (adjacency streaming): {:.3}",
        t_compute.as_secs()
    );
    println!("  intra-supernode messaging:     {:.3}", t_row.as_secs());
    println!("  cross-supernode messaging:     {:.3}", t_l2l.as_secs());
    println!("  delegate synchronization:      {:.3}", t_sync.as_secs());
    println!("  collective latency floor:      {:.3}", t_lat.as_secs());
    println!("  total:                         {:.3}", total.as_secs());

    let gteps = m_full / total.as_secs() / 1e9;
    println!("\nprojected: {gteps:.0} GTEPS   (paper measured: 180,792; paper time 1.55 s vs projected {:.2} s)", total.as_secs());
    let ratio = gteps / 180_792.0;
    println!("projection / paper = {ratio:.2}x");
    if (0.2..5.0).contains(&ratio) {
        println!("-> the model lands within the right decade of the headline result.");
    } else {
        println!("-> WARNING: projection off by more than a decade; revisit the model.");
    }
}
