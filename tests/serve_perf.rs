//! Acceptance: at SCALE 14 on 16 ranks, routing 64 roots through the
//! bit-parallel batch path must serve at least 2x the roots/sec
//! (simulated) of the sequential per-root loop over the same resident
//! partition, and the comparison must be recorded in the metrics JSON
//! `serve` section.
//!
//! The measured ratio is far above the floor (the batch pays one
//! traversal's fixed costs for 64 riders), so the 2.0 assertion has
//! ample slack against cost-model tweaks.

use sunbfs::driver::{run_benchmark, RunConfig};

#[test]
fn batched_serving_doubles_sequential_roots_per_sec_at_scale_14() {
    let cfg = RunConfig::builder()
        .scale(14)
        .ranks(16)
        .num_roots(64)
        .validate(false)
        .serve_batch(true)
        .serve_baseline(true)
        .build();
    let report = run_benchmark(&cfg).expect("serve benchmark must pass");
    assert_eq!(report.runs.len(), 64, "all 64 roots served");

    let serve = report.serve.as_ref().expect("serve section present");
    assert_eq!(serve.served, 64);
    assert_eq!(serve.quarantined, 0);
    // 64 roots fill exactly one full batch.
    assert_eq!(serve.batches.len(), 1);
    assert_eq!(serve.occupancy_histogram[6], 1, "one 64-wide batch");

    let speedup = serve
        .speedup()
        .expect("baseline measured, speedup computable");
    assert!(
        speedup >= 2.0,
        "batched path must at least double sequential roots/sec, got {speedup:.2}x \
         ({:.1} vs {:?} roots/sec)",
        serve.batch_roots_per_sec(),
        serve.sequential_roots_per_sec(),
    );

    // The comparison is part of the exported metrics JSON.
    let js = report.to_json().render();
    assert!(js.contains("\"schema_version\":10"));
    for key in [
        "\"serve\":",
        "\"batch_roots_per_sec\":",
        "\"sequential_roots_per_sec\":",
        "\"speedup\":",
        "\"occupancy_histogram\":",
    ] {
        assert!(js.contains(key), "metrics JSON missing {key}");
    }
}
