//! Graph 500 result validation and a sequential reference BFS.
//!
//! The benchmark specification requires every reported traversal to be
//! validated. Given the full parent array (gathered from the ranks) and
//! the original edge list, [`validate_parents`] checks:
//!
//! 1. the root is its own parent,
//! 2. every reached vertex has a level one greater than its parent's
//!    (levels derived by chasing parents, with cycle detection),
//! 3. every tree edge `(v, parent(v))` exists in the input multigraph,
//! 4. both endpoints of every input edge are reached or neither is
//!    (connectivity closure),
//! 5. unreached vertices are exactly those with no parent.
//!
//! [`reference_bfs`] is the obviously correct sequential algorithm used
//! by the equivalence tests: *levels* must match the distributed engine
//! exactly (parents may legitimately differ between valid BFS trees).

use std::collections::{HashSet, VecDeque};

use sunbfs_common::{Edge, INVALID_VERTEX};

/// Errors [`validate_parents`] can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Root has no parent or is not its own parent.
    BadRoot,
    /// A parent pointer leads to an unreached vertex or a cycle.
    BrokenChain {
        /// The offending vertex.
        vertex: u64,
    },
    /// A tree edge does not exist in the input graph.
    PhantomEdge {
        /// Child whose parent link is not a real edge.
        vertex: u64,
        /// The claimed parent.
        parent: u64,
    },
    /// An input edge connects a reached and an unreached vertex.
    MissedVertex {
        /// The unreached endpoint.
        vertex: u64,
    },
    /// Parent levels differ by more than one across a tree edge.
    BadLevel {
        /// Child vertex.
        vertex: u64,
    },
}

/// Levels of every vertex derived from a parent array (`u64::MAX` for
/// unreached). Fails on cycles or chains not ending at the root.
pub fn levels_from_parents(root: u64, parents: &[u64]) -> Result<Vec<u64>, ValidationError> {
    let n = parents.len();
    let mut levels = vec![u64::MAX; n];
    if parents[root as usize] != root {
        return Err(ValidationError::BadRoot);
    }
    levels[root as usize] = 0;
    for v0 in 0..n as u64 {
        if parents[v0 as usize] == INVALID_VERTEX || levels[v0 as usize] != u64::MAX {
            continue;
        }
        // Chase until a vertex with a known level; bound by n to catch cycles.
        let mut chain = Vec::new();
        let mut v = v0;
        while levels[v as usize] == u64::MAX {
            if parents[v as usize] == INVALID_VERTEX || chain.len() > n {
                return Err(ValidationError::BrokenChain { vertex: v0 });
            }
            chain.push(v);
            v = parents[v as usize];
        }
        let mut lvl = levels[v as usize];
        for &u in chain.iter().rev() {
            lvl += 1;
            levels[u as usize] = lvl;
        }
    }
    Ok(levels)
}

/// Full Graph 500 validation of a parent array against the input edges.
pub fn validate_parents(
    n: u64,
    edges: &[Edge],
    root: u64,
    parents: &[u64],
) -> Result<(), ValidationError> {
    assert_eq!(parents.len() as u64, n);
    let levels = levels_from_parents(root, parents)?;

    // Tree edges must exist in the graph (undirected).
    let edge_set: HashSet<(u64, u64)> = edges
        .iter()
        .filter(|e| !e.is_self_loop())
        .map(|e| {
            let c = e.canonical();
            (c.u, c.v)
        })
        .collect();
    for v in 0..n {
        let p = parents[v as usize];
        if p == INVALID_VERTEX || v == root {
            continue;
        }
        let key = if v <= p { (v, p) } else { (p, v) };
        if !edge_set.contains(&key) {
            return Err(ValidationError::PhantomEdge {
                vertex: v,
                parent: p,
            });
        }
        if levels[v as usize] != levels[p as usize] + 1 {
            return Err(ValidationError::BadLevel { vertex: v });
        }
    }

    // Connectivity closure: an edge cannot straddle the reached set.
    for e in edges {
        if e.is_self_loop() {
            continue;
        }
        let ru = parents[e.u as usize] != INVALID_VERTEX;
        let rv = parents[e.v as usize] != INVALID_VERTEX;
        if ru != rv {
            let vertex = if ru { e.v } else { e.u };
            return Err(ValidationError::MissedVertex { vertex });
        }
    }
    Ok(())
}

/// Sequential reference BFS. Returns `(parents, levels)`.
pub fn reference_bfs(n: u64, edges: &[Edge], root: u64) -> (Vec<u64>, Vec<u64>) {
    // Adjacency build.
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
    for e in edges {
        if e.is_self_loop() {
            continue;
        }
        adj[e.u as usize].push(e.v);
        adj[e.v as usize].push(e.u);
    }
    let mut parents = vec![INVALID_VERTEX; n as usize];
    let mut levels = vec![u64::MAX; n as usize];
    parents[root as usize] = root;
    levels[root as usize] = 0;
    let mut q = VecDeque::from([root]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u as usize] {
            if parents[v as usize] == INVALID_VERTEX {
                parents[v as usize] = u;
                levels[v as usize] = levels[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    (parents, levels)
}

/// Graph 500 TEPS edge count: undirected input edges with both
/// endpoints inside the traversed component, each *distinct* edge
/// counted once. Duplicate entries in the generator's multigraph edge
/// list collapse to one traversed edge — the engine's degree-sum
/// estimate counts them per entry, so the two diverge on multigraphs.
pub fn component_edges(edges: &[Edge], parents: &[u64]) -> u64 {
    let mut seen: Vec<(u64, u64)> = edges
        .iter()
        .filter(|e| !e.is_self_loop())
        .filter(|e| {
            parents[e.u as usize] != INVALID_VERTEX && parents[e.v as usize] != INVALID_VERTEX
        })
        .map(|e| {
            let c = e.canonical();
            (c.u, c.v)
        })
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u64) -> Vec<Edge> {
        (0..n - 1).map(|i| Edge::new(i, i + 1)).collect()
    }

    #[test]
    fn reference_bfs_levels_on_path() {
        let edges = path_graph(5);
        let (parents, levels) = reference_bfs(5, &edges, 0);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(parents, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn reference_output_validates() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(3, 4),
            Edge::new(2, 2),
        ];
        let (parents, _) = reference_bfs(5, &edges, 0);
        assert_eq!(validate_parents(5, &edges, 0, &parents), Ok(()));
        // 3 and 4 unreached.
        assert_eq!(parents[3], INVALID_VERTEX);
    }

    #[test]
    fn detects_bad_root() {
        let edges = path_graph(3);
        let parents = vec![INVALID_VERTEX, 0, 1];
        assert_eq!(
            validate_parents(3, &edges, 0, &parents),
            Err(ValidationError::BadRoot)
        );
    }

    #[test]
    fn detects_phantom_edge() {
        let edges = path_graph(4);
        // Vertex 3 claims parent 0, but edge {0,3} does not exist.
        let parents = vec![0, 0, 1, 0];
        assert_eq!(
            validate_parents(4, &edges, 0, &parents),
            Err(ValidationError::PhantomEdge {
                vertex: 3,
                parent: 0
            })
        );
    }

    #[test]
    fn detects_cycle() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(3, 1),
        ];
        // 2 and 3 parent each other: a cycle detached from the root.
        let parents = vec![0, 0, 3, 2];
        assert!(matches!(
            validate_parents(4, &edges, 0, &parents),
            Err(ValidationError::BrokenChain { .. })
        ));
    }

    #[test]
    fn detects_missed_vertex() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let parents = vec![0, 0, INVALID_VERTEX];
        assert_eq!(
            validate_parents(3, &edges, 0, &parents),
            Err(ValidationError::MissedVertex { vertex: 2 })
        );
    }

    #[test]
    fn detects_non_tree_level_skip() {
        // Star plus chain: 0-1, 0-2, 1-2 means 2 could wrongly claim a
        // level-2 parent along 1 while really adjacent to the root...
        // here we force a level gap with a legal edge.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(0, 3),
        ];
        // Valid tree: 3 at level 1 via root edge; but claim parent=2 at
        // level 2 → level(3) becomes 3, legal chain. Make 2 claim parent
        // 3 instead: level(2)=? -> chain 2->3->0 gives level 2; edge
        // {2,3} exists; but then 1's child edge 1->2? Use simpler direct
        // check through levels_from_parents.
        let parents = vec![0u64, 0, 1, 2];
        assert_eq!(validate_parents(4, &edges, 0, &parents), Ok(()));
    }

    #[test]
    fn component_edge_count() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(3, 4),
            Edge::new(2, 2),
        ];
        let (parents, _) = reference_bfs(5, &edges, 0);
        assert_eq!(component_edges(&edges, &parents), 2);
    }

    #[test]
    fn component_edge_count_dedups_multigraph() {
        // The same undirected edge listed three times (both
        // orientations) is one traversed edge for TEPS.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(0, 1),
            Edge::new(1, 2),
        ];
        let (parents, _) = reference_bfs(3, &edges, 0);
        assert_eq!(component_edges(&edges, &parents), 2);
    }
}
