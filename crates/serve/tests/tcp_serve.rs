//! TCP transport tests: the robustness contract of `sunbfs_serve::net`.
//!
//! The acceptance bar (ISSUE 7): with offered load ≥ 2× what the
//! service admits, the server stays alive, rejections carry
//! `retry_after_ticks`, every accepted query gets exactly one reply,
//! and graceful shutdown drains all in-flight queries with no lost
//! replies. Plus the perimeter: connection caps, typed protocol
//! errors, idle-client deadlines, and per-connection in-flight caps.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sunbfs_common::JsonValue;
use sunbfs_net::FaultPlan;
use sunbfs_serve::{
    run_loadgen, BfsService, GraphSession, LoadgenConfig, NetConfig, ServeConfig, SessionConfig,
    TcpServer,
};

fn start(scale: u32, ranks: usize, serve_cfg: ServeConfig, net_cfg: NetConfig) -> TcpServer {
    let session =
        GraphSession::load(SessionConfig::small(scale, ranks), FaultPlan::none()).expect("load");
    let svc = BfsService::new(session, serve_cfg);
    sunbfs_serve::serve(svc, "127.0.0.1:0", net_cfg).expect("bind")
}

/// A blocking NDJSON test client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &TcpServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    /// Next reply line, parsed; panics on EOF.
    fn recv(&mut self) -> JsonValue {
        self.try_recv().expect("unexpected EOF from server")
    }

    /// Next reply line, or `None` on EOF / closed connection.
    fn try_recv(&mut self) -> Option<JsonValue> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {}
            }
            if line.trim().is_empty() {
                continue;
            }
            return Some(JsonValue::parse(line.trim()).expect("well-formed reply line"));
        }
    }
}

fn reply_kind(v: &JsonValue) -> String {
    v.get("reply")
        .and_then(JsonValue::as_str)
        .unwrap_or("<none>")
        .to_string()
}

#[test]
fn roundtrip_query_stats_drain_and_shutdown_over_tcp() {
    let server = start(8, 4, ServeConfig::default(), NetConfig::default());
    let mut c = Client::connect(&server);

    // flush_deadline 4 at a 10ms tick: the result follows the accepted
    // reply within a few clock ticks without an explicit drain.
    c.send(r#"{"cmd":"query","root":1}"#);
    let accepted = c.recv();
    assert_eq!(reply_kind(&accepted), "accepted");
    assert_eq!(accepted.get("root").and_then(JsonValue::as_u64), Some(1));
    let result = c.recv();
    assert_eq!(reply_kind(&result), "result");
    assert_eq!(
        result.get("status").and_then(JsonValue::as_str),
        Some("served")
    );

    c.send(r#"{"cmd":"stats"}"#);
    let stats = c.recv();
    assert_eq!(reply_kind(&stats), "stats");
    assert_eq!(
        stats
            .get("serve")
            .and_then(|s| s.get("served"))
            .and_then(JsonValue::as_u64),
        Some(1)
    );

    // `load` is a startup decision on the TCP transport.
    c.send(r#"{"cmd":"load","scale":8}"#);
    let err = c.recv();
    assert_eq!(reply_kind(&err), "error");
    assert_eq!(
        err.get("kind").and_then(JsonValue::as_str),
        Some("bad_request")
    );

    c.send(r#"{"cmd":"shutdown"}"#);
    assert_eq!(reply_kind(&c.recv()), "shutting_down");
    assert_eq!(reply_kind(&c.recv()), "shutdown");
    assert!(c.try_recv().is_none(), "server closes after shutdown");

    let (svc, summary) = server.join().expect_clean();
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.results_delivered, 1);
    assert_eq!(summary.results_dropped, 0);
    assert_eq!(summary.protocol_errors, 0);
    assert_eq!(svc.report().served, 1);
}

/// The tentpole acceptance test: sustained offered load at least 2× the
/// admitted rate degrades into typed rejections with backoff hints —
/// never lost replies, never a dead server.
#[test]
fn overload_degrades_predictably_and_server_survives() {
    // The tick clock advances once per arriving request, so with the
    // flush deadline far beyond the queue capacity the pending queue
    // sits at capacity for most of each formation window — at most 8 of
    // every ~64 offered queries are admitted, and scale-13 batches take
    // tens of milliseconds in a debug build on top of that.
    let server = start(
        13,
        4,
        ServeConfig {
            queue_capacity: 8,
            batch_max: 64,
            flush_deadline: 64,
            ..ServeConfig::default()
        },
        NetConfig {
            tick_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    );
    let report = run_loadgen(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        connections: 4,
        qps: 1000,
        duration: Duration::from_secs(2),
        root_max: 1 << 13,
        seed: 7,
        shutdown_at_end: false,
        settle_timeout: Duration::from_secs(60),
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");

    // Accounting invariants: exactly-once replies, nothing malformed.
    assert!(report.clean(), "invariants violated: {report:?}");
    assert_eq!(report.served + report.quarantined, report.accepted);
    assert_eq!(report.quarantined, 0);
    assert_eq!(report.latency.count, report.served);

    // Predictable degradation: ≥ 2× overload produced queue-full
    // rejections, and every one carried the backoff hint.
    assert!(
        report.offered >= 2 * report.accepted,
        "offered {} must be ≥ 2× accepted {}",
        report.offered,
        report.accepted
    );
    assert!(
        report.rejected_full > 0,
        "saturation must reject: {report:?}"
    );
    assert!(
        report.rejects_with_hint >= report.rejected_full + report.rejected_backlog,
        "queue_full/client_backlog rejections must carry retry_after_ticks: {report:?}"
    );
    assert!(report.latency.p50_ms <= report.latency.p99_ms);
    assert!(report.latency.p99_ms <= report.latency.p999_ms);

    // The server survived the storm: a fresh connection still serves.
    let mut c = Client::connect(&server);
    c.send(r#"{"cmd":"query","root":1}"#);
    assert_eq!(reply_kind(&c.recv()), "accepted");
    let result = c.recv();
    assert_eq!(reply_kind(&result), "result");
    assert_eq!(
        result.get("status").and_then(JsonValue::as_str),
        Some("served")
    );
    c.send(r#"{"cmd":"shutdown"}"#);
    server.shutdown();
    let (_svc, summary) = server.join().expect_clean();
    assert_eq!(summary.results_dropped, 0, "no lost replies: {summary:?}");
    assert_eq!(summary.accepted, report.accepted + 1);
    assert_eq!(summary.results_delivered, report.served + 1);
    assert_eq!(summary.protocol_errors, 0);
}

#[test]
fn shutdown_drains_every_inflight_query_exactly_once() {
    // A far-away flush deadline: nothing flushes on its own, so the
    // five accepted queries are still pending when shutdown arrives.
    let server = start(
        8,
        4,
        ServeConfig {
            batch_max: 64,
            flush_deadline: 1_000_000,
            ..ServeConfig::default()
        },
        NetConfig::default(),
    );
    let mut c = Client::connect(&server);
    for root in 1u64..=5 {
        c.send(&format!("{{\"cmd\":\"query\",\"root\":{root}}}"));
        assert_eq!(reply_kind(&c.recv()), "accepted");
    }
    c.send(r#"{"cmd":"shutdown"}"#);
    assert_eq!(reply_kind(&c.recv()), "shutting_down");

    // Exactly the five results, then the final shutdown line, then EOF.
    let mut roots = Vec::new();
    for _ in 0..5 {
        let r = c.recv();
        assert_eq!(reply_kind(&r), "result");
        assert_eq!(r.get("status").and_then(JsonValue::as_str), Some("served"));
        roots.push(r.get("root").and_then(JsonValue::as_u64).unwrap());
    }
    roots.sort_unstable();
    assert_eq!(roots, vec![1, 2, 3, 4, 5]);
    let bye = c.recv();
    assert_eq!(reply_kind(&bye), "shutdown");
    assert_eq!(bye.get("drained").and_then(JsonValue::as_u64), Some(5));
    assert!(c.try_recv().is_none(), "no further replies after shutdown");

    let (svc, summary) = server.join().expect_clean();
    assert_eq!(summary.shutdown_drained, 5);
    assert_eq!(summary.results_delivered, 5);
    assert_eq!(summary.results_dropped, 0);
    assert_eq!(svc.report().current_queue_depth, 0);
}

#[test]
fn connection_cap_refuses_excess_clients_with_a_typed_error() {
    let server = start(
        8,
        4,
        ServeConfig::default(),
        NetConfig {
            max_connections: 2,
            ..NetConfig::default()
        },
    );
    let mut c1 = Client::connect(&server);
    let mut c2 = Client::connect(&server);
    // A stats round-trip proves both connections are registered before
    // the third attempt arrives.
    for c in [&mut c1, &mut c2] {
        c.send(r#"{"cmd":"stats"}"#);
        assert_eq!(reply_kind(&c.recv()), "stats");
    }
    let mut c3 = Client::connect(&server);
    let refusal = c3.recv();
    assert_eq!(reply_kind(&refusal), "error");
    assert_eq!(
        refusal.get("kind").and_then(JsonValue::as_str),
        Some("refused")
    );
    assert!(c3.try_recv().is_none(), "refused connection is closed");

    // The registered clients are unaffected.
    c1.send(r#"{"cmd":"query","root":3}"#);
    assert_eq!(reply_kind(&c1.recv()), "accepted");
    assert_eq!(reply_kind(&c1.recv()), "result");

    server.shutdown();
    let (_svc, summary) = server.join().expect_clean();
    assert_eq!(summary.connections, 2);
    assert_eq!(summary.refused_connections, 1);
}

#[test]
fn malformed_unknown_and_oversized_lines_get_typed_errors() {
    let server = start(8, 4, ServeConfig::default(), NetConfig::default());
    let mut c = Client::connect(&server);

    c.send("this is not json");
    let e = c.recv();
    assert_eq!(reply_kind(&e), "error");
    assert_eq!(e.get("kind").and_then(JsonValue::as_str), Some("bad_json"));

    c.send(r#"{"cmd":"frobnicate"}"#);
    let e = c.recv();
    assert_eq!(
        e.get("kind").and_then(JsonValue::as_str),
        Some("unknown_cmd")
    );

    c.send(r#"{"cmd":"query","root":"seven"}"#);
    let e = c.recv();
    assert_eq!(
        e.get("kind").and_then(JsonValue::as_str),
        Some("bad_request")
    );

    // Recoverable errors leave the connection usable.
    c.send(r#"{"cmd":"query","root":7}"#);
    assert_eq!(reply_kind(&c.recv()), "accepted");
    assert_eq!(reply_kind(&c.recv()), "result");

    // An oversized line loses framing: typed error, then disconnect.
    let huge = format!(
        "{{\"cmd\":\"query\",\"root\":1,\"pad\":\"{}\"}}",
        "x".repeat(sunbfs_serve::MAX_REQUEST_BYTES)
    );
    c.send(&huge);
    let e = c.recv();
    assert_eq!(reply_kind(&e), "error");
    assert_eq!(e.get("kind").and_then(JsonValue::as_str), Some("oversized"));
    assert!(c.try_recv().is_none(), "oversized sender is disconnected");

    // The server itself is unharmed: a new connection still serves.
    let mut c2 = Client::connect(&server);
    c2.send(r#"{"cmd":"query","root":2}"#);
    assert_eq!(reply_kind(&c2.recv()), "accepted");
    assert_eq!(reply_kind(&c2.recv()), "result");

    server.shutdown();
    let (_svc, summary) = server.join().expect_clean();
    assert_eq!(summary.protocol_errors, 4);
    assert_eq!(summary.results_dropped, 0);
}

#[test]
fn idle_clients_hit_the_read_deadline_and_are_disconnected() {
    let server = start(
        8,
        4,
        ServeConfig::default(),
        NetConfig {
            read_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        },
    );
    let mut idle = Client::connect(&server);
    let t0 = Instant::now();
    // Send nothing: the read deadline must cut us loose (EOF), long
    // before any test-harness timeout.
    assert!(idle.try_recv().is_none(), "idle connection must be closed");
    assert!(
        t0.elapsed() >= Duration::from_millis(150),
        "closed before the deadline could have fired"
    );
    assert!(t0.elapsed() < Duration::from_secs(30));

    // The engine never noticed: a live client still gets served.
    let mut live = Client::connect(&server);
    live.send(r#"{"cmd":"query","root":5}"#);
    assert_eq!(reply_kind(&live.recv()), "accepted");
    assert_eq!(reply_kind(&live.recv()), "result");
    server.shutdown();
    let (_svc, summary) = server.join().expect_clean();
    assert_eq!(summary.connections, 2);
}

#[test]
fn per_connection_inflight_cap_rejects_with_a_backoff_hint() {
    let server = start(
        8,
        4,
        ServeConfig {
            batch_max: 64,
            flush_deadline: 1_000_000,
            ..ServeConfig::default()
        },
        NetConfig {
            inflight_cap: 2,
            ..NetConfig::default()
        },
    );
    let mut c = Client::connect(&server);
    c.send(r#"{"cmd":"query","root":1}"#);
    assert_eq!(reply_kind(&c.recv()), "accepted");
    c.send(r#"{"cmd":"query","root":2}"#);
    assert_eq!(reply_kind(&c.recv()), "accepted");

    // Two unanswered queries on this connection: the third is refused
    // for fairness even though the service queue itself has room.
    c.send(r#"{"cmd":"query","root":3}"#);
    let rejected = c.recv();
    assert_eq!(reply_kind(&rejected), "rejected");
    assert_eq!(
        rejected.get("reason").and_then(JsonValue::as_str),
        Some("client_backlog")
    );
    assert_eq!(
        rejected
            .get("retry_after_ticks")
            .and_then(JsonValue::as_u64),
        Some(1)
    );

    // Draining completes the two in-flight queries and frees the cap.
    c.send(r#"{"cmd":"drain"}"#);
    assert_eq!(reply_kind(&c.recv()), "result");
    assert_eq!(reply_kind(&c.recv()), "result");
    assert_eq!(reply_kind(&c.recv()), "drained");
    c.send(r#"{"cmd":"query","root":3}"#);
    assert_eq!(reply_kind(&c.recv()), "accepted");

    server.shutdown();
    let (_svc, summary) = server.join().expect_clean();
    assert_eq!(summary.rejected_backlog, 1);
    assert_eq!(summary.accepted, 3);
}
