//! Quickstart: the whole pipeline in thirty lines.
//!
//! Generates a SCALE-12 Graph 500 R-MAT graph (4096 vertices, 65536
//! edges), partitions it 1.5D over a 2×2 simulated mesh, runs BFS from
//! three roots, validates each traversal, and prints the headline
//! numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sunbfs::driver::{run_benchmark, RunConfig};

fn main() {
    let config = RunConfig::small_test(12, 4);
    println!(
        "sunbfs quickstart: SCALE {} ({} vertices, {} edges) on a {}x{} mesh",
        config.scale,
        1u64 << config.scale,
        (config.edge_factor as u64) << config.scale,
        config.mesh.rows,
        config.mesh.cols,
    );

    let report = run_benchmark(&config).expect("benchmark must pass");

    println!("validated: {}", report.validated);
    for run in &report.runs {
        println!(
            "  root {:>6}: visited {:>6} vertices, {:>8} edges, {:>8.3} ms simulated -> {:.3} GTEPS",
            run.root,
            run.visited_vertices,
            run.traversed_edges,
            run.sim_seconds * 1e3,
            run.gteps,
        );
    }
    println!("harmonic-mean GTEPS: {:.3}", report.harmonic_mean_gteps());

    println!("\nsimulated time breakdown (summed over ranks and roots):");
    let times = report.total_times();
    let total = times.total().as_secs().max(f64::MIN_POSITIVE);
    for (category, secs) in times.entries() {
        if secs / total > 0.005 {
            println!("  {category:<40} {:>6.1}%", 100.0 * secs / total);
        }
    }
}
