//! Machine constants — the single source of truth for the cost model.
//!
//! The paper's performance results are functions of a few hardware
//! constants of New Sunway: the SW26010-Pro chip (§3.1) and the
//! oversubscribed fat-tree interconnect (§3.2). Every simulated kernel
//! and collective reads its constants from one [`MachineConfig`] value
//! so that ablation studies change exactly one knob at a time.
//!
//! Defaults reproduce the paper's published numbers:
//! * 6 core groups × 64 CPEs per node, 256 KB LDM per CPE,
//! * 249.0 GB/s measured node DMA bandwidth (§3.1.1),
//! * RMA latency far below main-memory latency (§3.1.2),
//! * 200 Gbps (25 GB/s) NIC per node, 256-node supernodes, 8× fat-tree
//!   oversubscription (§6.1.1).

/// Hardware constants of the simulated machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    // ---- SW26010-Pro chip ----
    /// Core groups per processor (6 on SW26010-Pro).
    pub cgs_per_node: usize,
    /// Computing Processing Elements per core group (64).
    pub cpes_per_cg: usize,
    /// Local Data Memory per CPE in bytes (256 KiB).
    pub ldm_bytes: usize,
    /// Aggregate chip DMA bandwidth, bytes/second (249.0 GB/s measured).
    pub dma_bandwidth: f64,
    /// Minimum DMA grain for good bandwidth utilization, bytes (§4.4).
    pub dma_grain_bytes: usize,
    /// Latency of one GLD/GST (uncached direct main-memory access), seconds.
    pub gld_latency: f64,
    /// Latency of one RMA get/put between CPE LDMs in a CG, seconds.
    pub rma_latency: f64,
    /// Peak RMA bandwidth per CPE pair, bytes/second.
    pub rma_bandwidth: f64,
    /// CPE clock, Hz.
    pub cpe_hz: f64,
    /// Cycles a CPE spends per item of scalar work (compare/mask/insert).
    pub cpe_cycles_per_item: f64,
    /// MPE cost per random main-memory item access, seconds (no shared
    /// cache: every scattered write is a round trip).
    pub mpe_item_cost: f64,
    /// Cost of one inefficient cross-CG atomic operation, seconds (§3.1.2:
    /// atomics go through main memory).
    pub atomic_cost: f64,

    // ---- interconnect ----
    /// NIC injection bandwidth per node, bytes/second (200 Gbps).
    pub nic_bandwidth: f64,
    /// Fat-tree oversubscription factor for inter-supernode traffic (8×).
    pub oversubscription: f64,
    /// Per-message software+switch latency, seconds.
    pub net_latency: f64,
    /// Nodes per supernode (informational; the mesh maps rows to
    /// supernodes, so inter-row traffic is inter-supernode traffic).
    pub nodes_per_supernode: usize,
}

impl MachineConfig {
    /// Constants of New Sunway as published in the paper.
    pub fn new_sunway() -> Self {
        MachineConfig {
            cgs_per_node: 6,
            cpes_per_cg: 64,
            ldm_bytes: 256 * 1024,
            dma_bandwidth: 249.0e9,
            dma_grain_bytes: 1024,
            gld_latency: 540e-9,
            rma_latency: 60e-9,
            rma_bandwidth: 4.0e9,
            cpe_hz: 2.25e9,
            cpe_cycles_per_item: 8.0,
            mpe_item_cost: 197e-9,
            atomic_cost: 600e-9,
            nic_bandwidth: 25.0e9,
            oversubscription: 8.0,
            net_latency: 2.0e-6,
            nodes_per_supernode: 256,
        }
    }

    /// Total CPEs on one node.
    #[inline]
    pub fn cpes_per_node(&self) -> usize {
        self.cgs_per_node * self.cpes_per_cg
    }

    /// DMA bandwidth available to one core group when `active_cgs` core
    /// groups stream concurrently.
    #[inline]
    pub fn dma_bandwidth_per_cg(&self, active_cgs: usize) -> f64 {
        self.dma_bandwidth / active_cgs.max(1) as f64
    }

    /// Uplink capacity of one supernode toward the top-level fat tree,
    /// bytes/second.
    #[inline]
    pub fn supernode_uplink(&self, nodes_in_supernode: usize) -> f64 {
        nodes_in_supernode as f64 * self.nic_bandwidth / self.oversubscription
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::new_sunway()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let m = MachineConfig::new_sunway();
        assert_eq!(m.cgs_per_node, 6);
        assert_eq!(m.cpes_per_cg, 64);
        assert_eq!(m.cpes_per_node(), 384);
        assert_eq!(m.ldm_bytes, 256 * 1024);
        assert_eq!(m.dma_bandwidth, 249.0e9);
        assert_eq!(m.oversubscription, 8.0);
        assert_eq!(m.nodes_per_supernode, 256);
    }

    #[test]
    fn rma_beats_gld() {
        let m = MachineConfig::new_sunway();
        assert!(
            m.rma_latency < m.gld_latency / 4.0,
            "RMA must be much faster than GLD"
        );
    }

    #[test]
    fn dma_share_divides() {
        let m = MachineConfig::new_sunway();
        assert_eq!(m.dma_bandwidth_per_cg(6), m.dma_bandwidth / 6.0);
        assert_eq!(m.dma_bandwidth_per_cg(0), m.dma_bandwidth);
    }

    #[test]
    fn supernode_uplink_applies_oversubscription() {
        let m = MachineConfig::new_sunway();
        let up = m.supernode_uplink(256);
        assert_eq!(up, 256.0 * 25.0e9 / 8.0);
    }
}
