//! `bfs_server` — the BFS query service speaking newline-delimited
//! JSON on stdin/stdout.
//!
//! One JSON object per input line; one (or more) JSON objects per
//! output line. The protocol (documented in `docs/SERVE.md`):
//!
//! ```text
//! {"cmd":"load","scale":10,"ranks":4}          build the resident graph
//! {"cmd":"query","root":5}                     submit one root, tick once
//! {"cmd":"batch","roots":[1,2,3]}              submit many, drain
//! {"cmd":"stats"}                              full ServeReport JSON
//! {"cmd":"drain"}                              flush everything pending
//! ```
//!
//! `load` knobs (all optional): `scale` (10), `ranks` (4),
//! `edge_factor` (16), `e_threshold` (256), `h_threshold` (64),
//! `seed` (42), `queue_capacity` (256), `batch_max` (64),
//! `flush_deadline` (4), `baseline` (false — measure the sequential
//! path per batch and report the speedup in `stats`), `path` (a
//! `sunbfs-store` file to open instead of rebuilding — built and saved
//! first when it doesn't exist yet, per `docs/STORE.md`).
//!
//! A mistyped knob (wrong JSON type, out of range, `h_threshold` above
//! `e_threshold`) is a typed `{"reply":"error",...}` refusal, never a
//! silent fall-back to the default value.
//!
//! Every reply carries a `"reply"` discriminator; errors are
//! `{"reply":"error","detail":...}` and never kill the server. EOF on
//! stdin exits 0.
//!
//! ```text
//! printf '%s\n' '{"cmd":"load","scale":9,"ranks":4}' \
//!     '{"cmd":"batch","roots":[1,2,3]}' '{"cmd":"stats"}' \
//!     | cargo run --release --example bfs_server
//! ```

use std::io::BufRead;

use sunbfs::common::{JsonValue, MachineConfig, ToJson};
use sunbfs::core::EngineConfig;
use sunbfs::net::{FaultPlan, MeshShape};
use sunbfs::part::Thresholds;
use sunbfs::serve::{BfsService, QueryResult, QueryStatus, ServeConfig, SessionConfig};

fn main() {
    let stdin = std::io::stdin();
    let mut service: Option<BfsService> = None;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        for reply in handle_line(&mut service, &line) {
            println!("{}", reply.render());
        }
    }
}

/// Dispatch one input line to zero-or-more reply objects.
fn handle_line(service: &mut Option<BfsService>, line: &str) -> Vec<JsonValue> {
    let cmd = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => return vec![error(format!("bad JSON: {e}"))],
    };
    match cmd.get("cmd").and_then(|c| c.as_str()) {
        Some("load") => vec![handle_load(service, &cmd)],
        Some("query") => handle_query(service, &cmd),
        Some("batch") => handle_batch(service, &cmd),
        Some("stats") => vec![handle_stats(service)],
        Some("drain") => handle_drain(service),
        Some(other) => vec![error(format!("unknown cmd {other:?}"))],
        None => vec![error("missing \"cmd\" field".into())],
    }
}

fn error(detail: String) -> JsonValue {
    JsonValue::object()
        .field("reply", "error")
        .field("detail", detail)
        .build()
}

/// A numeric knob with a default and an inclusive range. A knob that is
/// present but mistyped (not an unsigned integer) or out of range is a
/// refusal, not a silent fall-back — `{"scale":"14"}` must never run a
/// default-scale build.
fn knob(cmd: &JsonValue, key: &str, default: u64, min: u64, max: u64) -> Result<u64, String> {
    match cmd.get(key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(n) if (min..=max).contains(&n) => Ok(n),
            Some(n) => Err(format!(
                "load knob {key:?} must be in {min}..={max}, got {n}"
            )),
            None => Err(format!(
                "load knob {key:?} must be an unsigned integer, got {}",
                v.render()
            )),
        },
    }
}

/// A boolean knob with a default; mistyped values are refused.
fn bool_knob(cmd: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match cmd.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("load knob {key:?} must be a boolean, got {}", v.render())),
    }
}

/// The optional `path` knob: a store file to open instead of rebuilding.
fn path_knob(cmd: &JsonValue) -> Result<Option<String>, String> {
    match cmd.get("path") {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("load knob \"path\" must be a string, got {}", v.render())),
    }
}

/// Validate every `load` knob into the two configs plus the optional
/// store path. Any mistyped field refuses the whole command.
fn load_configs(cmd: &JsonValue) -> Result<(SessionConfig, ServeConfig, Option<String>), String> {
    let scale = knob(cmd, "scale", 10, 1, 40)?;
    let ranks = knob(cmd, "ranks", 4, 1, 1 << 16)?;
    let e_threshold = knob(cmd, "e_threshold", 256, 0, u64::from(u32::MAX))?;
    let h_threshold = knob(cmd, "h_threshold", 64, 0, u64::from(u32::MAX))?;
    if h_threshold > e_threshold {
        // Thresholds::new panics on h > e; refuse before constructing.
        return Err(format!(
            "load knob \"h_threshold\" ({h_threshold}) must not exceed \
             \"e_threshold\" ({e_threshold})"
        ));
    }
    let session_cfg = SessionConfig {
        scale: scale as u32,
        edge_factor: knob(cmd, "edge_factor", 16, 1, u64::from(u32::MAX))? as u32,
        mesh: MeshShape::near_square(ranks as usize),
        thresholds: Thresholds::new(e_threshold as u32, h_threshold as u32),
        engine: EngineConfig::default(),
        machine: MachineConfig::new_sunway(),
        seed: knob(cmd, "seed", 42, 0, u64::MAX)?,
        max_load_attempts: 3,
    };
    let serve_cfg = ServeConfig {
        queue_capacity: knob(cmd, "queue_capacity", 256, 1, 1 << 20)? as usize,
        batch_max: knob(
            cmd,
            "batch_max",
            sunbfs::serve::MAX_BATCH as u64,
            1,
            sunbfs::serve::MAX_BATCH as u64,
        )? as usize,
        flush_deadline: knob(cmd, "flush_deadline", 4, 0, u64::from(u32::MAX))? as u32,
        max_root_retries: 2,
        measure_baseline: bool_knob(cmd, "baseline", false)?,
    };
    Ok((session_cfg, serve_cfg, path_knob(cmd)?))
}

fn handle_load(service: &mut Option<BfsService>, cmd: &JsonValue) -> JsonValue {
    let (session_cfg, serve_cfg, path) = match load_configs(cmd) {
        Ok(parts) => parts,
        Err(detail) => return error(detail),
    };
    let (scale, ranks) = (session_cfg.scale, session_cfg.mesh.num_ranks());
    // Fault injection (for drills) comes from SUNBFS_FAULT_PLAN, the
    // same env the benchmark driver honors.
    let plan = match FaultPlan::from_env() {
        Ok(p) => p.unwrap_or_else(FaultPlan::none),
        Err(e) => return error(format!("bad SUNBFS_FAULT_PLAN: {e}")),
    };
    let session = match path {
        Some(path) => sunbfs::serve::GraphSession::open_or_build(
            std::path::Path::new(&path),
            session_cfg,
            plan,
        ),
        None => sunbfs::serve::GraphSession::load(session_cfg, plan).map_err(Into::into),
    };
    match session {
        Ok(session) => {
            let loaded = JsonValue::object()
                .field("reply", "loaded")
                .field("scale", u64::from(scale))
                .field("ranks", ranks as u64)
                .field("vertices", session.num_vertices())
                .field("build_sim_seconds", session.build_sim_seconds)
                .field("load_sim_seconds", session.load_sim_seconds)
                .field("load_attempts", u64::from(session.load_attempts))
                .field(
                    "store",
                    match &session.store {
                        Some(s) => s.to_json(),
                        None => JsonValue::Null,
                    },
                )
                .build();
            *service = Some(BfsService::new(session, serve_cfg));
            loaded
        }
        Err(e) => error(format!("load failed: {e}")),
    }
}

/// Render a completed query (histogram and parent handle length, not
/// the full parent array — trees at serving scale dwarf a reply line).
fn result_json(r: &QueryResult) -> JsonValue {
    let mut o = JsonValue::object()
        .field("reply", "result")
        .field("id", r.id.0)
        .field("root", r.root)
        .field("batch_id", r.batch_id)
        .field("status", r.status.label())
        .field("visited", r.visited)
        .field(
            "depth_histogram",
            JsonValue::Array(
                r.depth_histogram
                    .iter()
                    .map(|&c| JsonValue::from(c))
                    .collect(),
            ),
        )
        .field(
            "parents_len",
            r.parents.as_ref().map_or(0, |p| p.len()) as u64,
        )
        .field("sim_latency_s", r.sim_latency_s)
        .field("via_fallback", r.via_fallback);
    if let QueryStatus::Quarantined(q) = &r.status {
        o = o
            .field("quarantine", q.label)
            .field("detail", q.detail.clone());
    }
    o.build()
}

fn handle_query(service: &mut Option<BfsService>, cmd: &JsonValue) -> Vec<JsonValue> {
    let Some(svc) = service.as_mut() else {
        return vec![error(
            "no graph loaded (send {\"cmd\":\"load\"} first)".into(),
        )];
    };
    let Some(root) = cmd.get("root").and_then(|v| v.as_u64()) else {
        return vec![error("query needs a numeric \"root\"".into())];
    };
    let mut replies = Vec::new();
    match svc.submit(root) {
        Ok(id) => replies.push(
            JsonValue::object()
                .field("reply", "accepted")
                .field("id", id.0)
                .field("root", root)
                .field("queue_depth", svc.queue_depth() as u64)
                .build(),
        ),
        Err(reason) => {
            return vec![JsonValue::object()
                .field("reply", "rejected")
                .field("root", root)
                .field("reason", reason.label())
                .field("detail", reason.to_string())
                .build()]
        }
    }
    // One tick per submission: full batches flush immediately; partial
    // batches age toward the deadline.
    for r in svc.tick() {
        replies.push(result_json(&r));
    }
    replies
}

fn handle_batch(service: &mut Option<BfsService>, cmd: &JsonValue) -> Vec<JsonValue> {
    let Some(svc) = service.as_mut() else {
        return vec![error(
            "no graph loaded (send {\"cmd\":\"load\"} first)".into(),
        )];
    };
    let Some(roots) = cmd.get("roots").and_then(|v| v.as_array()) else {
        return vec![error("batch needs a \"roots\" array".into())];
    };
    let mut replies = Vec::new();
    for v in roots {
        let Some(root) = v.as_u64() else {
            replies.push(error(format!("non-numeric root {}", v.render())));
            continue;
        };
        match svc.submit(root) {
            Ok(id) => replies.push(
                JsonValue::object()
                    .field("reply", "accepted")
                    .field("id", id.0)
                    .field("root", root)
                    .field("queue_depth", svc.queue_depth() as u64)
                    .build(),
            ),
            Err(reason) => replies.push(
                JsonValue::object()
                    .field("reply", "rejected")
                    .field("root", root)
                    .field("reason", reason.label())
                    .field("detail", reason.to_string())
                    .build(),
            ),
        }
    }
    for r in svc.drain() {
        replies.push(result_json(&r));
    }
    replies
}

fn handle_stats(service: &mut Option<BfsService>) -> JsonValue {
    match service {
        Some(svc) => JsonValue::object()
            .field("reply", "stats")
            .field("serve", svc.report().to_json())
            .build(),
        None => error("no graph loaded (send {\"cmd\":\"load\"} first)".into()),
    }
}

fn handle_drain(service: &mut Option<BfsService>) -> Vec<JsonValue> {
    let Some(svc) = service.as_mut() else {
        return vec![error(
            "no graph loaded (send {\"cmd\":\"load\"} first)".into(),
        )];
    };
    let mut replies: Vec<JsonValue> = svc.drain().iter().map(result_json).collect();
    replies.push(
        JsonValue::object()
            .field("reply", "drained")
            .field("queue_depth", svc.queue_depth() as u64)
            .build(),
    );
    replies
}
