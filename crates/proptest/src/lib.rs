//! Offline drop-in subset of the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! the real `proptest` cannot be fetched. The property tests only use a
//! small, well-defined slice of its API — the `proptest!` macro, range
//! and `any::<T>()` strategies, tuple composition, and
//! `prop::collection::vec` — so this crate reimplements exactly that
//! slice on top of a deterministic SplitMix64 stream.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its seed and case index
//!   instead; rerunning is deterministic, so the failure reproduces,
//! * **deterministic seeding** — the stream is derived from the test
//!   name, so runs are reproducible across machines and never flaky,
//! * `prop_assert*` delegate to `assert*` (a failure panics directly).

use std::ops::Range;

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream for value generation.
#[derive(Clone, Copy, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (Lemire widening multiply).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a — stable test-name hashing for seed derivation.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy wrapper for [`Arbitrary`] types.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full domain of `T` as a strategy (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Combinator namespaces mirroring `proptest::prop`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of a length drawn from `sizes`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start).max(1) as u64;
            let len = self.sizes.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }
}

/// `proptest::prelude::prop` namespace.
pub mod prop {
    pub use super::collection;
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Any, Arbitrary, ProptestConfig, Strategy, TestRng,
    };
}

/// Delegates to [`assert!`]; a failing property panics with its message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Delegates to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Delegates to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its precondition fails (no replacement
/// case is drawn; the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// The `proptest!` test-definition macro: each `fn name(pat in strategy,
/// ...) { body }` becomes a `#[test]` running `cases` deterministic
/// random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Expansion backend for [`proptest!`]; the config expression is bound
/// outside any repetition so every generated test can reference it.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::new(
                        __seed ^ (__case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                    );
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    // The body runs in an immediately-invoked closure so
                    // `prop_assume!` can skip the case with `return`.
                    let mut __run = || { $body };
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let y = (3usize..4).generate(&mut rng);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = TestRng::new(seed);
            (0..16)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples_and_vecs(
            (a, b) in (0u64..10, 0u64..10),
            mut v in prop::collection::vec(any::<u64>(), 0..20),
            flag in any::<bool>(),
        ) {
            prop_assume!(a + b < 100);
            v.push(a + b);
            prop_assert!(v.len() <= 20);
            prop_assert_eq!(flag, flag);
        }
    }
}
