//! Property test for the `CommStats` merge/diff algebra.
//!
//! `diff` is load-bearing for per-query comm attribution in the serve
//! layer: a batch's comm volume is `recorder_after.diff(recorder_before)`.
//! The invariant that makes that attribution exact is the round trip
//! `(a ⊎ b) − b = a` for any two recorders — merging never loses keys
//! and diffing recovers exactly the pre-merge state.

use proptest::prelude::*;
use sunbfs_net::{CommStats, Scope};

/// A recorder built from an arbitrary `(scope, op, bytes)` sequence.
fn record_all(events: &[(u8, u8, u64)]) -> CommStats {
    // Small op alphabet so sequences collide on keys (the interesting
    // case: counts and bytes accumulate instead of staying at 1).
    const OPS: [&str; 4] = [
        "hubsync.EH2EH",
        "comm.alltoallv.L2L",
        "heur.counts",
        "reduce.parent",
    ];
    let mut stats = CommStats::new();
    for &(scope, op, bytes) in events {
        let scope = match scope % 3 {
            0 => Scope::World,
            1 => Scope::Row,
            _ => Scope::Col,
        };
        stats.record(scope, OPS[op as usize % OPS.len()], bytes % (1 << 20));
    }
    stats
}

proptest! {
    #[test]
    fn merge_then_diff_round_trips(
        a_events in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..64),
        b_events in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..64),
    ) {
        let a_before = record_all(&a_events);
        let b = record_all(&b_events);
        let mut a = a_before.clone();
        a.merge(&b);
        prop_assert_eq!(a.diff(&b), a_before);
        // And the degenerate round trips on each side.
        prop_assert_eq!(a.diff(&a_before), b);
        prop_assert_eq!(a_before.diff(&CommStats::new()), a_before.clone());
    }

    #[test]
    fn merge_totals_are_additive(
        a_events in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..64),
        b_events in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..64),
    ) {
        let a_before = record_all(&a_events);
        let b = record_all(&b_events);
        let mut a = a_before.clone();
        a.merge(&b);
        let total = a.total_with_prefix("");
        let ta = a_before.total_with_prefix("");
        let tb = b.total_with_prefix("");
        prop_assert_eq!(total.count, ta.count + tb.count);
        prop_assert_eq!(total.bytes, ta.bytes + tb.bytes);
    }
}
