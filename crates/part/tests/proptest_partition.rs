//! Property-based tests of the 1.5D partition builder: for any random
//! multigraph, mesh shape, and threshold setting, the six components
//! must exactly cover the input's undirected edge set, land on the
//! storage ranks §4.1 prescribes, and agree across ranks on the hub
//! directory.

use proptest::prelude::*;
use std::collections::BTreeSet;
use sunbfs_common::{Edge, MachineConfig};
use sunbfs_net::{Cluster, MeshShape, Topology};
use sunbfs_part::{build_1p5d, RankPartition, Thresholds};

fn build(rows: usize, cols: usize, n: u64, edges: &[Edge], th: Thresholds) -> Vec<RankPartition> {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        build_1p5d(ctx, n, &chunk, th)
    })
}

fn canonical(edges: &[Edge]) -> BTreeSet<(u64, u64)> {
    edges
        .iter()
        .filter(|e| !e.is_self_loop())
        .map(|e| {
            let c = e.canonical();
            (c.u, c.v)
        })
        .collect()
}

fn reassemble(parts: &[RankPartition]) -> BTreeSet<(u64, u64)> {
    let dir = &parts[0].directory;
    let canon = |a: u64, b: u64| if a <= b { (a, b) } else { (b, a) };
    let mut out = BTreeSet::new();
    for p in parts {
        for (hs, hd) in p.eh_by_src.iter_edges() {
            out.insert(canon(dir.vertex_of(hs as u32), dir.vertex_of(hd as u32)));
        }
        for (h, l) in p.el_by_hub.iter_edges() {
            out.insert(canon(dir.vertex_of(h as u32), l));
        }
        for (h, l) in p.lh_by_hub.iter_edges() {
            out.insert(canon(dir.vertex_of(h as u32), l));
        }
        for (u, v) in p.l2l.iter_edges() {
            out.insert(canon(u, v));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Coverage: every input edge appears in exactly the right component
    /// set, for arbitrary graphs / meshes / thresholds.
    #[test]
    fn components_cover_input(
        rows in 1usize..3,
        cols in 1usize..4,
        n in 16u64..200,
        raw_edges in prop::collection::vec((0u64..200, 0u64..200), 1..600),
        e_th in 1u32..100,
        h_div in 1u32..10,
    ) {
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let h_th = (e_th / h_div).max(1);
        let th = Thresholds::new(e_th, h_th);
        let parts = build(rows, cols, n, &edges, th);
        prop_assert_eq!(reassemble(&parts), canonical(&edges));

        // The H2L copy mirrors the L2H copy globally.
        let h2l_total: u64 = parts.iter().map(|p| p.stats.h2l).sum();
        let l2h_total: u64 = parts.iter().map(|p| p.stats.l2h).sum();
        prop_assert_eq!(h2l_total, l2h_total);
        // E2L and L2E views index the same undirected edges.
        let e2l: u64 = parts.iter().map(|p| p.stats.e2l).sum();
        let l2e: u64 = parts.iter().map(|p| p.stats.l2e).sum();
        prop_assert_eq!(e2l, l2e);
    }

    /// Storage-location invariants: each component's keys live where
    /// §4.1 says they live.
    #[test]
    fn storage_locations_respected(
        rows in 1usize..3,
        cols in 1usize..3,
        n in 16u64..150,
        raw_edges in prop::collection::vec((0u64..150, 0u64..150), 1..400),
    ) {
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let th = Thresholds::new(40, 8);
        let parts = build(rows, cols, n, &edges, th);
        let topo = Topology::new(MeshShape::new(rows, cols));
        let dir = &parts[0].directory;
        for p in &parts {
            let my_range = p.owned_range();
            let (my_row, my_col) = (topo.row_of(p.rank), topo.col_of(p.rank));
            for (hs, hd) in p.eh_by_src.iter_edges() {
                prop_assert_eq!(dir.src_col(hs as u32, cols), my_col);
                prop_assert_eq!(dir.dest_row(hd as u32, rows), my_row);
            }
            for (l, _) in p.el_by_local.iter_edges() {
                prop_assert!(my_range.contains(&l));
            }
            for (h, l) in p.h2l_by_hub.iter_edges() {
                let hv = dir.vertex_of(h as u32);
                prop_assert_eq!(topo.row_of(p.dist.owner(l)), my_row);
                prop_assert_eq!(topo.col_of(p.dist.owner(hv)), my_col);
            }
            for (l, _) in p.lh_by_local.iter_edges() {
                prop_assert!(my_range.contains(&l));
            }
            for (u, _) in p.l2l.iter_edges() {
                prop_assert!(my_range.contains(&u));
            }
        }
    }

    /// The directory is identical on all ranks and classifies by the
    /// exact degree thresholds.
    #[test]
    fn directory_consistency(
        n in 16u64..150,
        raw_edges in prop::collection::vec((0u64..150, 0u64..150), 1..500),
        e_th in 2u32..60,
    ) {
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let th = Thresholds::new(e_th, e_th / 2 + 1);
        let parts = build(2, 2, n, &edges, th);
        // Sequential ground-truth degrees.
        let mut deg = vec![0u32; n as usize];
        for e in &edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let d0 = &parts[0].directory;
        for v in 0..n {
            use sunbfs_part::VertexClass::*;
            let expect = if deg[v as usize] >= th.e { E } else if deg[v as usize] >= th.h { H } else { L };
            prop_assert_eq!(d0.class_of(v), expect, "class mismatch at v={}", v);
        }
        for p in &parts[1..] {
            prop_assert_eq!(p.directory.num_hubs(), d0.num_hubs());
            for h in 0..d0.num_hubs() {
                prop_assert_eq!(p.directory.vertex_of(h), d0.vertex_of(h));
            }
        }
    }
}
