//! Incremental BFS repair after edge inserts.
//!
//! A cached BFS result (parents + depths) computed at epoch `e` stays
//! *almost* correct after an insert batch commits: inserts can only
//! shrink shortest-path distances, never grow them. So instead of
//! recomputing from the root, [`repair_in_place`] seeds a multi-source
//! relaxation from exactly the endpoints whose depth the new edges
//! improve, and propagates improvements outward through the union
//! adjacency (base + delta). When no inserted edge shortens anything —
//! the common case on a scale-free graph — the repair touches nothing
//! and costs one pass over the insert batch.
//!
//! Correctness: the union graph is the base graph plus the insert set;
//! relaxing every inserted edge and transitively every improvement to a
//! fixpoint yields exact unit-weight distances (standard incremental
//! SSSP-insert argument). Each improved vertex adopts the improving
//! neighbor as its parent, so the repaired tree stays Graph 500 valid:
//! every tree edge exists in the union graph and spans exactly one
//! level. The equivalence tests pin depth-identity against
//! [`UnionAdjacency::full_bfs`] on every tested schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sunbfs_common::Edge;

use crate::union::{UnionAdjacency, UNREACHED};

/// What one repair pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Insert endpoints whose depth the batch directly improved.
    pub seeds: u64,
    /// Vertices whose depth improved, transitively (includes seeds).
    pub improved: u64,
    /// Adjacency entries scanned while propagating.
    pub scanned_edges: u64,
}

/// Repair `parents` / `depths` (a result valid for the pre-insert
/// graph) so they are exact for the union graph, given the committed
/// insert `batch` since the result was computed. Both arrays use the
/// global conventions (`INVALID_VERTEX` parent, [`UNREACHED`] depth).
pub fn repair_in_place(
    adj: &UnionAdjacency<'_>,
    batch: &[Edge],
    parents: &mut [u64],
    depths: &mut [u64],
) -> RepairStats {
    let n = depths.len() as u64;
    let mut stats = RepairStats::default();
    // Min-heap on (candidate depth, vertex): improvements settle in
    // depth order, so each vertex's final depth pops first and stale
    // entries are skipped by the `<` guard.
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();

    let try_improve = |heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                       depths: &mut [u64],
                       parents: &mut [u64],
                       from: u64,
                       to: u64|
     -> bool {
        if from >= n || to >= n || depths[from as usize] == UNREACHED {
            return false;
        }
        let cand = depths[from as usize] + 1;
        if cand < depths[to as usize] {
            depths[to as usize] = cand;
            parents[to as usize] = from;
            heap.push(Reverse((cand, to)));
            true
        } else {
            false
        }
    };

    for e in batch.iter().filter(|e| !e.is_self_loop()) {
        if try_improve(&mut heap, depths, parents, e.u, e.v) {
            stats.seeds += 1;
        }
        if try_improve(&mut heap, depths, parents, e.v, e.u) {
            stats.seeds += 1;
        }
    }

    let mut nbrs = Vec::new();
    let mut improved = std::collections::BTreeSet::new();
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > depths[v as usize] {
            continue; // stale entry: v already settled shallower
        }
        improved.insert(v);
        stats.scanned_edges += adj.neighbors_into(v, &mut nbrs);
        for &w in &nbrs {
            try_improve(&mut heap, depths, parents, v, w);
        }
    }
    stats.improved = improved.len() as u64;
    stats
}
