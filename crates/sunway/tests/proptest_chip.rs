//! Property-based tests for the chip kernels: OCS-RMA is a bucket
//! permutation under any configuration, and the Figure-7 LDM mapping is
//! a bijection that round-trips every bit.

use proptest::prelude::*;
use sunbfs_common::{Bitmap, MachineConfig};
use sunbfs_sunway::{ocs_sort_mpe, ocs_sort_rma, OcsConfig, SegmentedBitvec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// OCS-RMA routes every item to its bucket and loses nothing, for
    /// any bucket count, CG count, and buffer size.
    #[test]
    fn ocs_is_a_bucket_permutation(
        items in prop::collection::vec(any::<u64>(), 0..3000),
        nb in 1usize..300,
        cgs in 1usize..8,
        buf in 16usize..1024,
    ) {
        let machine = MachineConfig::new_sunway();
        let cfg = OcsConfig { buffer_bytes: buf, ..Default::default() };
        let (buckets, report) =
            ocs_sort_rma(&machine, &cfg, &items, nb, cgs, |x| (x % nb as u64) as usize);
        prop_assert_eq!(buckets.len(), nb);
        prop_assert_eq!(report.items, items.len() as u64);
        let mut collected: Vec<u64> = Vec::new();
        for (b, bucket) in buckets.iter().enumerate() {
            for &x in bucket {
                prop_assert_eq!((x % nb as u64) as usize, b, "item in wrong bucket");
                collected.push(x);
            }
        }
        let mut a = items.clone();
        a.sort_unstable();
        collected.sort_unstable();
        prop_assert_eq!(a, collected);
    }

    /// RMA and MPE variants agree bucket-by-bucket as multisets.
    #[test]
    fn ocs_variants_agree(items in prop::collection::vec(any::<u64>(), 0..2000), nb in 1usize..64) {
        let machine = MachineConfig::new_sunway();
        let f = |x: &u64| (x % nb as u64) as usize;
        let (a, _) = ocs_sort_mpe(&machine, &items, nb, f);
        let (b, _) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, nb, 6, f);
        for (x, y) in a.into_iter().zip(b) {
            let mut x = x;
            let mut y = y;
            x.sort_unstable();
            y.sort_unstable();
            prop_assert_eq!(x, y);
        }
    }

    /// More core groups never slow the kernel down (cost monotonicity)
    /// once the input is large enough to amortize the fixed cross-CG
    /// atomic synchronization (tiny inputs legitimately prefer one CG —
    /// the same effect that makes the paper run single-CG kernels for
    /// small message batches).
    #[test]
    fn ocs_time_improves_with_cgs(n in 30_000usize..150_000) {
        let machine = MachineConfig::new_sunway();
        let mut rng = sunbfs_common::SplitMix64::new(n as u64);
        let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let (_, r1) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 64, 1, |x| (x % 64) as usize);
        let (_, r6) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 64, 6, |x| (x % 64) as usize);
        prop_assert!(r6.time.as_secs() <= r1.time.as_secs() * 1.05,
            "6 CGs slower than 1 CG: {} vs {}", r6.time.as_secs(), r1.time.as_secs());
    }

    /// Figure-7 mapping: distinct bits map to distinct (cpe, line,
    /// offset) locations, and a built bitvec equals its source bitmap.
    #[test]
    fn segmented_bitvec_roundtrip(
        len in 1u64..200_000,
        bits in prop::collection::vec(0u64..200_000, 0..100),
        cpes in 1usize..100,
    ) {
        let mut bm = Bitmap::new(len);
        for &b in &bits {
            bm.set(b % len);
        }
        let seg = SegmentedBitvec::from_bitmap(&bm, cpes);
        for i in 0..len {
            prop_assert_eq!(seg.get(i), bm.get(i), "bit {} mismatch", i);
        }
        // Injectivity of the location map on the set bits.
        let locs: std::collections::HashSet<(usize, usize, u64)> = bm
            .iter_ones()
            .map(|b| {
                let l = seg.location_of(b);
                (l.cpe, l.local_line, l.offset_in_line)
            })
            .collect();
        prop_assert_eq!(locs.len() as u64, bm.count_ones());
    }
}
