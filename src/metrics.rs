//! Structured JSON metrics for every benchmark run.
//!
//! Turns a [`BenchmarkReport`] into one machine-readable record —
//! the perf trajectory the roadmap regression-gates on — and writes it
//! to `BENCH_<scale>_<rows>x<cols>.json`. Field semantics and the
//! `sub.*` / `comm.*` / `hubsync.*` prefix convention are documented in
//! `docs/METRICS.md`; the schema itself is pinned by a golden-file test
//! (`tests/metrics_json.rs`).

use std::io::Write as _;
use std::path::Path;

use sunbfs_common::{JsonValue, TimeAccumulator, ToJson};
use sunbfs_core::IterationStats;
use sunbfs_net::MeshShape;
use sunbfs_part::ComponentStats;
use sunbfs_sunway::KernelReport;

use crate::driver::{
    BenchmarkReport, FaultReport, RecoveryReport, RootRun, RunConfig, WallClockReport,
};

/// Bump when the JSON layout changes shape (adding fields is a bump
/// too: the golden test pins the exact skeleton).
///
/// v2: added the `faults` section (fault injection, retry and
/// quarantine observability) and the `config.faults` /
/// `config.max_root_retries` knobs.
///
/// v3: added the `recovery` section (exchange-layer retransmits,
/// checkpoints taken, iterations salvaged by resume), the per-root
/// `iterations_salvaged` under `faults.roots`, and the per-iteration
/// `end_op` collective counter.
///
/// v4: added the `serve` section (query-service observability: batch
/// occupancy histogram, queue depths, per-query latencies, batched vs
/// sequential roots/sec — `null` on the classic per-root driver path)
/// and the `config.serve_batch` / `config.serve_baseline` knobs.
///
/// v5: added the `wall` section (host wall-clock time and real
/// traversed-edges/sec — the `SUNBFS_WORKERS` scaling surface, since
/// simulated metrics are worker-count invariant by contract) and the
/// per-kernel `pool` worker-scaling counters inside every
/// sub-iteration and `kernel_totals` record.
///
/// v6: added the `store` section (persistent partition-store activity:
/// file path, bytes, pages, opened-vs-built, cold-build vs warm-open
/// wall seconds — `null` when no store path was involved), the
/// `config.save_graph` / `config.load_graph` knobs, and the serve
/// section's `load_sim_seconds` (simulated seconds across all build
/// attempts, failed ones included).
///
/// v7: added the `serve_load` artifact family — the TCP saturation
/// record `loadgen` emits (`{"schema_version":7,"serve_load":{...}}`:
/// offered/accepted/rejected rates by rejection class,
/// `retry_after_ticks` hint coverage, p50/p99/p999 end-to-end latency,
/// and the lost/duplicate/unacked/protocol-error invariant counters).
/// The `BenchmarkReport` shape itself is unchanged from v6.
///
/// v8: chaos-hardened serving. The `serve` section gained the health
/// state machine (`health`, `health_transitions`, `rejected_degraded`,
/// `deadline_exceeded`, `ticks`, `availability`, and the `chaos_*`
/// injection counters); `serve_load` gained the retry/deadline client
/// counters (`rejected_degraded`, `rejections_seen`, `retried`,
/// `retry_successes`, `retries_abandoned`, `deadline_exceeded`,
/// `salvaged`); and the `serve_chaos` artifact family was added — the
/// availability record `chaos_soak` emits
/// (`{"schema_version":8,"serve_chaos":{...}}`: availability vs gate,
/// recovery episodes and worst recovery time in ticks, the observed
/// health-state sequence, and the nested load/serve/net views).
/// The `BenchmarkReport` shape itself is unchanged from v6.
///
/// v9: live graph mutations. The `serve` section gained the update
/// counters (`updates_applied`, `update_edges`, `updates_failed`,
/// `epoch`, `compactions`, `repaired_queries`, `repaired_vertices`);
/// `serve_load` gained the client-side update view
/// (`updates_offered`, `updates_committed`, `update_edges`,
/// `updates_rejected`, `epoch_regressions`, `final_epoch`); the `net`
/// transport summary gained `updates_committed` / `update_edges` /
/// `updates_rejected` / `final_epoch`; and the `update_soak` artifact
/// family was added — the live-mutation record `update_soak` emits
/// (`{"schema_version":10,"update_soak":{...}}`: repair-vs-recompute
/// speedup, updates/sec, the equivalence verdict, and the nested
/// `serve_load` view of the mutating TCP phase).
/// The `BenchmarkReport` shape itself is unchanged from v6.
///
/// v10: measured-degree direction heuristics and vectorized bitmap
/// kernels. Every per-iteration `subs.<COMPONENT>` record gained
/// `frontier_edges` / `unexplored_edges` — the measured `m_f` / `m_u`
/// degree masses the component's push/pull decision saw (zeros under
/// the fixed heuristic); the `config.engine` object gained
/// `direction_heuristic` (`"fixed"` | `"measured"`), `alpha_measured`,
/// and `beta_measured`. Traversal results are byte-identical to v9
/// under `direction_heuristic: "fixed"`.
pub const SCHEMA_VERSION: u64 = 10;

/// Ratio bin edges of the partition load-balance histogram: each rank's
/// `total / mean` storage falls into one bin; the last bin is open.
pub const LOAD_BALANCE_BIN_EDGES: [f64; 9] = [0.0, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];

impl BenchmarkReport {
    /// The complete run as one JSON record.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("schema_version", SCHEMA_VERSION)
            .field("config", config_json(&self.config))
            .field("validated", self.validated)
            .field("harmonic_mean_gteps", self.harmonic_mean_gteps())
            .field("mean_gteps", self.mean_gteps())
            .field("time_breakdown", grouped_times(&self.total_times()))
            .field("partition", partition_json(&self.partition_stats))
            .field(
                "roots",
                JsonValue::Array(self.runs.iter().map(root_run_json).collect()),
            )
            .field("faults", faults_json(&self.faults))
            .field("recovery", recovery_json(&self.recovery))
            .field(
                "serve",
                match &self.serve {
                    Some(s) => s.to_json(),
                    None => JsonValue::Null,
                },
            )
            .field(
                "store",
                match &self.store {
                    Some(s) => s.to_json(),
                    None => JsonValue::Null,
                },
            )
            .field("wall", wall_json(&self.wall))
            .build()
    }
}

/// The host wall-clock section: real elapsed time and real
/// traversed-edges/sec. The only section `SUNBFS_WORKERS` is allowed to
/// change — every simulated number is worker-count invariant.
fn wall_json(w: &WallClockReport) -> JsonValue {
    JsonValue::object()
        .field("workers", w.workers)
        .field("available_parallelism", w.available_parallelism)
        .field("total_seconds", w.total_seconds)
        .field("bfs_seconds", w.bfs_seconds)
        .field("traversed_edges", w.traversed_edges)
        .field("edges_per_second", w.edges_per_second)
        .build()
}

/// The self-healing section: what the exchange layer retransmitted and
/// what the checkpoint layer salvaged — the evidence that a fault was
/// absorbed below the retry loop instead of costing a whole root.
fn recovery_json(r: &RecoveryReport) -> JsonValue {
    JsonValue::object()
        .field("retransmits", r.retransmits())
        .field("retransmit_log", r.retransmit_log.to_json())
        .field("checkpoints_taken", r.checkpoints_taken)
        .field("iterations_salvaged", r.iterations_salvaged)
        .build()
}

/// The fault/retry/quarantine section: everything an operator needs to
/// decide whether a degraded run's numbers are still usable.
fn faults_json(f: &FaultReport) -> JsonValue {
    let outcomes = f
        .outcomes
        .iter()
        .map(|o| {
            JsonValue::object()
                .field("root", o.root)
                .field("attempts", o.attempts as u64)
                .field("quarantined", o.quarantined)
                .field("iterations_salvaged", o.iterations_salvaged as u64)
                .build()
        })
        .collect();
    let quarantined = f
        .quarantined
        .iter()
        .map(|q| {
            JsonValue::object()
                .field("root", q.root)
                .field("reason", q.reason.label())
                .field("detail", q.reason.detail())
                .build()
        })
        .collect();
    JsonValue::object()
        .field("degraded", f.degraded())
        .field("total_retries", f.total_retries)
        .field("injected", f.injected.to_json())
        .field("roots", JsonValue::Array(outcomes))
        .field("quarantined", JsonValue::Array(quarantined))
        .build()
}

fn config_json(c: &RunConfig) -> JsonValue {
    JsonValue::object()
        .field("scale", c.scale)
        .field("edge_factor", c.edge_factor)
        .field(
            "mesh",
            JsonValue::object()
                .field("rows", c.mesh.rows)
                .field("cols", c.mesh.cols),
        )
        .field(
            "thresholds",
            JsonValue::object()
                .field("e", c.thresholds.e)
                .field("h", c.thresholds.h),
        )
        .field(
            "engine",
            JsonValue::object()
                .field("alpha_local", c.engine.alpha_local)
                .field("beta_crossing", c.engine.beta_crossing)
                .field("sub_iteration", c.engine.sub_iteration)
                .field("vanilla_alpha", c.engine.vanilla_alpha)
                .field("segmenting", c.engine.segmenting)
                .field("direction_heuristic", c.engine.heuristic.name())
                .field("alpha_measured", c.engine.alpha_measured)
                .field("beta_measured", c.engine.beta_measured),
        )
        .field("seed", c.seed)
        .field("num_roots", c.num_roots)
        .field("validate", c.validate)
        .field(
            "faults",
            JsonValue::object()
                .field("seed", c.faults.seed)
                .field("panics", c.faults.panics)
                .field("stragglers", c.faults.stragglers)
                .field("corruptions", c.faults.corruptions)
                .field("straggler_secs", c.faults.straggler_secs)
                .field("horizon", c.faults.horizon),
        )
        .field("max_root_retries", c.max_root_retries)
        .field("serve_batch", c.serve_batch)
        .field("serve_baseline", c.serve_baseline)
        .field(
            "save_graph",
            match &c.save_graph {
                Some(p) => JsonValue::from(p.as_str()),
                None => JsonValue::Null,
            },
        )
        .field(
            "load_graph",
            match &c.load_graph {
                Some(p) => JsonValue::from(p.as_str()),
                None => JsonValue::Null,
            },
        )
        .build()
}

/// Group flat time categories by their first dotted segment: the
/// existing `sub.*` / `comm.*` / `hubsync.*` / `reduce.*` prefixes
/// become one sub-object each, with a `total_s` per group and overall.
pub fn grouped_times(times: &TimeAccumulator) -> JsonValue {
    // (prefix, categories within it, group total seconds).
    type Group = (String, Vec<(String, JsonValue)>, f64);
    let mut groups: Vec<Group> = Vec::new();
    let mut overall = 0.0;
    for (cat, secs) in times.entries() {
        let prefix = cat.split('.').next().unwrap_or("other").to_string();
        overall += secs;
        match groups.iter_mut().find(|(p, _, _)| *p == prefix) {
            Some((_, cats, total)) => {
                cats.push((cat.to_string(), JsonValue::Float(secs)));
                *total += secs;
            }
            None => groups.push((
                prefix,
                vec![(cat.to_string(), JsonValue::Float(secs))],
                secs,
            )),
        }
    }
    let mut out = JsonValue::object().field("total_s", overall);
    for (prefix, cats, total) in groups {
        let body = JsonValue::Object(
            std::iter::once(("total_s".to_string(), JsonValue::Float(total)))
                .chain(cats)
                .collect(),
        );
        out = out.field(&prefix, body);
    }
    out.build()
}

fn partition_json(stats: &[ComponentStats]) -> JsonValue {
    JsonValue::object()
        .field("per_rank", stats.to_json())
        .field("load_balance", load_balance_histogram(stats))
        .build()
}

/// The Figure 13 raw data condensed: per-rank stored-edge totals binned
/// by their ratio to the mean.
pub fn load_balance_histogram(stats: &[ComponentStats]) -> JsonValue {
    let totals: Vec<u64> = stats.iter().map(ComponentStats::total).collect();
    let n = totals.len().max(1) as f64;
    let mean = totals.iter().sum::<u64>() as f64 / n;
    let min = totals.iter().copied().min().unwrap_or(0);
    let max = totals.iter().copied().max().unwrap_or(0);
    // One bucket per edge pair plus the open last bucket.
    let mut counts = vec![0u64; LOAD_BALANCE_BIN_EDGES.len()];
    for &t in &totals {
        let ratio = if mean > 0.0 { t as f64 / mean } else { 0.0 };
        let mut bin = 0;
        for (i, &lo) in LOAD_BALANCE_BIN_EDGES.iter().enumerate() {
            if ratio >= lo {
                bin = i;
            }
        }
        counts[bin] += 1;
    }
    let bins = LOAD_BALANCE_BIN_EDGES
        .iter()
        .enumerate()
        .map(|(i, &lo)| {
            let hi: JsonValue = match LOAD_BALANCE_BIN_EDGES.get(i + 1) {
                Some(&hi) => JsonValue::Float(hi),
                None => JsonValue::Null,
            };
            JsonValue::object()
                .field("ratio_lo", lo)
                .field("ratio_hi", hi)
                .field("ranks", counts[i])
                .build()
        })
        .collect();
    JsonValue::object()
        .field("mean_edges", mean)
        .field("min_edges", min)
        .field("max_edges", max)
        .field(
            "max_over_mean",
            if mean > 0.0 { max as f64 / mean } else { 0.0 },
        )
        .field("histogram", JsonValue::Array(bins))
        .build()
}

/// Sum each component's OCS kernel work over all iterations of a run.
pub fn kernel_totals(iterations: &[IterationStats]) -> [KernelReport; 6] {
    let mut totals = [KernelReport::default(); 6];
    for it in iterations {
        for (total, sub) in totals.iter_mut().zip(&it.subs) {
            total.join_serial(&sub.kernel);
        }
    }
    totals
}

fn root_run_json(run: &RootRun) -> JsonValue {
    let kernels = JsonValue::Object(
        sunbfs_core::Component::ALL
            .iter()
            .zip(kernel_totals(&run.iterations))
            .map(|(c, k)| (c.name().to_string(), k.to_json()))
            .collect(),
    );
    JsonValue::object()
        .field("root", run.root)
        .field("sim_seconds", run.sim_seconds)
        .field("traversed_edges", run.traversed_edges)
        .field("engine_traversed_edges", run.engine_traversed_edges)
        .field("visited_vertices", run.visited_vertices)
        .field("gteps", run.gteps)
        .field("times", grouped_times(&run.times))
        .field("comm", run.comm.to_json())
        .field("kernel_totals", kernels)
        .field("iterations", run.iterations.to_json())
        .build()
}

/// The default report filename: `BENCH_<scale>_<rows>x<cols>.json`.
pub fn default_report_path(scale: u32, mesh: MeshShape) -> String {
    format!("BENCH_{scale}_{}x{}.json", mesh.rows, mesh.cols)
}

/// Pretty-render the report and write it to `path`.
pub fn write_report(report: &BenchmarkReport, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(report.to_json().render_pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_benchmark;

    #[test]
    fn grouped_times_split_by_prefix() {
        let mut t = TimeAccumulator::new();
        t.add("sub.EH2EH.pull", sunbfs_common::SimTime::secs(1.0));
        t.add("sub.L2L.push", sunbfs_common::SimTime::secs(0.5));
        t.add("comm.alltoallv.L2L", sunbfs_common::SimTime::secs(2.0));
        let js = grouped_times(&t).render();
        assert!(js.starts_with(r#"{"total_s":3.5"#), "got {js}");
        assert!(js.contains(r#""sub":{"total_s":1.5"#), "got {js}");
        assert!(js.contains(r#""comm":{"total_s":2.0"#), "got {js}");
    }

    #[test]
    fn load_balance_histogram_counts_every_rank() {
        let a = ComponentStats {
            l2l: 100,
            ..Default::default()
        };
        let b = ComponentStats {
            l2l: 300,
            ..Default::default()
        };
        let js = load_balance_histogram(&[a, b]).render();
        // mean 200: ratios 0.5 and 1.5 → both bins populated, max/mean 1.5.
        assert!(js.contains(r#""max_over_mean":1.5"#), "got {js}");
        assert!(
            js.contains(r#""ratio_lo":0.5,"ratio_hi":0.75,"ranks":1"#),
            "got {js}"
        );
        assert!(
            js.contains(r#""ratio_lo":1.5,"ratio_hi":2.0,"ranks":1"#),
            "got {js}"
        );
    }

    #[test]
    fn default_path_encodes_scale_and_mesh() {
        assert_eq!(
            default_report_path(14, MeshShape::new(2, 8)),
            "BENCH_14_2x8.json"
        );
    }

    #[test]
    fn report_json_contains_headline_and_directions() {
        let report = run_benchmark(&crate::driver::RunConfig::small_test(9, 4)).expect("benchmark");
        let js = report.to_json().render();
        assert!(js.contains("\"harmonic_mean_gteps\":"));
        assert!(js.contains("\"direction\":"));
        assert!(js.contains("\"EH2EH\":"));
        assert!(js.contains("\"rma_ops\":"));
        assert!(js.contains("\"load_balance\":"));
        // Fault observability is always present, even on clean runs.
        assert!(js.contains("\"faults\":{\"degraded\":false"));
        assert!(js.contains("\"total_retries\":0"));
        assert!(js.contains("\"max_root_retries\":2"));
    }
}
