//! Minimal hand-rolled JSON serialization and parsing.
//!
//! The build container has no crates.io access, so `serde_json` is not
//! an option. The observability layer emits JSON through the value tree
//! below; the `bfs_server` query service additionally *reads*
//! newline-delimited JSON commands from stdin, covered by
//! [`JsonValue::parse`] (a small recursive-descent parser over the same
//! tree).
//!
//! Object keys keep **insertion order** (a `Vec` of pairs, not a map):
//! emitted reports are deterministic byte-for-byte, which the golden
//! schema test relies on.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, ids).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object builder.
    pub fn object() -> JsonObject {
        JsonObject { fields: Vec::new() }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Render with 2-space indentation (human-readable reports).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Parse one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    ///
    /// # Errors
    /// Returns a human-readable message naming the byte offset of the
    /// first offending character.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Field lookup on an object (`None` on other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (non-negative
    /// `Int` included).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(x) => Some(*x),
            JsonValue::Int(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps round-trip precision and always
                    // includes a decimal point or exponent.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_sep(out, indent);
                    item.write(out, indent.map(|d| d + 1));
                }
                write_close(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_sep(out, indent);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                write_close(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

/// Deepest container nesting [`JsonValue::parse`] accepts. The parser
/// is recursive-descent, so without a cap a line of `[[[[…` as long as
/// a protocol request (64 KiB) would overflow the thread stack instead
/// of returning a typed error.
pub const MAX_PARSE_DEPTH: usize = 96;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth >= MAX_PARSE_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_PARSE_DEPTH} at byte {pos}"
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => expect_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(format!("unexpected byte `{}` at byte {pos}", c as char)),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !float {
        if let Ok(x) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(x));
        }
        if let Ok(x) = text.parse::<i64>() {
            return Ok(JsonValue::Int(x));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates are not paired up — commands never
                        // carry them; reject instead of mis-decoding.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("non-scalar \\u escape at byte {pos}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged; input is a &str so it is valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str("  ");
        }
    }
}

fn write_close(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Fluent insertion-ordered object builder.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Append a field (keys are kept in insertion order).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finish into a [`JsonValue::Object`].
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

impl From<JsonObject> for JsonValue {
    fn from(o: JsonObject) -> JsonValue {
        o.build()
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<u32> for JsonValue {
    fn from(x: u32) -> JsonValue {
        JsonValue::UInt(x as u64)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> JsonValue {
        JsonValue::UInt(x)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> JsonValue {
        JsonValue::UInt(x as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(x: i64) -> JsonValue {
        JsonValue::Int(x)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(items)
    }
}

/// Types that can serialize themselves into a [`JsonValue`].
pub trait ToJson {
    /// Convert into a JSON value tree.
    fn to_json(&self) -> JsonValue;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        self.as_slice().to_json()
    }
}

impl ToJson for crate::SimTime {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(self.as_secs())
    }
}

impl ToJson for crate::TimeAccumulator {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries()
                .map(|(k, v)| (k.to_string(), JsonValue::Float(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimTime, TimeAccumulator};

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::UInt(42).render(), "42");
        assert_eq!(JsonValue::Int(-7).render(), "-7");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(JsonValue::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let v = JsonValue::object()
            .field("z", 1u64)
            .field("a", 2u64)
            .build();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let v = JsonValue::object()
            .field("xs", vec![JsonValue::UInt(1), JsonValue::UInt(2)])
            .field("inner", JsonValue::object().field("ok", true))
            .build();
        assert_eq!(v.render(), r#"{"xs":[1,2],"inner":{"ok":true}}"#);
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let v = JsonValue::object()
            .field("a", vec![JsonValue::UInt(1)])
            .build();
        let s = v.render_pretty();
        assert!(s.contains("\n  \"a\": [\n    1\n  ]\n"), "got: {s}");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = JsonValue::object()
            .field("cmd", "batch")
            .field("roots", vec![JsonValue::UInt(1), JsonValue::UInt(99)])
            .field("neg", JsonValue::Int(-3))
            .field("f", 0.5f64)
            .field("flag", true)
            .field("nothing", JsonValue::Null)
            .build();
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_accessors_pick_fields() {
        let v = JsonValue::parse(r#" {"cmd":"query", "root": 7, "xs":[1,2], "b":false} "#).unwrap();
        assert_eq!(v.get("cmd").and_then(JsonValue::as_str), Some("query"));
        assert_eq!(v.get("root").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            v.get("xs").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert_eq!(JsonValue::Int(5).as_u64(), Some(5));
        assert_eq!(JsonValue::Int(-5).as_u64(), None);
    }

    #[test]
    fn parse_string_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "1 2",
            r#"{"a":1} x"#,
            "\"unterminated",
            r#""\q""#,
            "nul",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_caps_nesting_depth_instead_of_overflowing() {
        // One level under the cap parses; at the cap it's a typed error.
        let deep_ok = format!(
            "{}0{}",
            "[".repeat(MAX_PARSE_DEPTH - 1),
            "]".repeat(MAX_PARSE_DEPTH - 1)
        );
        assert!(JsonValue::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        let err = JsonValue::parse(&too_deep).expect_err("cap must refuse");
        assert!(err.contains("nesting deeper than"), "got {err}");
        // A pathological unclosed prefix must error, not blow the stack
        // (this is what a fuzzer feeds the wire protocol).
        let bomb = "[".repeat(64 * 1024);
        assert!(JsonValue::parse(&bomb).is_err());
        let obj_bomb = r#"{"a":"#.repeat(64 * 1024);
        assert!(JsonValue::parse(&obj_bomb).is_err());
    }

    #[test]
    fn simtime_and_accumulator_serialize() {
        assert_eq!(SimTime::secs(0.25).to_json().render(), "0.25");
        let mut acc = TimeAccumulator::new();
        acc.add("b", SimTime::secs(2.0));
        acc.add("a", SimTime::secs(1.0));
        // BTreeMap entries: lexicographic, deterministic.
        assert_eq!(acc.to_json().render(), r#"{"a":1.0,"b":2.0}"#);
    }
}
