//! Cost-model regression pins.
//!
//! Every evaluation figure depends on the machine model; an accidental
//! change to a constant or a formula would silently re-shape them all.
//! These tests pin the canonical quantities (derived from the paper's
//! published machine numbers) with tight tolerances, so model drift
//! fails loudly and deliberately.

use sunbfs_common::{MachineConfig, SplitMix64};
use sunbfs_sunway::{kernels, ocs_sort_mpe, ocs_sort_rma, OcsConfig};

fn m() -> MachineConfig {
    MachineConfig::new_sunway()
}

fn assert_close(actual: f64, expect: f64, tol: f64, what: &str) {
    assert!(
        (actual - expect).abs() / expect < tol,
        "{what}: {actual} vs pinned {expect} (tol {tol})"
    );
}

#[test]
fn pin_chip_streaming() {
    // Full-chip stream of 1 GB at 249 GB/s.
    let t = kernels::dma_stream(&m(), 1_000_000_000, 2048, 6);
    assert_close(t.as_secs(), 1.0 / 249.0, 1e-6, "full-chip DMA stream");
}

#[test]
fn pin_probe_latencies() {
    let m = m();
    // One million GLD probes over 384 CPEs: 540ns each.
    let gld = kernels::gld_random(&m, 1_000_000, 384);
    assert_close(gld.as_secs(), 1e6 * 540e-9 / 384.0, 1e-9, "GLD probes");
    // RMA is exactly 9x cheaper per access.
    let rma = kernels::rma_random(&m, 1_000_000, 384);
    assert_close(gld.as_secs() / rma.as_secs(), 9.0, 1e-9, "GLD/RMA ratio");
}

#[test]
fn pin_figure14_rows() {
    let machine = m();
    let mut rng = SplitMix64::new(1);
    let items: Vec<u64> = (0..1 << 20).map(|_| rng.next_u64()).collect();
    let bytes = (items.len() * 8) as u64;
    let bucket = |x: &u64| (x & 0xff) as usize;
    let (_, mpe) = ocs_sort_mpe(&machine, &items, 256, bucket);
    let (_, cg1) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 1, bucket);
    let (_, cg6) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 6, bucket);
    assert_close(mpe.throughput(bytes) / 1e9, 0.0406, 0.02, "MPE GB/s");
    assert_close(cg1.throughput(bytes) / 1e9, 13.8, 0.05, "1 CG GB/s");
    assert_close(cg6.throughput(bytes) / 1e9, 66.2, 0.05, "6 CG GB/s");
}

#[test]
fn pin_network_tiers() {
    let m = m();
    // Intra-supernode: full NIC. Inter: NIC / 8.
    assert_close(m.nic_bandwidth, 25e9, 1e-12, "NIC");
    assert_close(
        m.supernode_uplink(256) / 256.0,
        25e9 / 8.0,
        1e-12,
        "per-node uplink share",
    );
}

#[test]
fn pin_ldcache_crossover() {
    // The LDCache stops helping right around its capacity — the §3.3
    // argument depends on this crossover staying put.
    let m = m();
    let cpes = m.cpes_per_node();
    let at_capacity = kernels::ldcache_random(&m, 1 << 20, m.ldm_bytes as u64, cpes);
    let at_10x = kernels::ldcache_random(&m, 1 << 20, 10 * m.ldm_bytes as u64, cpes);
    let gld = kernels::gld_random(&m, 1 << 20, cpes);
    assert!(at_capacity.as_secs() < gld.as_secs() * 0.05);
    assert!(at_10x.as_secs() > gld.as_secs() * 0.5);
}
