//! The `SUNBFS_FAULT_PLAN` environment override, exercised end to end.
//!
//! Kept as a single-test file: every `tests/*.rs` file is its own
//! process, so mutating the environment here cannot race the other
//! integration suites.

use sunbfs::driver::{run_benchmark, DriverError, RunConfig};

#[test]
fn env_var_overrides_the_config_campaign_and_rejects_garbage() {
    let mut cfg = RunConfig::small_test(9, 4);
    cfg.max_root_retries = 1;

    // A panic on rank 2 at the very first collective: one retry heals.
    std::env::set_var("SUNBFS_FAULT_PLAN", "panic@2:0");
    let report = run_benchmark(&cfg).expect("env-planned fault is absorbed");
    assert_eq!(report.faults.injected.len(), 1);
    assert_eq!(report.faults.injected[0].rank, 2);
    assert_eq!(report.faults.total_retries, 1);
    assert!(!report.faults.degraded());
    assert!(report.validated);

    // Garbage in the variable is a typed driver error, not a panic.
    std::env::set_var("SUNBFS_FAULT_PLAN", "panic@nope");
    match run_benchmark(&cfg) {
        Err(DriverError::InvalidFaultPlan(msg)) => {
            assert!(!msg.is_empty());
        }
        other => panic!("expected InvalidFaultPlan, got {other:?}"),
    }

    // Unset: back to the (empty) config campaign.
    std::env::remove_var("SUNBFS_FAULT_PLAN");
    let report = run_benchmark(&cfg).expect("clean run");
    assert!(report.faults.injected.is_empty());
    assert!(report.validated);
}
