//! In-place global sort for `sunbfs` preprocessing.
//!
//! §5 of the paper: constructing the six subgraph components from an
//! edge list that nearly fills main memory demands *in-place*
//! preprocessing, abstracted as a generic in-place global sort "based
//! on Parallel Sorting by Regular Sampling, with local sort implemented
//! with PARADIS".
//!
//! * [`paradis`] — parallel in-place MSD radix sort (speculative
//!   permutation + repair),
//! * [`psrs`] — the distributed sort over the simulated cluster.

pub mod paradis;
pub mod psrs;

pub use paradis::{radix_sort_in_place, radix_sort_u64};
pub use psrs::psrs_sort_by_key;
