//! Payload framing for self-healing exchanges.
//!
//! When a fault plan is live, every deposit in [`crate::Cluster`]'s
//! rendezvous carries a [`Frame`] — the payload's byte length plus an
//! FNV-1a checksum — computed by the sender over the *pristine*
//! payload, before the injection hook gets a chance to corrupt it
//! (corruption-in-transit model: the NIC checksums at the source).
//! After the deposit barrier every member re-derives the frame from
//! what actually landed in the slot; a mismatch marks that deposit
//! corrupt and triggers the bounded retransmit protocol in
//! `exchange()` instead of letting flipped bits reach the algorithm
//! or surface as an end-of-run validation failure.
//!
//! Framing is typed through `Any` exactly like
//! [`crate::fault`]'s corruption hook: every payload type the
//! corruption hook can damage MUST be frameable here, otherwise a
//! corruption would go undetected again. The checksum for nested
//! vectors covers the inner lengths as well as the elements, so
//! moving an element between destinations (same bytes, different
//! boundaries) is still caught.

use std::any::Any;

/// 64-bit FNV-1a over a byte slice (offset basis / prime per the
/// reference parameters). Shared by exchange tags, payload frames,
/// and checkpoint envelopes.
#[inline]
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(data);
    h.finish()
}

/// Streaming FNV-1a, so frames hash element-by-element without
/// materialising a byte buffer.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Length + checksum header of one exchange deposit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Total payload element bytes.
    pub bytes: u64,
    /// FNV-1a over the elements (and inner lengths, for nested sends).
    pub checksum: u64,
}

/// Elements the framing (and cloning) registry understands.
trait FrameElem: Copy {
    const SIZE: u64;
    fn feed(&self, h: &mut Fnv1a);
}

impl FrameElem for u8 {
    const SIZE: u64 = 1;
    fn feed(&self, h: &mut Fnv1a) {
        h.update(&[*self]);
    }
}

impl FrameElem for u32 {
    const SIZE: u64 = 4;
    fn feed(&self, h: &mut Fnv1a) {
        h.update(&self.to_le_bytes());
    }
}

impl FrameElem for u64 {
    const SIZE: u64 = 8;
    fn feed(&self, h: &mut Fnv1a) {
        h.update(&self.to_le_bytes());
    }
}

impl FrameElem for (u64, u64) {
    const SIZE: u64 = 16;
    fn feed(&self, h: &mut Fnv1a) {
        h.update(&self.0.to_le_bytes());
        h.update(&self.1.to_le_bytes());
    }
}

fn frame_flat<T: FrameElem>(v: &[T]) -> Frame {
    let mut h = Fnv1a::new();
    for e in v {
        e.feed(&mut h);
    }
    Frame {
        bytes: v.len() as u64 * T::SIZE,
        checksum: h.finish(),
    }
}

fn frame_nested<T: FrameElem>(vv: &[Vec<T>]) -> Frame {
    let mut h = Fnv1a::new();
    let mut bytes = 0u64;
    for v in vv {
        // Inner lengths are part of the checksum: an element sliding
        // between destinations keeps the flat byte stream identical.
        h.update(&(v.len() as u64).to_le_bytes());
        for e in v {
            e.feed(&mut h);
        }
        bytes += v.len() as u64 * T::SIZE;
    }
    Frame {
        bytes,
        checksum: h.finish(),
    }
}

/// Derive the frame of a payload whose concrete type the registry
/// knows; `None` for unframed types (e.g. the barrier's `()` — which
/// the corruption hook cannot damage either).
pub(crate) fn frame_any(payload: &(dyn Any + Send + Sync)) -> Option<Frame> {
    if let Some(v) = payload.downcast_ref::<Vec<u64>>() {
        return Some(frame_flat(v));
    }
    if let Some(v) = payload.downcast_ref::<Vec<u32>>() {
        return Some(frame_flat(v));
    }
    if let Some(v) = payload.downcast_ref::<Vec<u8>>() {
        return Some(frame_flat(v));
    }
    if let Some(v) = payload.downcast_ref::<Vec<(u64, u64)>>() {
        return Some(frame_flat(v));
    }
    if let Some(vv) = payload.downcast_ref::<Vec<Vec<u64>>>() {
        return Some(frame_nested(vv));
    }
    if let Some(vv) = payload.downcast_ref::<Vec<Vec<(u64, u64)>>>() {
        return Some(frame_nested(vv));
    }
    None
}

/// Deep-clone a payload of a registry-known type, for keeping a
/// pristine copy across the injection hook and for re-depositing on
/// retransmit (the collectives have no `T: Clone` bound at this
/// layer, so cloning goes through the same `Any` registry).
pub(crate) fn clone_any(payload: &(dyn Any + Send + Sync)) -> Option<Box<dyn Any + Send + Sync>> {
    if let Some(v) = payload.downcast_ref::<Vec<u64>>() {
        return Some(Box::new(v.clone()));
    }
    if let Some(v) = payload.downcast_ref::<Vec<u32>>() {
        return Some(Box::new(v.clone()));
    }
    if let Some(v) = payload.downcast_ref::<Vec<u8>>() {
        return Some(Box::new(v.clone()));
    }
    if let Some(v) = payload.downcast_ref::<Vec<(u64, u64)>>() {
        return Some(Box::new(v.clone()));
    }
    if let Some(vv) = payload.downcast_ref::<Vec<Vec<u64>>>() {
        return Some(Box::new(vv.clone()));
    }
    if let Some(vv) = payload.downcast_ref::<Vec<Vec<(u64, u64)>>>() {
        return Some(Box::new(vv.clone()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{corrupt_any, CorruptMode};

    #[test]
    fn frame_detects_bitflip_and_truncation() {
        let v = vec![8u64, 9, 10];
        let clean = frame_any(&v).expect("u64 vec is framed");
        assert_eq!(clean.bytes, 24);

        let mut flipped = v.clone();
        assert!(corrupt_any(&mut flipped, CorruptMode::BitFlip));
        let f = frame_any(&flipped).unwrap();
        assert_eq!(f.bytes, clean.bytes, "bitflip keeps the length");
        assert_ne!(f.checksum, clean.checksum, "bitflip trips the checksum");

        let mut cut = v.clone();
        assert!(corrupt_any(&mut cut, CorruptMode::Truncate));
        let f = frame_any(&cut).unwrap();
        assert_ne!(f.bytes, clean.bytes, "truncation trips the length");
    }

    #[test]
    fn every_corruptible_type_is_framed() {
        // The invariant the healing protocol rests on: anything
        // `corrupt_any` can damage, `frame_any` can verify.
        let mut u64s = vec![1u64, 2];
        let mut u32s = vec![1u32, 2];
        let mut u8s = vec![1u8, 2];
        let mut pairs = vec![(1u64, 2u64)];
        let mut nested = vec![vec![3u64]];
        let mut nested_pairs = vec![vec![(3u64, 4u64)]];
        let payloads: [&mut (dyn Any + Send + Sync); 6] = [
            &mut u64s,
            &mut u32s,
            &mut u8s,
            &mut pairs,
            &mut nested,
            &mut nested_pairs,
        ];
        for p in payloads {
            let before = frame_any(&*p).expect("type must be framed");
            if corrupt_any(&mut *p, CorruptMode::BitFlip) {
                assert_ne!(frame_any(&*p), Some(before), "corruption must be visible");
            }
        }
    }

    #[test]
    fn nested_frame_covers_destination_boundaries() {
        // Same flat bytes, different destination split: must differ.
        let a = vec![vec![7u64], vec![]];
        let b = vec![vec![], vec![7u64]];
        let fa = frame_any(&a).unwrap();
        let fb = frame_any(&b).unwrap();
        assert_eq!(fa.bytes, fb.bytes);
        assert_ne!(fa.checksum, fb.checksum);
    }

    #[test]
    fn unit_payload_is_unframed_and_unclonable() {
        let unit = ();
        assert_eq!(frame_any(&unit), None);
        assert!(clone_any(&unit).is_none());
    }

    #[test]
    fn clone_any_round_trips() {
        let v = vec![vec![1u64, 2], vec![3]];
        let cloned = clone_any(&v).expect("nested vec is clonable");
        let back = cloned.downcast_ref::<Vec<Vec<u64>>>().unwrap();
        assert_eq!(back, &v);
    }
}
