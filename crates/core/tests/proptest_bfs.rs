//! The central correctness property of the whole reproduction: for ANY
//! random multigraph, mesh shape, threshold setting, engine
//! configuration, and root, the distributed 1.5D BFS produces a valid
//! Graph 500 parent tree whose level array equals the sequential
//! reference exactly.

use proptest::prelude::*;
use sunbfs_common::{Edge, MachineConfig};
use sunbfs_core::validate::{levels_from_parents, reference_bfs, validate_parents};
use sunbfs_core::{run_bfs, EngineConfig};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, Thresholds};

fn bfs_levels(
    rows: usize,
    cols: usize,
    n: u64,
    edges: &[Edge],
    th: Thresholds,
    cfg: &EngineConfig,
    root: u64,
) -> Vec<u64> {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    let outputs = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, th);
        run_bfs(ctx, &part, root, cfg).expect("BFS must terminate")
    });
    let parents: Vec<u64> = outputs
        .iter()
        .flat_map(|o| o.parents.iter().copied())
        .collect();
    validate_parents(n, edges, root, &parents).expect("Graph 500 validation failed");
    levels_from_parents(root, &parents).expect("level derivation failed")
}

proptest! {
    // Each case spins up a thread-per-rank cluster; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_bfs_equals_reference(
        rows in 1usize..3,
        cols in 1usize..4,
        n in 8u64..128,
        raw_edges in prop::collection::vec((0u64..128, 0u64..128), 1..400),
        e_th in 1u32..60,
        h_div in 1u32..8,
        sub_iteration in any::<bool>(),
        segmenting in any::<bool>(),
        root_pick in 0usize..100,
    ) {
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        // Root must have at least one edge (Graph 500 requirement).
        let candidates: Vec<u64> = edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .flat_map(|e| [e.u, e.v])
            .collect();
        prop_assume!(!candidates.is_empty());
        let root = candidates[root_pick % candidates.len()];

        let th = Thresholds::new(e_th, (e_th / h_div).max(1));
        let cfg = EngineConfig { sub_iteration, segmenting, ..Default::default() };
        let levels = bfs_levels(rows, cols, n, &edges, th, &cfg, root);
        let (_, expect) = reference_bfs(n, &edges, root);
        prop_assert_eq!(levels, expect);
    }

    /// The two degenerate partitionings traverse identically too.
    #[test]
    fn degenerate_modes_equal_reference(
        n in 8u64..100,
        raw_edges in prop::collection::vec((0u64..100, 0u64..100), 1..300),
        use_2d in any::<bool>(),
        root_pick in 0usize..50,
    ) {
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let candidates: Vec<u64> = edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .flat_map(|e| [e.u, e.v])
            .collect();
        prop_assume!(!candidates.is_empty());
        let root = candidates[root_pick % candidates.len()];
        let th = if use_2d { Thresholds::all_hubs(1 << 20) } else { Thresholds::heavy_only(16) };
        let levels = bfs_levels(2, 2, n, &edges, th, &EngineConfig::default(), root);
        let (_, expect) = reference_bfs(n, &edges, root);
        prop_assert_eq!(levels, expect);
    }
}
