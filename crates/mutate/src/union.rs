//! Read-only adjacency over base CSRs plus per-rank delta overlays.
//!
//! The simulated cluster keeps every rank's partition resident in one
//! address space, so a sequential pass can read any rank's components
//! directly. [`UnionAdjacency`] exploits that to answer "all neighbors
//! of `v` in the *mutated* graph" without materializing anything:
//!
//! * a **hub** vertex's neighbors live scattered across the mesh — its
//!   EH entries on the 2D grid, its E↔L entries at each local's owner,
//!   its L→H copies likewise — so every rank's `_by_hub` sides (base
//!   and delta) are scanned;
//! * a **light** vertex's neighbors all live at its owner: the E↔L,
//!   L→H, and L↔L `_by_local` sides of that one rank (base and delta).
//!
//! H→L copies are skipped — they duplicate the L→H entries (same edges,
//! routed to the intermediate rank for the pull direction).
//!
//! Neighbor lists come back sorted and deduplicated, so every consumer
//! (the reference traversal, the repair pass) is deterministic
//! regardless of internal scan order.

use sunbfs_part::RankPartition;

use crate::delta::DeltaPartition;

/// Unreached sentinel in depth arrays (mirrors the engine's global
/// convention: `u64::MAX` depth, `INVALID_VERTEX` parent).
pub const UNREACHED: u64 = u64::MAX;

/// Adjacency view over `parts` with the `deltas` overlays applied.
///
/// `deltas` may be empty (pure base view); otherwise it must be one
/// overlay per rank.
pub struct UnionAdjacency<'a> {
    parts: &'a [RankPartition],
    deltas: &'a [DeltaPartition],
}

impl<'a> UnionAdjacency<'a> {
    /// View over base partitions plus their delta overlays.
    ///
    /// # Panics
    /// When `parts` is empty or `deltas` is neither empty nor one per
    /// rank.
    pub fn new(parts: &'a [RankPartition], deltas: &'a [DeltaPartition]) -> Self {
        assert!(!parts.is_empty(), "union adjacency over zero ranks");
        assert!(
            deltas.is_empty() || deltas.len() == parts.len(),
            "deltas must be empty or one per rank"
        );
        UnionAdjacency { parts, deltas }
    }

    /// Pure base view (no overlays).
    pub fn base(parts: &'a [RankPartition]) -> Self {
        UnionAdjacency::new(parts, &[])
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> u64 {
        self.parts[0].dist.num_vertices()
    }

    /// Collect the sorted, deduplicated neighbors of `v` into `out`
    /// (cleared first). Returns the number of entries scanned, counting
    /// duplicates — the repair pass reports it as work done.
    pub fn neighbors_into(&self, v: u64, out: &mut Vec<u64>) -> u64 {
        out.clear();
        let dir = &self.parts[0].directory;
        let mut scanned = 0u64;
        match dir.hub_id(v) {
            Some(h) => {
                let h = h as u64;
                for (r, p) in self.parts.iter().enumerate() {
                    for &d in p.eh_by_src.neighbors(h) {
                        out.push(dir.vertex_of(d as u32));
                    }
                    out.extend_from_slice(p.el_by_hub.neighbors(h));
                    out.extend_from_slice(p.lh_by_hub.neighbors(h));
                    scanned +=
                        p.eh_by_src.degree(h) + p.el_by_hub.degree(h) + p.lh_by_hub.degree(h);
                    if let Some(delta) = self.deltas.get(r) {
                        for &d in delta.eh_of(h) {
                            out.push(dir.vertex_of(d as u32));
                        }
                        out.extend_from_slice(delta.el_of_hub(h));
                        out.extend_from_slice(delta.lh_of_hub(h));
                        scanned += (delta.eh_of(h).len()
                            + delta.el_of_hub(h).len()
                            + delta.lh_of_hub(h).len()) as u64;
                    }
                }
            }
            None => {
                let r = self.parts[0].dist.owner(v);
                let p = &self.parts[r];
                for &h in p.el_by_local.neighbors(v) {
                    out.push(dir.vertex_of(h as u32));
                }
                for &h in p.lh_by_local.neighbors(v) {
                    out.push(dir.vertex_of(h as u32));
                }
                out.extend_from_slice(p.l2l.neighbors(v));
                scanned += p.el_by_local.degree(v) + p.lh_by_local.degree(v) + p.l2l.degree(v);
                if let Some(delta) = self.deltas.get(r) {
                    for &h in delta.el_of_local(v) {
                        out.push(dir.vertex_of(h as u32));
                    }
                    for &h in delta.lh_of_local(v) {
                        out.push(dir.vertex_of(h as u32));
                    }
                    out.extend_from_slice(delta.l2l_of(v));
                    scanned += (delta.el_of_local(v).len()
                        + delta.lh_of_local(v).len()
                        + delta.l2l_of(v).len()) as u64;
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        scanned
    }

    /// Sequential reference BFS over the union graph: `(parents,
    /// depths)`, with `INVALID_VERTEX` / [`UNREACHED`] for unreached
    /// vertices and the root its own parent. Deterministic: neighbors
    /// expand in ascending vertex order.
    pub fn full_bfs(&self, root: u64) -> (Vec<u64>, Vec<u64>) {
        let n = self.num_vertices() as usize;
        let mut parents = vec![sunbfs_common::INVALID_VERTEX; n];
        let mut depths = vec![UNREACHED; n];
        if (root as usize) >= n {
            return (parents, depths);
        }
        parents[root as usize] = root;
        depths[root as usize] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut nbrs = Vec::new();
        while let Some(v) = queue.pop_front() {
            self.neighbors_into(v, &mut nbrs);
            for &w in &nbrs {
                if depths[w as usize] == UNREACHED {
                    depths[w as usize] = depths[v as usize] + 1;
                    parents[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
        (parents, depths)
    }
}
