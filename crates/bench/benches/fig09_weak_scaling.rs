//! **Figure 9** — weak scalability.
//!
//! Paper (§6.1.1): scaling from 256 nodes (one supernode) to 103,912
//! nodes at the maximum SCALE per size (35 and 41–44), the
//! implementation reaches 180,792 GTEPS — 52% relative parallel
//! efficiency versus ideal scaling from a single supernode, despite
//! the 8× fat-tree oversubscription, because 1.5D partitioning keeps
//! traffic inside supernodes.
//!
//! This harness runs the laptop analog: constant edges per rank, one
//! mesh row per supernode (8 ranks wide), baseline = one full supernode
//! — the same normalization the paper uses (a communication-free single
//! rank would make "ideal" meaningless).

use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs_bench::{sweep_thresholds, weak_scaling_sweep};
use sunbfs_common::MachineConfig;
use sunbfs_core::EngineConfig;

fn main() {
    let roots = 2;
    println!("=== Figure 9: weak scalability (constant edges/rank, 8-rank supernodes) ===\n");

    let mut rows = Vec::new();
    for (mesh, scale) in weak_scaling_sweep() {
        let cfg = RunConfig {
            scale,
            edge_factor: 16,
            mesh,
            thresholds: sweep_thresholds(scale),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            num_roots: roots,
            validate: false,
            faults: FaultSpec::NONE,
            max_root_retries: 2,
            serve_batch: false,
            serve_baseline: false,
            save_graph: None,
            load_graph: None,
        };
        let wall = std::time::Instant::now();
        let report = run_benchmark(&cfg).expect("benchmark must pass");
        let ranks = mesh.num_ranks();
        println!(
            "[{}x{} = {ranks} ranks] SCALE {scale}: {:.3} GTEPS (wall {:.1?})",
            mesh.rows,
            mesh.cols,
            report.harmonic_mean_gteps(),
            wall.elapsed()
        );
        rows.push((ranks, scale, report.harmonic_mean_gteps()));
    }

    let (base_ranks, _, base) = rows[0];
    println!("\n  ranks  SCALE   GTEPS     ideal     rel. efficiency");
    for (ranks, scale, gteps) in &rows {
        let ideal = base * (*ranks as f64 / base_ranks as f64);
        println!(
            "  {ranks:>5}  {scale:>5}   {gteps:>7.3}   {ideal:>7.3}   {:>6.1}%",
            100.0 * gteps / ideal
        );
    }
    let last = rows.last().unwrap();
    let eff = last.2 / (base * (last.0 as f64 / base_ranks as f64));
    println!(
        "\n  relative parallel efficiency at the largest scale: {:.0}% (paper: 52%)",
        100.0 * eff
    );
    assert!(
        eff > 0.10 && eff < 1.10,
        "weak-scaling efficiency {eff} outside plausible band — cost model drifted"
    );
    assert!(
        last.2 > base,
        "absolute GTEPS must still grow with the machine (paper's Figure 9 shape)"
    );
}
