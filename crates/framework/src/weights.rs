//! Deterministic edge weights for weighted algorithms (SSSP).
//!
//! Graph 500's SSSP kernel assigns each edge a uniform random weight.
//! Storing weights would double the edge footprint, so — like the
//! generator itself — we make the weight a pure function of the edge:
//! a SplitMix64-style mix of the *canonical* endpoint pair, so both
//! orientations of an undirected edge agree. Weights are integers in
//! `[1, 2^20]`: integer arithmetic keeps distributed relaxation sums
//! exactly equal to the sequential reference (no floating-point
//! reduction-order noise), which is what lets the tests demand exact
//! distance equality.

use sunbfs_common::VertexId;

/// Largest weight [`edge_weight`] returns.
pub const MAX_WEIGHT: u64 = 1 << 20;

/// Deterministic symmetric weight of edge `{u, v}` under `seed`,
/// uniform in `[1, MAX_WEIGHT]`.
#[inline]
pub fn edge_weight(u: VertexId, v: VertexId, seed: u64) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ seed.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    (z % MAX_WEIGHT) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric() {
        for (u, v) in [(0u64, 1u64), (5, 5), (123, 99999), (1 << 40, 3)] {
            assert_eq!(edge_weight(u, v, 7), edge_weight(v, u, 7));
        }
    }

    #[test]
    fn in_range_and_varied() {
        let mut seen = std::collections::HashSet::new();
        for u in 0..100u64 {
            for v in u..100u64 {
                let w = edge_weight(u, v, 42);
                assert!((1..=MAX_WEIGHT).contains(&w));
                seen.insert(w);
            }
        }
        assert!(seen.len() > 4000, "weights not varied: {}", seen.len());
    }

    #[test]
    fn seed_changes_weights() {
        let same = (0..1000u64)
            .filter(|&i| edge_weight(i, i + 1, 1) == edge_weight(i, i + 1, 2))
            .count();
        assert!(same < 10);
    }

    #[test]
    fn roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| edge_weight(i, i + 7, 9) as f64).sum::<f64>() / n as f64;
        let expect = (MAX_WEIGHT as f64 + 1.0) / 2.0;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs {expect}"
        );
    }
}
