//! Persistent partition store: build the graph once, open it forever.
//!
//! Every [`GraphSession::load`] re-pays R-MAT generation and the full
//! 1.5D partition build; this crate serializes the finished session —
//! a header (scale, edge factor, mesh, thresholds, seed) plus each
//! rank's complete [`RankPartition`] — into one **paged** file so a
//! later session opens in file-read time instead of rebuild time.
//!
//! ## File format (version 1)
//!
//! The file is a sequence of fixed-size [`PAGE_SIZE`] pages. Each page
//! carries [`PAGE_PAYLOAD`] payload bytes sealed with a trailing
//! FNV-1a checksum of the payload — the same seal discipline as the
//! `CheckpointState` u64-LE codec in `crates/core/src/checkpoint.rs`,
//! applied per page so damage is localized to a page number.
//!
//! Logical content is organized as *streams* of little-endian `u64`
//! words, each stream itself sealed with a trailing FNV-1a checksum
//! (over its own bytes) and laid out over whole pages:
//!
//! * **Stream 0 — header**, starting at page 0: file magic, format
//!   version, page size, the graph identity (scale, edge_factor,
//!   mesh rows × cols, E/H thresholds, seed), the rank count, and a
//!   **page directory** of `(first_page, byte_len)` per rank.
//! * **Streams 1..=R — one per rank**, each starting on the page
//!   boundary its directory entry names: rank magic, rank index, the
//!   vertex distribution, the replicated hub directory, the owner
//!   degree table, all nine CSR blocks, and the component stats.
//!
//! The page directory is what lets a reader load ranks by streamed
//! sequential page reads — seek to `first_page`, read
//! `ceil(byte_len / PAGE_PAYLOAD)` pages — without materializing the
//! whole file.
//!
//! ## Refusal discipline
//!
//! [`read_store`] refuses damage with a typed [`StoreError`], never a
//! wrong graph: bad magic or version, a file length that is not a
//! whole number of pages, any page whose seal fails, any stream whose
//! seal fails, a directory entry pointing outside the file, and any
//! structural inconsistency (CSR offsets that are not monotone, a
//! degree table whose length disagrees with the distribution, …). All
//! length fields are guarded against the remaining input *before*
//! allocation, so a corrupted length can never become a
//! multi-gigabyte allocation.
//!
//! [`GraphSession::load`]: ../sunbfs_serve/struct.GraphSession.html

#![warn(missing_docs)]

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use sunbfs_net::fnv1a;
use sunbfs_part::{ComponentStats, Csr, HubDirectory, RankPartition, VertexDistribution};

/// File magic: "SBFSTORE" little-endian.
const FILE_MAGIC: u64 = u64::from_le_bytes(*b"SBFSTORE");
/// Per-rank stream magic: "SBFSRANK" little-endian.
const RANK_MAGIC: u64 = u64::from_le_bytes(*b"SBFSRANK");
/// On-disk format version. v2 added the session **epoch** header word
/// (live-mutation counter, `docs/UPDATES.md`); v1 files are refused
/// with a typed [`StoreError::BadVersion`] rather than guessed at.
pub const STORE_VERSION: u64 = 2;
/// Total bytes per page, payload plus seal.
pub const PAGE_SIZE: usize = 4096;
/// Payload bytes per page (the final 8 bytes are the page checksum).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 8;

/// Fixed header words before the page directory: file magic, version,
/// page size, scale, edge_factor, mesh_rows, mesh_cols, e_threshold,
/// h_threshold, seed, num_ranks, epoch.
const HEADER_FIXED_WORDS: u64 = 12;

/// Why a store could not be written or, far more importantly, why a
/// file was refused instead of decoded into a (possibly wrong) graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io {
        /// The OS error class (`NotFound` is what
        /// `open_or_build`-style callers branch on).
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The file ends early: zero length, a length that is not a whole
    /// number of pages, or a directory entry past the last page.
    Truncated,
    /// The first header word is not the store magic — this is not a
    /// partition store file.
    BadMagic,
    /// The file declares an on-disk format version this reader does
    /// not speak.
    BadVersion {
        /// The version word found in the header.
        found: u64,
    },
    /// A page's trailing FNV-1a seal does not match its payload.
    PageChecksum {
        /// Zero-based page number of the damaged page.
        page: u64,
    },
    /// A structural invariant failed after the seals passed (or a
    /// stream seal itself failed).
    Corrupt {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// The file is intact but describes a different graph than the
    /// caller asked for.
    HeaderMismatch {
        /// The header field that disagrees.
        field: &'static str,
        /// The value the caller's configuration requires.
        expected: u64,
        /// The value stored in the file.
        found: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { kind, detail } => write!(f, "store i/o error ({kind:?}): {detail}"),
            StoreError::Truncated => write!(f, "store file truncated or not page-aligned"),
            StoreError::BadMagic => write!(f, "not a partition store file (bad magic)"),
            StoreError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported store version {found} (reader speaks {STORE_VERSION})"
                )
            }
            StoreError::PageChecksum { page } => {
                write!(f, "page {page} failed its checksum seal")
            }
            StoreError::Corrupt { what } => write!(f, "store structure corrupt: {what}"),
            StoreError::HeaderMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "store header mismatch: {field} is {found}, session wants {expected}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// The graph identity a store file carries, all widened to `u64`
/// exactly as stored on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreHeader {
    /// Graph 500 SCALE (`2^scale` vertices).
    pub scale: u64,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Mesh rows.
    pub mesh_rows: u64,
    /// Mesh columns.
    pub mesh_cols: u64,
    /// E-class degree threshold.
    pub e_threshold: u64,
    /// H-class degree threshold.
    pub h_threshold: u64,
    /// Generator seed.
    pub seed: u64,
    /// Rank count (`mesh_rows * mesh_cols`).
    pub num_ranks: u64,
    /// Session epoch at save time: how many update batches had been
    /// committed to the graph. 0 means the pristine generated graph; a
    /// mutated session compacts its delta before saving, so the stored
    /// CSRs always describe the epoch-`epoch` union graph.
    pub epoch: u64,
}

impl StoreHeader {
    /// Verify this (decoded) header describes the same graph as
    /// `expected` (derived from the caller's session configuration).
    ///
    /// The epoch is deliberately **not** compared here: a mutated
    /// store still describes the graph the configuration names, and
    /// `open_or_build`-style callers must not silently rebuild (and so
    /// discard) committed updates. Callers that require a specific
    /// epoch say so explicitly via [`StoreHeader::check_epoch`].
    ///
    /// # Errors
    /// [`StoreError::HeaderMismatch`] naming the first disagreeing
    /// field — the caller must not traverse a graph it did not ask
    /// for.
    pub fn check_matches(&self, expected: &StoreHeader) -> Result<(), StoreError> {
        let fields = [
            ("scale", self.scale, expected.scale),
            ("edge_factor", self.edge_factor, expected.edge_factor),
            ("mesh_rows", self.mesh_rows, expected.mesh_rows),
            ("mesh_cols", self.mesh_cols, expected.mesh_cols),
            ("e_threshold", self.e_threshold, expected.e_threshold),
            ("h_threshold", self.h_threshold, expected.h_threshold),
            ("seed", self.seed, expected.seed),
            ("num_ranks", self.num_ranks, expected.num_ranks),
        ];
        for (field, found, expected) in fields {
            if found != expected {
                return Err(StoreError::HeaderMismatch {
                    field,
                    expected,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Verify the stored epoch is exactly what the caller expects.
    ///
    /// # Errors
    /// [`StoreError::HeaderMismatch`] with `field == "epoch"` — never a
    /// silent open of a graph more (or less) mutated than asked for.
    pub fn check_epoch(&self, expected: u64) -> Result<(), StoreError> {
        if self.epoch != expected {
            return Err(StoreError::HeaderMismatch {
                field: "epoch",
                expected,
                found: self.epoch,
            });
        }
        Ok(())
    }
}

/// Physical facts about a written or opened store file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreInfo {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Total page count (`file_bytes / PAGE_SIZE`).
    pub pages: u64,
}

/// Pages needed to hold a `len`-byte stream.
fn pages_for(len: u64) -> u64 {
    len.div_ceil(PAGE_PAYLOAD as u64).max(1)
}

/// A u64-LE stream under construction, sealed on finish.
struct StreamWriter {
    buf: Vec<u8>,
}

impl StreamWriter {
    fn new() -> Self {
        StreamWriter { buf: Vec::new() }
    }

    fn put(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn put_slice(&mut self, xs: &[u64]) {
        self.put(xs.len() as u64);
        for &x in xs {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append the trailing FNV-1a seal and return the stream bytes.
    fn seal(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Append `stream` to `out` as whole sealed pages (zero-padded tail).
fn paginate(stream: &[u8], out: &mut Vec<u8>) {
    let mut chunks = stream.chunks(PAGE_PAYLOAD).peekable();
    // An empty stream still occupies one (all-padding) page so every
    // directory entry names a real page.
    if chunks.peek().is_none() {
        let payload = [0u8; PAGE_PAYLOAD];
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        return;
    }
    for chunk in chunks {
        let mut payload = [0u8; PAGE_PAYLOAD];
        payload[..chunk.len()].copy_from_slice(chunk);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    }
}

fn encode_csr(w: &mut StreamWriter, csr: &Csr) {
    w.put(csr.key_base());
    w.put_slice(csr.offsets());
    w.put_slice(csr.targets());
}

/// One rank's sealed stream.
fn encode_rank(part: &RankPartition) -> Vec<u8> {
    let mut w = StreamWriter::new();
    w.put(RANK_MAGIC);
    w.put(part.rank as u64);
    w.put(part.dist.num_vertices());
    w.put(part.dist.num_ranks() as u64);
    w.put(u64::from(part.directory.num_e()));
    w.put(u64::from(part.directory.num_hubs()));
    for &(v, d) in part.directory.hubs() {
        w.put(v);
        w.put(u64::from(d));
    }
    w.put(part.owned_degrees.len() as u64);
    for &d in &part.owned_degrees {
        w.put(u64::from(d));
    }
    for csr in [
        &part.eh_by_src,
        &part.eh_by_dst,
        &part.el_by_hub,
        &part.el_by_local,
        &part.h2l_by_hub,
        &part.h2l_by_local,
        &part.lh_by_hub,
        &part.lh_by_local,
        &part.l2l,
    ] {
        encode_csr(&mut w, csr);
    }
    for x in [
        part.stats.eh2eh,
        part.stats.e2l,
        part.stats.l2e,
        part.stats.h2l,
        part.stats.l2h,
        part.stats.l2l,
    ] {
        w.put(x);
    }
    w.seal()
}

/// Serialize a complete session into the paged store format.
///
/// `header.num_ranks` must equal `parts.len()` and every partition
/// must carry its own index as `rank` — both are programmer errors
/// (panics), not file damage.
pub fn encode_store(header: &StoreHeader, parts: &[RankPartition]) -> Vec<u8> {
    assert_eq!(
        header.num_ranks,
        parts.len() as u64,
        "header rank count must match the partition list"
    );
    for (i, p) in parts.iter().enumerate() {
        assert_eq!(p.rank, i, "partition {i} carries rank {}", p.rank);
    }
    let rank_streams: Vec<Vec<u8>> = parts.iter().map(encode_rank).collect();

    // The header length is determined by the rank count alone, so the
    // directory can be laid out before the header is written.
    let header_bytes = (HEADER_FIXED_WORDS + 2 * header.num_ranks + 1) * 8;
    let mut next_page = pages_for(header_bytes);
    let mut w = StreamWriter::new();
    for x in [
        FILE_MAGIC,
        STORE_VERSION,
        PAGE_SIZE as u64,
        header.scale,
        header.edge_factor,
        header.mesh_rows,
        header.mesh_cols,
        header.e_threshold,
        header.h_threshold,
        header.seed,
        header.num_ranks,
        header.epoch,
    ] {
        w.put(x);
    }
    for stream in &rank_streams {
        w.put(next_page);
        w.put(stream.len() as u64);
        next_page += pages_for(stream.len() as u64);
    }
    let header_stream = w.seal();
    debug_assert_eq!(header_stream.len() as u64, header_bytes);

    let mut out = Vec::with_capacity((next_page as usize) * PAGE_SIZE);
    paginate(&header_stream, &mut out);
    for stream in &rank_streams {
        paginate(stream, &mut out);
    }
    out
}

/// The sibling temp file a save writes before renaming into place.
/// Kept deterministic (one temp per target) so an interrupted save's
/// leftover is overwritten by the next attempt instead of accumulating.
pub fn temp_save_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// [`encode_store`] to a file, crash-safely: the bytes go to a sibling
/// temp file first (same directory, so the rename cannot cross a
/// filesystem), are fsynced, and only then atomically renamed over
/// `path`. A crash mid-save leaves either the old file or the new one
/// — never a truncated store that later fails open — plus at worst a
/// `.tmp` leftover the next save overwrites.
///
/// # Errors
/// [`StoreError::Io`] when the write or rename fails (the temp file is
/// cleaned up on a best-effort basis).
pub fn save_file(
    path: &Path,
    header: &StoreHeader,
    parts: &[RankPartition],
) -> Result<StoreInfo, StoreError> {
    let bytes = encode_store(header, parts);
    let tmp = temp_save_path(path);
    let write_and_rename = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory so
        // a crash right after the rename still finds the new file.
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if let Err(e) = write_and_rename {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(StoreInfo {
        file_bytes: bytes.len() as u64,
        pages: bytes.len() as u64 / PAGE_SIZE as u64,
    })
}

/// Bounds-checked little-endian cursor over a sealed stream's body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u64(&mut self) -> Result<u64, StoreError> {
        let end = self
            .pos
            .checked_add(8)
            .ok_or(StoreError::Corrupt { what: "overflow" })?;
        let chunk = self.bytes.get(self.pos..end).ok_or(StoreError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(chunk.try_into().unwrap()))
    }

    fn remaining_words(&self) -> u64 {
        ((self.bytes.len() - self.pos) / 8) as u64
    }

    /// A length-prefixed u64 slice, allocation-guarded: the declared
    /// length must fit in the words actually left in the stream.
    fn u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>, StoreError> {
        let len = self.u64()?;
        if len > self.remaining_words() {
            return Err(StoreError::Corrupt { what });
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(self.u64()?);
        }
        Ok(v)
    }
}

/// Verify a stream's trailing seal and return its body.
fn unseal<'a>(stream: &'a [u8], what: &'static str) -> Result<&'a [u8], StoreError> {
    if stream.len() < 8 {
        return Err(StoreError::Truncated);
    }
    let (body, tail) = stream.split_at(stream.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != checksum {
        return Err(StoreError::Corrupt { what });
    }
    Ok(body)
}

/// Sequential page reader over any seekable byte source.
struct PageSource<'a, R: Read + Seek> {
    src: &'a mut R,
    total_pages: u64,
}

impl<R: Read + Seek> PageSource<'_, R> {
    /// Read page `page`, verifying its seal.
    fn page(&mut self, page: u64) -> Result<[u8; PAGE_PAYLOAD], StoreError> {
        if page >= self.total_pages {
            return Err(StoreError::Truncated);
        }
        self.src.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
        let mut raw = [0u8; PAGE_SIZE];
        self.src.read_exact(&mut raw)?;
        let (payload, tail) = raw.split_at(PAGE_PAYLOAD);
        let checksum = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(payload) != checksum {
            return Err(StoreError::PageChecksum { page });
        }
        Ok(payload.try_into().unwrap())
    }

    /// Assemble a `byte_len`-byte stream from consecutive pages
    /// starting at `first_page` — the streamed sequential read the
    /// page directory exists for.
    fn stream(&mut self, first_page: u64, byte_len: u64) -> Result<Vec<u8>, StoreError> {
        let npages = pages_for(byte_len);
        if first_page
            .checked_add(npages)
            .is_none_or(|end| end > self.total_pages)
        {
            return Err(StoreError::Truncated);
        }
        // byte_len is bounded by the file size here, so this
        // allocation is bounded by what is actually on disk.
        let mut out = Vec::with_capacity(byte_len as usize);
        for i in 0..npages {
            let payload = self.page(first_page + i)?;
            let take = (byte_len as usize - out.len()).min(PAGE_PAYLOAD);
            out.extend_from_slice(&payload[..take]);
        }
        Ok(out)
    }
}

fn decode_csr(r: &mut Reader<'_>) -> Result<Csr, StoreError> {
    let key_base = r.u64()?;
    let offsets = r.u64_vec("csr offsets length")?;
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(StoreError::Corrupt {
            what: "csr offsets must start at 0",
        });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(StoreError::Corrupt {
            what: "csr offsets must be non-decreasing",
        });
    }
    let targets = r.u64_vec("csr targets length")?;
    if *offsets.last().unwrap() != targets.len() as u64 {
        return Err(StoreError::Corrupt {
            what: "csr edge count disagrees with offsets",
        });
    }
    Ok(Csr::from_raw(key_base, offsets, targets))
}

/// Decode one rank stream's body into its partition, cross-checking
/// it against the file header and the expected rank index.
fn decode_rank(
    body: &[u8],
    expect_rank: u64,
    header: &StoreHeader,
) -> Result<RankPartition, StoreError> {
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.u64()? != RANK_MAGIC {
        return Err(StoreError::Corrupt { what: "rank magic" });
    }
    if r.u64()? != expect_rank {
        return Err(StoreError::Corrupt {
            what: "rank index disagrees with directory order",
        });
    }
    let n = r.u64()?;
    let p = r.u64()?;
    if header.scale >= 64 || n != 1u64 << header.scale {
        return Err(StoreError::Corrupt {
            what: "vertex count disagrees with scale",
        });
    }
    if p != header.num_ranks || p == 0 {
        return Err(StoreError::Corrupt {
            what: "rank count disagrees with header",
        });
    }
    let dist = VertexDistribution::new(n, p as usize);

    let num_e = r.u64()?;
    let num_hubs = r.u64()?;
    if num_e > num_hubs || num_hubs > u64::from(u32::MAX) {
        return Err(StoreError::Corrupt { what: "hub counts" });
    }
    if num_hubs
        .checked_mul(2)
        .is_none_or(|w| w > r.remaining_words())
    {
        return Err(StoreError::Corrupt {
            what: "hub table length",
        });
    }
    let mut hubs = Vec::with_capacity(num_hubs as usize);
    for _ in 0..num_hubs {
        let v = r.u64()?;
        let d = r.u64()?;
        if v >= n {
            return Err(StoreError::Corrupt {
                what: "hub vertex out of range",
            });
        }
        let d = u32::try_from(d).map_err(|_| StoreError::Corrupt {
            what: "hub degree exceeds u32",
        })?;
        hubs.push((v, d));
    }
    let directory = HubDirectory::from_parts(num_e as u32, hubs);

    let deg_len = r.u64()?;
    if deg_len != dist.local_count(expect_rank as usize) || deg_len > r.remaining_words() {
        return Err(StoreError::Corrupt {
            what: "owned degree table length",
        });
    }
    let mut owned_degrees = Vec::with_capacity(deg_len as usize);
    for _ in 0..deg_len {
        let d = u32::try_from(r.u64()?).map_err(|_| StoreError::Corrupt {
            what: "owned degree exceeds u32",
        })?;
        owned_degrees.push(d);
    }

    let eh_by_src = decode_csr(&mut r)?;
    let eh_by_dst = decode_csr(&mut r)?;
    let el_by_hub = decode_csr(&mut r)?;
    let el_by_local = decode_csr(&mut r)?;
    let h2l_by_hub = decode_csr(&mut r)?;
    let h2l_by_local = decode_csr(&mut r)?;
    let lh_by_hub = decode_csr(&mut r)?;
    let lh_by_local = decode_csr(&mut r)?;
    let l2l = decode_csr(&mut r)?;

    let stats = ComponentStats {
        eh2eh: r.u64()?,
        e2l: r.u64()?,
        l2e: r.u64()?,
        h2l: r.u64()?,
        l2h: r.u64()?,
        l2l: r.u64()?,
    };
    if r.pos != body.len() {
        return Err(StoreError::Corrupt {
            what: "trailing garbage after rank stream",
        });
    }
    Ok(RankPartition {
        rank: expect_rank as usize,
        dist,
        directory,
        owned_degrees,
        eh_by_src,
        eh_by_dst,
        el_by_hub,
        el_by_local,
        h2l_by_hub,
        h2l_by_local,
        lh_by_hub,
        lh_by_local,
        l2l,
        stats,
    })
}

/// Open a store from any seekable byte source, verifying every seal,
/// and decode all rank partitions in directory order.
///
/// # Errors
/// A typed [`StoreError`] on any damage — see the module-level
/// refusal discipline. On success the header still needs a
/// [`StoreHeader::check_matches`] against the caller's configuration
/// before the graph may be served.
#[allow(clippy::type_complexity)]
pub fn read_store<R: Read + Seek>(
    src: &mut R,
) -> Result<(StoreHeader, Vec<RankPartition>, StoreInfo), StoreError> {
    let file_bytes = src.seek(SeekFrom::End(0))?;
    if file_bytes == 0 || file_bytes % PAGE_SIZE as u64 != 0 {
        return Err(StoreError::Truncated);
    }
    let total_pages = file_bytes / PAGE_SIZE as u64;
    let mut pages = PageSource { src, total_pages };

    // Page 0 carries at least the fixed header words; parse the rank
    // count out of it to learn the full header-stream length.
    let page0 = pages.page(0)?;
    let word = |i: usize| u64::from_le_bytes(page0[i * 8..(i + 1) * 8].try_into().unwrap());
    if word(0) != FILE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    if word(1) != STORE_VERSION {
        return Err(StoreError::BadVersion { found: word(1) });
    }
    if word(2) != PAGE_SIZE as u64 {
        return Err(StoreError::Corrupt {
            what: "page size disagrees with format",
        });
    }
    let num_ranks = word(10);
    if num_ranks == 0 {
        return Err(StoreError::Corrupt { what: "zero ranks" });
    }
    let header_bytes = (HEADER_FIXED_WORDS + 2 * num_ranks + 1)
        .checked_mul(8)
        .ok_or(StoreError::Corrupt {
            what: "rank count overflows header",
        })?;
    if pages_for(header_bytes) > total_pages {
        return Err(StoreError::Truncated);
    }

    let header_stream = pages.stream(0, header_bytes)?;
    let body = unseal(&header_stream, "header stream checksum")?;
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    for _ in 0..3 {
        r.u64()?; // magic, version, page size — verified above
    }
    let header = StoreHeader {
        scale: r.u64()?,
        edge_factor: r.u64()?,
        mesh_rows: r.u64()?,
        mesh_cols: r.u64()?,
        e_threshold: r.u64()?,
        h_threshold: r.u64()?,
        seed: r.u64()?,
        num_ranks: r.u64()?,
        epoch: r.u64()?,
    };
    if header.scale >= 64 {
        return Err(StoreError::Corrupt {
            what: "scale too large",
        });
    }
    if header
        .mesh_rows
        .checked_mul(header.mesh_cols)
        .is_none_or(|p| p != header.num_ranks)
    {
        return Err(StoreError::Corrupt {
            what: "mesh shape disagrees with rank count",
        });
    }
    if header.e_threshold > u64::from(u32::MAX) || header.h_threshold > header.e_threshold {
        return Err(StoreError::Corrupt { what: "thresholds" });
    }
    let mut directory = Vec::with_capacity(num_ranks as usize);
    for _ in 0..num_ranks {
        let first_page = r.u64()?;
        let byte_len = r.u64()?;
        if first_page < pages_for(header_bytes) || byte_len < 8 {
            return Err(StoreError::Corrupt {
                what: "page directory entry",
            });
        }
        directory.push((first_page, byte_len));
    }
    if r.pos != body.len() {
        return Err(StoreError::Corrupt {
            what: "trailing garbage after header",
        });
    }

    let mut parts = Vec::with_capacity(num_ranks as usize);
    for (i, &(first_page, byte_len)) in directory.iter().enumerate() {
        let stream = pages.stream(first_page, byte_len)?;
        let body = unseal(&stream, "rank stream checksum")?;
        parts.push(decode_rank(body, i as u64, &header)?);
    }
    let info = StoreInfo {
        file_bytes,
        pages: total_pages,
    };
    Ok((header, parts, info))
}

/// [`read_store`] on a filesystem path.
///
/// # Errors
/// [`StoreError::Io`] with `kind == NotFound` when there is no file
/// at `path` (the branch `open_or_build` callers take to a fresh
/// build), any other [`StoreError`] as [`read_store`] documents.
#[allow(clippy::type_complexity)]
pub fn open_file(path: &Path) -> Result<(StoreHeader, Vec<RankPartition>, StoreInfo), StoreError> {
    let f = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(f);
    read_store(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use sunbfs_part::Thresholds;

    /// A tiny hand-built two-rank session (not a real partition — the
    /// codec only cares about structure).
    fn sample() -> (StoreHeader, Vec<RankPartition>) {
        let header = StoreHeader {
            scale: 4,
            edge_factor: 16,
            mesh_rows: 1,
            mesh_cols: 2,
            e_threshold: 256,
            h_threshold: 64,
            seed: 42,
            num_ranks: 2,
            epoch: 0,
        };
        let dist = VertexDistribution::new(16, 2);
        let directory = HubDirectory::build(vec![(3, 300), (7, 80)], Thresholds::new(256, 64));
        let parts = (0..2)
            .map(|rank| RankPartition {
                rank,
                dist,
                directory: directory.clone(),
                owned_degrees: vec![rank as u32; 8],
                eh_by_src: Csr::from_pairs(0, 2, vec![(0, 1), (1, 0)], true),
                eh_by_dst: Csr::from_pairs(0, 2, vec![(1, 0), (0, 1)], true),
                el_by_hub: Csr::from_pairs(0, 2, vec![(0, 9)], false),
                el_by_local: Csr::from_pairs(8 * rank as u64, 8, vec![], false),
                h2l_by_hub: Csr::from_pairs(0, 2, vec![(1, 12)], false),
                h2l_by_local: Csr::from_pairs(8 * rank as u64, 8, vec![], false),
                lh_by_hub: Csr::from_pairs(0, 2, vec![], false),
                lh_by_local: Csr::from_pairs(8 * rank as u64, 8, vec![], false),
                l2l: Csr::from_pairs(8 * rank as u64, 8, vec![], false),
                stats: ComponentStats {
                    eh2eh: 2,
                    e2l: 1,
                    l2e: 0,
                    h2l: 1,
                    l2h: 0,
                    l2l: 0,
                },
            })
            .collect();
        (header, parts)
    }

    #[test]
    fn encode_read_round_trips_byte_identically() {
        let (header, parts) = sample();
        let bytes = encode_store(&header, &parts);
        assert_eq!(bytes.len() % PAGE_SIZE, 0, "whole pages only");
        let (got_header, got_parts, info) =
            read_store(&mut Cursor::new(&bytes)).expect("clean file decodes");
        assert_eq!(got_header, header);
        assert_eq!(info.file_bytes, bytes.len() as u64);
        assert_eq!(info.pages * PAGE_SIZE as u64, info.file_bytes);
        // Byte-identity through a full decode → re-encode cycle is the
        // round-trip oracle (RankPartition has no PartialEq).
        assert_eq!(encode_store(&header, &got_parts), bytes);
    }

    #[test]
    fn header_mismatch_is_typed_per_field() {
        let (header, _) = sample();
        let mut wrong = header;
        wrong.seed = 43;
        assert_eq!(
            header.check_matches(&wrong),
            Err(StoreError::HeaderMismatch {
                field: "seed",
                expected: 43,
                found: 42,
            })
        );
        assert_eq!(header.check_matches(&header), Ok(()));
    }

    #[test]
    fn epoch_is_outside_check_matches_but_refused_by_check_epoch() {
        let (header, parts) = sample();
        let mutated = StoreHeader { epoch: 3, ..header };
        // The identity check tolerates a mutated store on purpose...
        assert_eq!(mutated.check_matches(&header), Ok(()));
        // ...and the epoch check is its own typed refusal.
        assert_eq!(
            mutated.check_epoch(0),
            Err(StoreError::HeaderMismatch {
                field: "epoch",
                expected: 0,
                found: 3,
            })
        );
        assert_eq!(mutated.check_epoch(3), Ok(()));
        // The epoch word survives the file round trip.
        let bytes = encode_store(&mutated, &parts);
        let (got, _, _) = read_store(&mut Cursor::new(&bytes)).expect("decodes");
        assert_eq!(got.epoch, 3);
    }

    #[test]
    fn bad_magic_version_and_truncation_are_rejected() {
        let (header, parts) = sample();
        let bytes = encode_store(&header, &parts);

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        let seal = fnv1a(&bad[..PAGE_PAYLOAD]);
        bad[PAGE_PAYLOAD..PAGE_SIZE].copy_from_slice(&seal.to_le_bytes());
        assert_eq!(
            read_store(&mut Cursor::new(&bad)).unwrap_err(),
            StoreError::BadMagic
        );

        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&99u64.to_le_bytes());
        let seal = fnv1a(&bad[..PAGE_PAYLOAD]);
        bad[PAGE_PAYLOAD..PAGE_SIZE].copy_from_slice(&seal.to_le_bytes());
        assert_eq!(
            read_store(&mut Cursor::new(&bad)).unwrap_err(),
            StoreError::BadVersion { found: 99 }
        );

        assert_eq!(
            read_store(&mut Cursor::new(&[] as &[u8])).unwrap_err(),
            StoreError::Truncated
        );
        assert_eq!(
            read_store(&mut Cursor::new(&bytes[..bytes.len() - 1])).unwrap_err(),
            StoreError::Truncated,
            "non-page-aligned length"
        );
        assert_eq!(
            read_store(&mut Cursor::new(&bytes[..PAGE_SIZE])).unwrap_err(),
            StoreError::Truncated,
            "directory points past the file"
        );
    }

    #[test]
    fn a_resealed_page_with_damaged_structure_is_still_refused() {
        // Flip a byte inside the header's rank-count word AND reseal
        // the page: the page checksum passes, but the stream seal (or
        // a structural guard) must still refuse it.
        let (header, parts) = sample();
        let mut bytes = encode_store(&header, &parts);
        bytes[10 * 8] ^= 0x01; // num_ranks word
        let seal = fnv1a(&bytes[..PAGE_PAYLOAD]);
        bytes[PAGE_PAYLOAD..PAGE_SIZE].copy_from_slice(&seal.to_le_bytes());
        assert!(matches!(
            read_store(&mut Cursor::new(&bytes)),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn save_and_open_file_round_trip() {
        let (header, parts) = sample();
        let path =
            std::env::temp_dir().join(format!("sunbfs_store_unit_{}.sbfs", std::process::id()));
        let saved = save_file(&path, &header, &parts).expect("save");
        let (got_header, got_parts, info) = open_file(&path).expect("open");
        std::fs::remove_file(&path).ok();
        assert_eq!(saved, info);
        assert_eq!(got_header, header);
        assert_eq!(
            encode_store(&header, &got_parts),
            encode_store(&header, &parts)
        );
    }

    #[test]
    fn missing_file_is_a_typed_not_found() {
        let err = open_file(Path::new("/nonexistent/sunbfs.sbfs")).unwrap_err();
        match err {
            StoreError::Io { kind, .. } => {
                assert_eq!(kind, std::io::ErrorKind::NotFound)
            }
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }
}
