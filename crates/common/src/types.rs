//! Core identifier and edge types.
//!
//! Vertices are identified by dense 64-bit integers as in the Graph 500
//! specification (a SCALE-`s` graph has `2^s` vertices). Edges are
//! undirected pairs; generators and partitioners may materialize both
//! orientations.

/// A global vertex identifier.
pub type VertexId = u64;

/// Sentinel for "no vertex" (used in parent arrays; Graph 500 uses -1).
pub const INVALID_VERTEX: VertexId = u64::MAX;

/// An undirected edge between two global vertices.
///
/// The generator may emit self loops and duplicate edges; both are legal
/// Graph 500 inputs and are handled (skipped / deduplicated) during
/// partition construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source endpoint.
    pub u: VertexId,
    /// Destination endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Create a new edge.
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        Edge { u, v }
    }

    /// The edge with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            u: self.v,
            v: self.u,
        }
    }

    /// True if both endpoints coincide.
    #[inline]
    pub fn is_self_loop(self) -> bool {
        self.u == self.v
    }

    /// Canonical form with the smaller endpoint first; useful for
    /// deduplicating undirected edges.
    #[inline]
    pub fn canonical(self) -> Self {
        if self.u <= self.v {
            self
        } else {
            self.reversed()
        }
    }
}

/// Header describing a generated global graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalGraphHeader {
    /// Graph 500 SCALE: the graph has `2^scale` vertices.
    pub scale: u32,
    /// Edge factor: the generator emits `edge_factor * 2^scale` edges.
    pub edge_factor: u32,
}

impl GlobalGraphHeader {
    /// Number of vertices, `2^scale`.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of generated (undirected) edges, `edge_factor * 2^scale`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        (self.edge_factor as u64) << self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonicalization_orders_endpoints() {
        assert_eq!(Edge::new(5, 3).canonical(), Edge::new(3, 5));
        assert_eq!(Edge::new(3, 5).canonical(), Edge::new(3, 5));
        assert_eq!(Edge::new(7, 7).canonical(), Edge::new(7, 7));
    }

    #[test]
    fn edge_reversal_swaps() {
        let e = Edge::new(1, 2);
        assert_eq!(e.reversed(), Edge::new(2, 1));
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(4, 4).is_self_loop());
        assert!(!Edge::new(4, 5).is_self_loop());
    }

    #[test]
    fn header_counts_match_graph500_formulas() {
        let h = GlobalGraphHeader {
            scale: 10,
            edge_factor: 16,
        };
        assert_eq!(h.num_vertices(), 1024);
        assert_eq!(h.num_edges(), 16 * 1024);
    }
}
