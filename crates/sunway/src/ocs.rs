//! On-Chip Sorting with RMA (OCS-RMA), §4.4.
//!
//! Messaging by remote edges needs a generic "sort random messages into
//! buckets" meta-kernel. A conventional parallel bucket sort needs
//! either atomics per message or redundant main-memory passes — both
//! slow on SW26010-Pro. OCS-RMA instead splits the 64 CPEs of a core
//! group into 32 *producers* and 32 *consumers*:
//!
//! * each producer keeps 32 send buffers of 512 bytes (one per
//!   consumer) in its LDM; bucket `x` belongs to consumer `x mod 32`,
//! * a full buffer is RMA-put into the owning consumer's matching
//!   receive buffer,
//! * consumers drain their receive buffers into the buckets they own
//!   exclusively — no atomics anywhere inside a core group.
//!
//! Running on all 6 CGs, the input is block-partitioned and the CGs
//! synchronize with (rarely conflicting) cross-CG atomics, costing a
//! little efficiency — exactly the effect visible in Figure 14
//! (12.5 GB/s × 6 = 75 ≠ 58.6 GB/s measured).
//!
//! [`ocs_sort_rma`] is *functional*: it really routes every item
//! through producer buffers and consumer drains, and the returned
//! [`KernelReport`] carries the simulated time from the machine
//! constants. [`ocs_sort_mpe`] is the sequential management-core
//! baseline.

use crate::kernels::{self, KernelReport};
use sunbfs_common::{pool, MachineConfig, SimTime};

/// Producer/consumer indices per worker-pool chunk: coarse enough that
/// a 32-CPE side splits into at most four chunks.
const OCS_GRAIN_CPES: u64 = 8;

/// Tuning knobs of the OCS-RMA kernel (§4.4 defaults).
#[derive(Clone, Copy, Debug)]
pub struct OcsConfig {
    /// Producer CPEs per core group.
    pub producers: usize,
    /// Consumer CPEs per core group.
    pub consumers: usize,
    /// Bytes per send/receive buffer (DMA/RMA batching grain).
    pub buffer_bytes: usize,
    /// Input block claimed per cross-CG atomic in multi-CG mode.
    pub cg_sync_block_bytes: usize,
}

impl Default for OcsConfig {
    fn default() -> Self {
        OcsConfig {
            producers: 32,
            consumers: 32,
            buffer_bytes: 512,
            cg_sync_block_bytes: 32 * 1024,
        }
    }
}

impl OcsConfig {
    /// Items of type `T` that fit one buffer.
    pub fn buffer_capacity<T>(&self) -> usize {
        (self.buffer_bytes / std::mem::size_of::<T>()).max(1)
    }

    /// LDM bytes one CPE dedicates to this kernel: a producer holds one
    /// send buffer per consumer, a consumer one receive buffer per
    /// producer (§4.4: "each core reserves 32 buffers of 512 bytes").
    pub fn ldm_footprint_per_cpe(&self) -> usize {
        self.producers.max(self.consumers) * self.buffer_bytes
    }

    /// Check the buffer set fits the machine's LDM with working margin.
    ///
    /// # Panics
    /// Panics when the configuration cannot exist on the chip — a
    /// misconfiguration, not a runtime condition.
    pub fn assert_fits(&self, machine: &MachineConfig) {
        let footprint = self.ldm_footprint_per_cpe();
        assert!(
            footprint <= machine.ldm_bytes / 2,
            "OCS buffers ({footprint} B/CPE) exceed half the {} B LDM — no room left \
             for the kernel's working data",
            machine.ldm_bytes
        );
    }
}

/// Sort `items` into `num_buckets` buckets with OCS-RMA on `active_cgs`
/// core groups. Returns the bucket vectors and the kernel report.
///
/// Deterministic: bucket contents depend only on the input order and
/// the configuration (producers are drained in a fixed order).
pub fn ocs_sort_rma<T, F>(
    machine: &MachineConfig,
    cfg: &OcsConfig,
    items: &[T],
    num_buckets: usize,
    active_cgs: usize,
    bucket_of: F,
) -> (Vec<Vec<T>>, KernelReport)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    assert!(num_buckets > 0, "need at least one bucket");
    assert!(cfg.producers > 0 && cfg.consumers > 0);
    cfg.assert_fits(machine);
    let active_cgs = active_cgs.clamp(1, machine.cgs_per_node);
    let cap = cfg.buffer_capacity::<T>();
    let item_bytes = std::mem::size_of::<T>() as u64;
    let n = items.len();

    let mut buckets: Vec<Vec<T>> = (0..num_buckets).map(|_| Vec::new()).collect();
    let mut report = KernelReport {
        items: n as u64,
        ..Default::default()
    };

    // ---- functional pass -------------------------------------------------
    // Consumer receive queues: per consumer, batches in arrival order.
    // (Per-CG partitioning only affects cost, not routing: every CG runs
    // the same producer/consumer layout on its block.)
    //
    // The producer and consumer sides each run as real worker-pool jobs
    // (the host analogue of the CPE pairs): producers are chunked over
    // producer indices — concatenating per-chunk flush lists in chunk
    // order reproduces the serial producer-major arrival order — and
    // consumers over consumer indices, which own disjoint bucket sets
    // (`bucket % consumers`), so bucket contents are byte-identical to
    // the serial pass for every worker count.
    let mut rma_flushes = 0u64;
    let mut pool_stats = pool::PoolStats::default();
    let bucket_of = &bucket_of;
    for cg_chunk in items.chunks(n.div_ceil(active_cgs).max(1)) {
        let slice_len = cg_chunk.len().div_ceil(cfg.producers).max(1);
        let n_producers = cg_chunk.len().div_ceil(slice_len).min(cfg.producers);
        let (parts, pstats) = pool::run_ranges(n_producers as u64, OCS_GRAIN_CPES, |_, r| {
            let mut flushes = 0u64;
            // Cap-triggered and final partial flushes, kept apart so the
            // merge can replay the serial order (all caps, then partials).
            let mut caps: Vec<Vec<(usize, Vec<T>)>> = vec![Vec::new(); cfg.consumers];
            let mut partials: Vec<Vec<(usize, Vec<T>)>> = vec![Vec::new(); cfg.consumers];
            for p in r.start as usize..r.end as usize {
                // Producers take contiguous slices of the CG's block.
                let slice = &cg_chunk[p * slice_len..((p + 1) * slice_len).min(cg_chunk.len())];
                let mut send: Vec<Vec<T>> = vec![Vec::with_capacity(cap); cfg.consumers];
                for &it in slice {
                    let b = bucket_of(&it);
                    assert!(b < num_buckets, "bucket {b} out of range {num_buckets}");
                    let c = b % cfg.consumers;
                    send[c].push(it);
                    if send[c].len() == cap {
                        let batch = std::mem::replace(&mut send[c], Vec::with_capacity(cap));
                        caps[c].push((p, batch));
                        flushes += 1;
                    }
                }
                for (c, batch) in send.into_iter().enumerate() {
                    if !batch.is_empty() {
                        partials[c].push((p, batch));
                        flushes += 1;
                    }
                }
            }
            (flushes, caps, partials)
        });
        pool_stats.merge(&pstats);
        let mut recv: Vec<Vec<(usize, Vec<T>)>> = vec![Vec::new(); cfg.consumers];
        let mut partials_by_c: Vec<Vec<(usize, Vec<T>)>> = vec![Vec::new(); cfg.consumers];
        for (flushes, caps, partials) in parts {
            rma_flushes += flushes;
            for (dst, batches) in recv.iter_mut().zip(caps) {
                dst.extend(batches);
            }
            for (dst, batches) in partials_by_c.iter_mut().zip(partials) {
                dst.extend(batches);
            }
        }
        for (dst, batches) in recv.iter_mut().zip(partials_by_c) {
            dst.extend(batches);
        }
        // Consumers drain in arrival order into the buckets they own.
        let recv = &recv;
        let (drained, cstats) = pool::run_ranges(cfg.consumers as u64, OCS_GRAIN_CPES, |_, r| {
            let mut out: Vec<(usize, Vec<T>)> = Vec::new();
            for c in r.start as usize..r.end as usize {
                // Buckets owned by consumer c: c, c + consumers, ...
                let n_owned = num_buckets.saturating_sub(c).div_ceil(cfg.consumers);
                let mut local: Vec<Vec<T>> = vec![Vec::new(); n_owned];
                for (_, batch) in &recv[c] {
                    for &it in batch {
                        local[(bucket_of(&it) - c) / cfg.consumers].push(it);
                    }
                }
                for (i, v) in local.into_iter().enumerate() {
                    if !v.is_empty() {
                        out.push((c + i * cfg.consumers, v));
                    }
                }
            }
            out
        });
        pool_stats.merge(&cstats);
        for chunk in drained {
            for (b, v) in chunk {
                buckets[b].extend(v);
            }
        }
    }
    report.pool = pool_stats;

    // ---- cost model -------------------------------------------------------
    let payload = n as u64 * item_bytes;
    let per_cg_payload = payload.div_ceil(active_cgs as u64);
    let per_cg_items = (n as u64).div_ceil(active_cgs as u64);

    // CG-serial DMA: stream input in at full grain, write buckets out at
    // buffer grain (sub-1KB ⇒ reduced efficiency).
    let dma_in = kernels::dma_stream(machine, per_cg_payload, machine.dma_grain_bytes, 1);
    let dma_out = kernels::dma_stream(machine, per_cg_payload, cfg.buffer_bytes, 1);
    let dma = dma_in + dma_out;

    // Producer critical path: scalar work on its item share plus RMA puts.
    let items_per_producer = per_cg_items.div_ceil(cfg.producers as u64);
    let puts_per_producer = items_per_producer.div_ceil(cap as u64);
    let producer = SimTime::secs(
        items_per_producer as f64 * machine.cpe_cycles_per_item / machine.cpe_hz
            + puts_per_producer as f64
                * (machine.rma_latency + cfg.buffer_bytes as f64 / machine.rma_bandwidth),
    );
    // Consumer critical path: scalar insert work on its share.
    let items_per_consumer = per_cg_items.div_ceil(cfg.consumers as u64);
    let consumer =
        SimTime::secs(items_per_consumer as f64 * machine.cpe_cycles_per_item / machine.cpe_hz);

    // Cross-CG synchronization (multi-CG only): one atomic per claimed
    // input block, serialized per CG ("rarely conflicts", §4.4).
    let atomic_ops = if active_cgs > 1 {
        per_cg_payload.div_ceil(cfg.cg_sync_block_bytes as u64)
    } else {
        0
    };
    let atomics = kernels::atomics(machine, atomic_ops);

    report.time = dma.max(producer).max(consumer) + atomics;
    report.dma_bytes = 2 * payload;
    report.rma_ops = rma_flushes;
    report.rma_bytes = rma_flushes * cfg.buffer_bytes as u64;
    report.atomic_ops = atomic_ops * active_cgs as u64;
    (buckets, report)
}

/// Sequential bucket sort on the MPE — the Figure 14 baseline. Every
/// scattered append is one random main-memory access.
pub fn ocs_sort_mpe<T, F>(
    machine: &MachineConfig,
    items: &[T],
    num_buckets: usize,
    bucket_of: F,
) -> (Vec<Vec<T>>, KernelReport)
where
    T: Copy,
    F: Fn(&T) -> usize,
{
    let mut buckets: Vec<Vec<T>> = (0..num_buckets).map(|_| Vec::new()).collect();
    for &it in items {
        let b = bucket_of(&it);
        assert!(b < num_buckets);
        buckets[b].push(it);
    }
    let report = KernelReport {
        time: kernels::mpe_scatter(machine, items.len() as u64),
        items: items.len() as u64,
        ..Default::default()
    };
    (buckets, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::SplitMix64;

    fn m() -> MachineConfig {
        MachineConfig::new_sunway()
    }

    fn random_items(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    fn check_buckets(items: &[u64], buckets: &[Vec<u64>], nb: u64) {
        // Every item lands in its bucket; the multiset is preserved.
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, items.len());
        for (b, bucket) in buckets.iter().enumerate() {
            for &x in bucket {
                assert_eq!(x % nb, b as u64);
            }
        }
        let mut a: Vec<u64> = items.to_vec();
        let mut b: Vec<u64> = buckets.iter().flatten().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rma_sort_routes_every_item() {
        let machine = m();
        let items = random_items(10_000, 1);
        let (buckets, report) =
            ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 1, |x| {
                (x % 256) as usize
            });
        check_buckets(&items, &buckets, 256);
        assert_eq!(report.items, 10_000);
        assert!(report.rma_ops > 0);
    }

    #[test]
    fn rma_sort_is_deterministic() {
        let machine = m();
        let items = random_items(5_000, 2);
        let run = || {
            ocs_sort_rma(&machine, &OcsConfig::default(), &items, 100, 6, |x| {
                (x % 100) as usize
            })
            .0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mpe_sort_matches_rma_sort_contents() {
        let machine = m();
        let items = random_items(3_000, 3);
        let (a, _) = ocs_sort_mpe(&machine, &items, 64, |x| (x % 64) as usize);
        let (b, _) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 64, 6, |x| {
            (x % 64) as usize
        });
        for (x, y) in a.iter().zip(&b) {
            let mut x = x.clone();
            let mut y = y.clone();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let machine = m();
        let (b, r) = ocs_sort_rma(&machine, &OcsConfig::default(), &[] as &[u64], 8, 6, |_| 0);
        assert!(b.iter().all(Vec::is_empty));
        assert_eq!(r.items, 0);
        let one = [5u64];
        let (b, _) = ocs_sort_rma(&machine, &OcsConfig::default(), &one, 8, 6, |x| {
            (*x % 8) as usize
        });
        assert_eq!(b[5], vec![5]);
    }

    #[test]
    fn figure14_throughput_ordering_and_magnitudes() {
        // Bucket 64-bit integers by their low 8 bits, as in §6.3. We use
        // a smaller payload than the paper's 4 GB; throughput is
        // size-independent in the model above ~1 MB.
        let machine = m();
        let items = random_items(1 << 20, 4); // 8 MiB
        let bytes = (items.len() * 8) as u64;
        let (_, mpe) = ocs_sort_mpe(&machine, &items, 256, |x| (x & 0xff) as usize);
        let (_, cg1) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 1, |x| {
            (x & 0xff) as usize
        });
        let (_, cg6) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 6, |x| {
            (x & 0xff) as usize
        });
        let (t_mpe, t1, t6) = (
            mpe.throughput(bytes) / 1e9,
            cg1.throughput(bytes) / 1e9,
            cg6.throughput(bytes) / 1e9,
        );
        assert!(
            t_mpe < t1 && t1 < t6,
            "ordering MPE<{t_mpe}> 1CG<{t1}> 6CG<{t6}>"
        );
        // Paper: 0.0406 / 12.5 / 58.6 GB/s. Allow generous bands — the
        // shape, not the digits, is the claim.
        assert!((0.02..0.08).contains(&t_mpe), "MPE {t_mpe} GB/s");
        assert!((8.0..18.0).contains(&t1), "1 CG {t1} GB/s");
        assert!((45.0..80.0).contains(&t6), "6 CG {t6} GB/s");
        let speedup = t6 / t1;
        assert!(
            (3.5..5.9).contains(&speedup),
            "6CG/1CG speedup {speedup}, paper 4.7x"
        );
    }

    #[test]
    fn six_cg_pays_atomics() {
        let machine = m();
        let items = random_items(1 << 16, 5);
        let (_, cg1) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 16, 1, |x| {
            (x % 16) as usize
        });
        let (_, cg6) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 16, 6, |x| {
            (x % 16) as usize
        });
        assert_eq!(cg1.atomic_ops, 0);
        assert!(cg6.atomic_ops > 0);
    }

    #[test]
    fn custom_buffer_size_respected() {
        let machine = m();
        let cfg = OcsConfig {
            buffer_bytes: 64,
            ..Default::default()
        };
        assert_eq!(cfg.buffer_capacity::<u64>(), 8);
        let items = random_items(100_000, 6);
        let (buckets, report) = ocs_sort_rma(&machine, &cfg, &items, 32, 1, |x| (x % 32) as usize);
        check_buckets(&items, &buckets, 32);
        // Smaller buffers mean more RMA flushes than the default config.
        let (_, big) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 32, 1, |x| {
            (x % 32) as usize
        });
        assert!(report.rma_ops > big.rma_ops);
    }
}
