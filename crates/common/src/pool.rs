//! Intra-rank worker pool for the hot kernels (the CPE analogue).
//!
//! The paper's within-node speed comes from the 64 CPEs of each core
//! group scanning frontiers and bucketing messages in parallel while
//! the MPE orchestrates. This module reproduces that layer for the
//! *host* execution of the simulation: a bounded, work-chunked pool
//! that the pull/push scans ([`crate::Bitmap`] word blocks), the OCS
//! bucket sort, and the PARADIS permutation route through.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism.** Parallel runs must produce byte-identical
//!    parents/depths to the serial run. Work is split into contiguous
//!    index *chunks*; each chunk computes an owned result from a
//!    read-only snapshot, and the caller merges results **in chunk
//!    order**, reproducing the serial iteration order exactly. Whether
//!    a helper thread actually ran a chunk can never change the output.
//! 2. **No oversubscription.** Every simulated rank is already an OS
//!    thread ([`std::thread::scope`] in the cluster driver). Helper
//!    threads draw from one *process-global* permit budget of
//!    `SUNBFS_WORKERS - 1`, so the whole simulated cluster never runs
//!    more than `SUNBFS_WORKERS` kernel threads at once. Acquisition
//!    is non-blocking: when permits are exhausted a rank simply scans
//!    inline, exactly like the serial path.
//! 3. **Serial is the special case, not a separate code path.** With
//!    `SUNBFS_WORKERS=1` (the default) [`run_ranges`] degenerates to a
//!    single inline call covering the whole index range — the same
//!    loop body the parallel path runs per chunk — so fault injection
//!    and checkpoint semantics are untouched.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::{JsonValue, ToJson};

/// Upper bound on chunks handed out per configured worker: more chunks
/// than workers gives the pool slack to balance uneven ranges, while
/// the cap keeps per-chunk merge overhead bounded.
const CHUNKS_PER_WORKER: u64 = 4;

/// Process-wide override installed by [`set_workers`]; 0 means "unset,
/// fall back to the `SUNBFS_WORKERS` environment variable".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Helper threads currently running across *all* ranks; bounded by
/// `workers() - 1`.
static HELPERS_IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

fn env_workers() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SUNBFS_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The configured worker count: an explicit [`set_workers`] override if
/// present, else `SUNBFS_WORKERS` (read once per process), else 1.
pub fn workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_workers(),
        n => n,
    }
}

/// Override the worker count for this process, taking precedence over
/// `SUNBFS_WORKERS`. Passing 0 clears the override. Intended for tests
/// (e.g. the `tests/parallel_equivalence.rs` sweep) and embedding
/// applications; the override applies to pool calls that *start* after
/// it is set.
pub fn set_workers(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Per-call accounting of how a kernel's work was split and staffed —
/// the raw material for the per-kernel worker-scaling stats surfaced
/// in `IterationStats` / JSON schema v5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool invocations (one per kernel scan routed through the pool).
    pub invocations: u64,
    /// Total chunks the invocations were split into (equals
    /// `invocations` when running serially).
    pub chunks: u64,
    /// Helper threads dispatched across the invocations; 0 means every
    /// chunk ran inline on the rank thread (the serial path).
    pub helpers: u64,
}

impl PoolStats {
    /// Accumulate another call's stats into this one.
    pub fn merge(&mut self, other: &PoolStats) {
        self.invocations += other.invocations;
        self.chunks += other.chunks;
        self.helpers += other.helpers;
    }
}

impl ToJson for PoolStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("invocations", self.invocations)
            .field("chunks", self.chunks)
            .field("helpers", self.helpers)
            .build()
    }
}

/// Try to reserve up to `want` helper permits from the global budget.
/// Never blocks: returns however many permits were free (possibly 0).
fn acquire_helpers(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let budget = workers().saturating_sub(1);
    loop {
        let in_flight = HELPERS_IN_FLIGHT.load(Ordering::Acquire);
        let take = want.min(budget.saturating_sub(in_flight));
        if take == 0 {
            return 0;
        }
        if HELPERS_IN_FLIGHT
            .compare_exchange(
                in_flight,
                in_flight + take,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return take;
        }
    }
}

fn release_helpers(n: usize) {
    if n > 0 {
        HELPERS_IN_FLIGHT.fetch_sub(n, Ordering::AcqRel);
    }
}

/// Split `[0, len)` into contiguous chunks, run `f(chunk_idx, range)`
/// for each (in parallel when workers and permits allow), and return
/// the per-chunk results **in chunk order** plus the call's
/// [`PoolStats`].
///
/// `min_grain` is the smallest range worth a chunk of its own; ranges
/// shorter than one grain always run as a single inline call. With
/// `workers() == 1` the function makes exactly one call `f(0, 0..len)`
/// on the calling thread — the serial path.
///
/// Determinism contract: `f` must not mutate shared state (it receives
/// only its chunk index and range; captured borrows should be
/// read-only snapshots), and callers must merge the returned results
/// in vector order. Under those rules the merged outcome is identical
/// for every worker count and every chunk schedule.
pub fn run_ranges<T, F>(len: u64, min_grain: u64, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize, Range<u64>) -> T + Sync,
{
    let min_grain = min_grain.max(1);
    let w = workers();
    if w <= 1 || len <= min_grain {
        let out = vec![f(0, 0..len)];
        return (
            out,
            PoolStats {
                invocations: 1,
                chunks: 1,
                helpers: 0,
            },
        );
    }

    let n_chunks = len
        .div_ceil(min_grain)
        .min(w as u64 * CHUNKS_PER_WORKER)
        .max(1) as usize;
    let helpers = acquire_helpers((w - 1).min(n_chunks - 1));

    // Per-chunk result slots. Mutex<Option<T>> rather than OnceLock so
    // `T: Send` suffices (each slot is written exactly once, uncontended).
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n_chunks).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let chunk_range = |c: usize| -> Range<u64> {
        let c = c as u64;
        let n = n_chunks as u64;
        (c * len / n)..((c + 1) * len / n)
    };
    let work = |_worker: usize| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let value = f(c, chunk_range(c));
        let prev = slots[c].lock().expect("slot poisoned").replace(value);
        debug_assert!(prev.is_none(), "chunk {c} claimed twice");
    };

    if helpers == 0 {
        work(0);
    } else {
        std::thread::scope(|s| {
            for h in 0..helpers {
                let work = &work;
                s.spawn(move || work(h + 1));
            }
            work(0);
        });
        release_helpers(helpers);
    }

    let out = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("every chunk ran")
        })
        .collect();
    (
        out,
        PoolStats {
            invocations: 1,
            chunks: n_chunks as u64,
            helpers: helpers as u64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the global override.
    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        set_workers(n);
        let r = f();
        set_workers(0);
        r
    }

    #[test]
    fn serial_is_one_inline_chunk() {
        with_workers(1, || {
            let (out, stats) = run_ranges(1000, 8, |c, r| (c, r));
            assert_eq!(out, vec![(0, 0..1000)]);
            assert_eq!(stats.chunks, 1);
            assert_eq!(stats.helpers, 0);
        });
    }

    #[test]
    fn chunks_tile_the_range_in_order() {
        with_workers(4, || {
            let (out, stats) = run_ranges(1003, 8, |c, r| (c, r));
            assert!(stats.chunks > 1);
            let mut expect_start = 0u64;
            for (i, (c, r)) in out.iter().enumerate() {
                assert_eq!(*c, i);
                assert_eq!(r.start, expect_start);
                expect_start = r.end;
            }
            assert_eq!(expect_start, 1003);
        });
    }

    #[test]
    fn short_ranges_run_inline() {
        with_workers(8, || {
            let (out, stats) = run_ranges(5, 64, |_, r| r);
            assert_eq!(out, vec![0..5]);
            assert_eq!(stats.helpers, 0);
        });
    }

    #[test]
    fn results_match_serial_for_every_worker_count() {
        let serial: u64 = (0..10_000u64).map(|i| i * i % 7919).sum();
        for w in [1usize, 2, 3, 4, 7, 16] {
            let got: u64 = with_workers(w, || {
                let (parts, _) =
                    run_ranges(10_000, 16, |_, r| r.map(|i| i * i % 7919).sum::<u64>());
                parts.into_iter().sum()
            });
            assert_eq!(got, serial, "workers={w}");
        }
    }

    #[test]
    fn permit_budget_is_bounded_and_restored() {
        with_workers(4, || {
            let before = HELPERS_IN_FLIGHT.load(Ordering::SeqCst);
            let (_, stats) = run_ranges(1 << 16, 8, |_, r| r.end - r.start);
            assert!(stats.helpers <= 3);
            assert_eq!(HELPERS_IN_FLIGHT.load(Ordering::SeqCst), before);
        });
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        with_workers(2, || {
            let (outer, _) = run_ranges(64, 4, |_, r| {
                let (inner, _) = run_ranges(32, 4, |_, q| q.end - q.start);
                (r.end - r.start) + inner.into_iter().sum::<u64>()
            });
            let total: u64 = outer.into_iter().sum();
            assert!(total > 0);
        });
    }

    #[test]
    fn pool_stats_merge_sums() {
        let mut a = PoolStats {
            invocations: 1,
            chunks: 4,
            helpers: 2,
        };
        a.merge(&PoolStats {
            invocations: 2,
            chunks: 3,
            helpers: 1,
        });
        assert_eq!(
            a,
            PoolStats {
                invocations: 3,
                chunks: 7,
                helpers: 3,
            }
        );
    }
}
