//! Simulated-time accounting.
//!
//! The reproduction separates *functional* execution (real Rust code
//! moving real bytes at laptop scale) from *performance* projection (a
//! cost model calibrated to the paper's machine constants). Both the
//! chip simulator and the network runtime express cost in [`SimTime`]
//! seconds and aggregate per-category costs in a [`TimeAccumulator`],
//! which the figure harnesses read to print the paper's breakdowns
//! (Figures 10, 11, 15).

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Sub};

/// A duration/instant on the simulated clock, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from a byte volume over a bandwidth in bytes/second.
    #[inline]
    pub fn from_bytes(bytes: u64, bandwidth: f64) -> Self {
        debug_assert!(bandwidth > 0.0);
        SimTime(bytes as f64 / bandwidth)
    }

    /// Construct from an item count over a rate in items/second.
    #[inline]
    pub fn from_items(items: u64, rate: f64) -> Self {
        debug_assert!(rate > 0.0);
        SimTime(items as f64 / rate)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Seconds as `f64`.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

/// Named per-category simulated-time totals.
///
/// Categories are free-form strings ("alltoallv", "EH2EH.pull", ...); the
/// figure harnesses group and normalize them. Deterministic iteration
/// order (BTreeMap) keeps printed tables stable.
#[derive(Clone, Debug, Default)]
pub struct TimeAccumulator {
    totals: BTreeMap<String, f64>,
}

impl TimeAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `t` to `category`.
    pub fn add(&mut self, category: &str, t: SimTime) {
        *self.totals.entry(category.to_string()).or_insert(0.0) += t.0;
    }

    /// Total for one category (0 when absent).
    pub fn get(&self, category: &str) -> SimTime {
        SimTime(self.totals.get(category).copied().unwrap_or(0.0))
    }

    /// Sum over all categories.
    pub fn total(&self) -> SimTime {
        SimTime(self.totals.values().sum())
    }

    /// Sum over categories whose name starts with `prefix`.
    pub fn total_with_prefix(&self, prefix: &str) -> SimTime {
        SimTime(
            self.totals
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(_, v)| v)
                .sum(),
        )
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &TimeAccumulator) {
        for (k, v) in &other.totals {
            *self.totals.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    /// All `(category, seconds)` pairs in lexicographic order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, f64)> {
        self.totals.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Remove every category, keeping the allocation.
    pub fn reset(&mut self) {
        self.totals.clear();
    }

    /// Per-category difference `self - earlier` (categories missing from
    /// `earlier` count as zero). Used to isolate one phase's times from
    /// a running accumulator.
    pub fn diff(&self, earlier: &TimeAccumulator) -> TimeAccumulator {
        let mut out = TimeAccumulator::new();
        for (k, v) in &self.totals {
            let base = earlier.totals.get(k).copied().unwrap_or(0.0);
            let d = v - base;
            if d != 0.0 {
                out.totals.insert(k.clone(), d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::secs(1.5);
        let b = SimTime::secs(0.5);
        assert_eq!((a + b).as_secs(), 2.0);
        assert_eq!((a - b).as_secs(), 1.0);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn from_bytes_and_items() {
        assert_eq!(SimTime::from_bytes(100, 50.0).as_secs(), 2.0);
        assert_eq!(SimTime::from_items(30, 10.0).as_secs(), 3.0);
    }

    #[test]
    fn accumulator_adds_and_groups() {
        let mut acc = TimeAccumulator::new();
        acc.add("comm.alltoallv", SimTime::secs(1.0));
        acc.add("comm.alltoallv", SimTime::secs(2.0));
        acc.add("comm.allgather", SimTime::secs(4.0));
        acc.add("compute", SimTime::secs(8.0));
        assert_eq!(acc.get("comm.alltoallv").as_secs(), 3.0);
        assert_eq!(acc.total_with_prefix("comm.").as_secs(), 7.0);
        assert_eq!(acc.total().as_secs(), 15.0);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = TimeAccumulator::new();
        let mut b = TimeAccumulator::new();
        a.add("x", SimTime::secs(1.0));
        b.add("x", SimTime::secs(2.0));
        b.add("y", SimTime::secs(3.0));
        a.merge(&b);
        assert_eq!(a.get("x").as_secs(), 3.0);
        assert_eq!(a.get("y").as_secs(), 3.0);
    }

    #[test]
    fn diff_isolates_a_phase() {
        let mut acc = TimeAccumulator::new();
        acc.add("a", SimTime::secs(1.0));
        let snapshot = acc.clone();
        acc.add("a", SimTime::secs(2.0));
        acc.add("b", SimTime::secs(5.0));
        let d = acc.diff(&snapshot);
        assert_eq!(d.get("a").as_secs(), 2.0);
        assert_eq!(d.get("b").as_secs(), 5.0);
        assert_eq!(d.total().as_secs(), 7.0);
    }

    #[test]
    fn entries_are_sorted() {
        let mut acc = TimeAccumulator::new();
        acc.add("b", SimTime::secs(1.0));
        acc.add("a", SimTime::secs(1.0));
        let keys: Vec<&str> = acc.entries().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
