//! Micro-benchmarks for the hot kernels (wall-clock, not simulated
//! time): the R-MAT generator, the PARADIS radix sort, the bitmap
//! primitives, and the functional OCS-RMA bucketing pass.
//!
//! A minimal self-timed harness (median of [`SAMPLES`] runs after one
//! warmup) replaces criterion: the build container has no crates.io
//! access, and medians over ten runs are plenty for the shape-level
//! statements these numbers back.

use std::time::Instant;

use sunbfs_common::{Bitmap, MachineConfig, SplitMix64};
use sunbfs_rmat::RmatParams;
use sunbfs_sort::radix_sort_u64;
use sunbfs_sunway::{ocs_sort_rma, OcsConfig};

const SAMPLES: usize = 10;

/// Time `f` over [`SAMPLES`] runs (after one warmup) and report the
/// median, with items/s throughput when `throughput_items` is given.
fn bench<T>(label: &str, throughput_items: Option<u64>, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    match throughput_items {
        Some(items) => println!(
            "{label:<32} {:>10.3} ms   {:>10.2} Melem/s",
            median * 1e3,
            items as f64 / median / 1e6
        ),
        None => println!("{label:<32} {:>10.3} ms", median * 1e3),
    }
}

fn main() {
    println!("crit_kernels: median of {SAMPLES} runs\n");

    for scale in [12u32, 14] {
        let params = RmatParams::graph500(scale, 42);
        bench(
            &format!("rmat_generate/{scale}"),
            Some(params.num_edges()),
            || sunbfs_rmat::generate_edges(&params),
        );
    }

    for n in [1usize << 14, 1 << 18] {
        let mut rng = SplitMix64::new(7);
        let data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        bench(&format!("paradis_radix_sort/{n}"), Some(n as u64), || {
            let mut v = data.clone();
            radix_sort_u64(&mut v, 2);
            v
        });
    }

    let bits = 1u64 << 20;
    let mut bm = Bitmap::new(bits);
    let mut rng = SplitMix64::new(9);
    for _ in 0..(bits / 16) {
        bm.set(rng.next_below(bits));
    }
    bench("bitmap_iter_ones_1M", Some(bits), || {
        bm.iter_ones().sum::<u64>()
    });
    bench("bitmap_count_range_1M", Some(bits), || {
        bm.count_ones_range(1000, bits - 1000)
    });
    let other = bm.clone();
    bench("bitmap_or_assign_1M", Some(bits), || {
        let mut x = bm.clone();
        x.or_assign(&other);
        x
    });

    let machine = MachineConfig::new_sunway();
    let mut rng = SplitMix64::new(11);
    let items: Vec<u64> = (0..1usize << 18).map(|_| rng.next_u64()).collect();
    bench("ocs_rma_bucket_256_6cg", Some(items.len() as u64), || {
        ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 6, |x| {
            (x & 0xff) as usize
        })
    });
}
