#!/usr/bin/env bash
# Committed perf trajectory: run the graph500 runner at a pinned small
# scale — once serial (SUNBFS_WORKERS=1) and once parallel — and leave
# the parallel run's BENCH_<scale>_<rows>x<cols>.json in the repository
# root as the committed trajectory point for this revision.
#
# The smoke at the end asserts the schema-v6 `wall` section is present
# and that the parallel run's wall-clock throughput clears the bar:
#
#   * on a machine with >= 4 cores, parallel must not lose to serial
#     (the real acceptance target is >= 2x at SCALE 16; see docs/PERF.md);
#   * on fewer cores the pool degrades to near-serial staffing, so only
#     a generous overhead bound (>= serial/3) is enforced.
#
# Knobs (env): BENCH_SCALE (14), BENCH_RANKS (4), BENCH_ROOTS (4),
# BENCH_WORKERS (4), BENCH_TIMEOUT (600 s per run, hard).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-14}"
RANKS="${BENCH_RANKS:-4}"
ROOTS="${BENCH_ROOTS:-4}"
WORKERS="${BENCH_WORKERS:-4}"
BENCH_TIMEOUT="${BENCH_TIMEOUT:-600}"

# One number per report: the wall section's edges_per_second (it appears
# exactly once in the schema — see src/metrics.rs `wall_json`).
eps_of() {
    sed -n 's/.*"edges_per_second": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}

echo "==> bench trajectory: SCALE=$SCALE ranks=$RANKS roots=$ROOTS workers=$WORKERS"
cargo build -q --release --example graph500_runner

SERIAL_JSON="$(mktemp)"
echo "==> serial reference (SUNBFS_WORKERS=1)"
SUNBFS_WORKERS=1 timeout "$BENCH_TIMEOUT" \
    cargo run -q --release --example graph500_runner -- \
    "$SCALE" "$RANKS" 256 64 "$ROOTS" --json "$SERIAL_JSON" > /dev/null

echo "==> parallel run (SUNBFS_WORKERS=$WORKERS) -> committed artifact"
SUNBFS_WORKERS="$WORKERS" timeout "$BENCH_TIMEOUT" \
    cargo run -q --release --example graph500_runner -- \
    "$SCALE" "$RANKS" 256 64 "$ROOTS" --json > /dev/null

BENCH_JSON="$(ls BENCH_"$SCALE"_*.json | head -1)"
echo "    wrote $BENCH_JSON"

# --- smoke: wall section present and sane -----------------------------
grep -Eq '"schema_version": *9' "$BENCH_JSON"
grep -q '"wall":' "$BENCH_JSON"
grep -q '"available_parallelism":' "$BENCH_JSON"
grep -Eq '"workers": *'"$WORKERS" "$BENCH_JSON"
grep -Eq '"edges_per_second": *[0-9]' "$BENCH_JSON"

SERIAL_EPS="$(eps_of "$SERIAL_JSON")"
PARALLEL_EPS="$(eps_of "$BENCH_JSON")"
CORES="$(nproc 2>/dev/null || echo 1)"
rm -f "$SERIAL_JSON"

echo "    serial:   $SERIAL_EPS edges/s"
echo "    parallel: $PARALLEL_EPS edges/s ($CORES cores visible)"

awk -v s="$SERIAL_EPS" -v p="$PARALLEL_EPS" -v c="$CORES" 'BEGIN {
    if (s <= 0 || p <= 0) { print "bench smoke: non-positive throughput"; exit 1 }
    if (c >= 4 && p < s) {
        printf "bench smoke: parallel (%g) lost to serial (%g) on %d cores\n", p, s, c
        exit 1
    }
    if (p < s / 3) {
        printf "bench smoke: parallel (%g) below overhead bound serial/3 (%g)\n", p, s / 3
        exit 1
    }
}'

echo "bench trajectory OK: $BENCH_JSON"
