//! Property-based tests for the foundation types: the bitmap against a
//! HashSet model, the label scrambler's bijectivity, and histogram
//! conservation laws.

use proptest::prelude::*;
use std::collections::HashSet;
use sunbfs_common::{Bitmap, LabelScrambler, LogHistogram, SplitMix64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A bitmap behaves exactly like a set of integers.
    #[test]
    fn bitmap_matches_hashset_model(
        len in 1u64..2000,
        ops in prop::collection::vec((0u64..2000, any::<bool>()), 0..200),
    ) {
        let mut bm = Bitmap::new(len);
        let mut model: HashSet<u64> = HashSet::new();
        for (raw, insert) in ops {
            let i = raw % len;
            if insert {
                bm.set(i);
                model.insert(i);
            } else {
                bm.clear_bit(i);
                model.remove(&i);
            }
        }
        prop_assert_eq!(bm.count_ones(), model.len() as u64);
        let from_iter: HashSet<u64> = bm.iter_ones().collect();
        prop_assert_eq!(&from_iter, &model);
        for i in 0..len {
            prop_assert_eq!(bm.get(i), model.contains(&i));
        }
    }

    /// Range popcount agrees with filtered iteration for arbitrary windows.
    #[test]
    fn count_range_agrees_with_iter(
        len in 1u64..1000,
        bits in prop::collection::vec(0u64..1000, 0..100),
        lo in 0u64..1000,
        hi in 0u64..1200,
    ) {
        let mut bm = Bitmap::new(len);
        for b in bits {
            bm.set(b % len);
        }
        let expect = bm.iter_ones().filter(|&i| i >= lo && i < hi.min(len)).count() as u64;
        prop_assert_eq!(bm.count_ones_range(lo, hi), expect);
    }

    /// OR-union and AND-NOT difference respect set algebra.
    #[test]
    fn bitmap_algebra(
        len in 1u64..500,
        a in prop::collection::vec(0u64..500, 0..60),
        b in prop::collection::vec(0u64..500, 0..60),
    ) {
        let mut ba = Bitmap::new(len);
        let mut bb = Bitmap::new(len);
        let sa: HashSet<u64> = a.iter().map(|x| x % len).collect();
        let sb: HashSet<u64> = b.iter().map(|x| x % len).collect();
        for &x in &sa { ba.set(x); }
        for &x in &sb { bb.set(x); }
        let mut union = ba.clone();
        union.or_assign(&bb);
        prop_assert_eq!(union.count_ones(), sa.union(&sb).count() as u64);
        let mut diff = ba.clone();
        diff.and_not_assign(&bb);
        prop_assert_eq!(diff.count_ones(), sa.difference(&sb).count() as u64);
        prop_assert_eq!(ba.count_and_not(&bb), sa.difference(&sb).count() as u64);
    }

    /// The label scrambler is injective on sampled points of large spaces.
    #[test]
    fn scrambler_injective_on_samples(bits in 8u32..40, seed in any::<u64>(), n in 100usize..500) {
        let s = LabelScrambler::new(bits, seed);
        let space = 1u64 << bits;
        let mut rng = SplitMix64::new(seed ^ 0xabc);
        let inputs: HashSet<u64> = (0..n).map(|_| rng.next_below(space)).collect();
        let outputs: HashSet<u64> = inputs.iter().map(|&x| s.scramble(x)).collect();
        prop_assert_eq!(outputs.len(), inputs.len(), "collision found");
        prop_assert!(outputs.iter().all(|&y| y < space));
    }

    /// Histograms conserve sample counts under any merge order.
    #[test]
    fn histogram_conservation(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = LogHistogram::decades();
        let mut hb = LogHistogram::decades();
        for &x in &a { ha.record(x); }
        for &x in &b { hb.record(x); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), (a.len() + b.len()) as u64);
        // Bucket monotonicity: larger values never land in earlier buckets.
        let h = LogHistogram::decades();
        for w in a.windows(2) {
            if w[0] <= w[1] {
                prop_assert!(h.bucket_of(w[0]) <= h.bucket_of(w[1]));
            }
        }
    }

    /// SplitMix64 streams with different tags never collide on a prefix.
    #[test]
    fn split_streams_diverge(seed in any::<u64>(), t1 in 0u64..1000, t2 in 0u64..1000) {
        prop_assume!(t1 != t2);
        let root = SplitMix64::new(seed);
        let mut a = root.split(t1);
        let mut b = root.split(t2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        prop_assert!(!same, "independent streams emitted identical 16-draw prefix");
    }
}
