#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps

# Prose is part of the contract too: every relative link and #anchor in
# README.md and docs/*.md must resolve (plain shell + grep, no deps).
echo "==> doc link check"
./scripts/check_docs.sh

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

# Worker-pool determinism: SUNBFS_WORKERS must never change an output
# byte (parents and depths identical to the serial path at every worker
# count) — the contract that makes the parallel kernels trustworthy.
echo "==> worker-pool equivalence sweep (hard timeout)"
timeout 600 cargo test -q --release --test parallel_equivalence

# Direction-heuristic equivalence: `fixed` must stay byte-identical to
# the pre-vectorization golden fingerprint, `measured` must validate
# with identical depths across meshes and identical bytes across worker
# counts, and the wide-word primitives must match their scalar
# reference on ragged tails (property-tested).
echo "==> heuristic equivalence suite (hard timeout)"
timeout 600 cargo test -q --release --test heuristic_equivalence

# The fault suites prove every injected failure terminates in a typed
# outcome instead of a hung barrier — so they run under a hard wall
# timeout: a hang is a regression, not a slow test.
echo "==> fault containment suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-net --test fault_matrix
timeout 300 cargo test -q --test fault_e2e --test fault_env

# Self-healing: exchange-layer retransmission heals corruption below
# the retry loop, and checkpoint/resume salvages completed iterations.
# Same hard-timeout rule — the heal protocol's barriers must never hang.
echo "==> recovery suite (hard timeout)"
timeout 600 cargo test -q --test checkpoint_resume --test recovery_env

# Smoke: an injected bitflip on a live runner invocation must be healed
# at the exchange layer and surface as a retransmit in the JSON report.
echo "==> fault-plan smoke (graph500_runner --json)"
SMOKE_JSON="$(mktemp)"
SUNBFS_FAULT_PLAN="corrupt@1:3:bitflip" timeout 300 \
    cargo run -q --release --example graph500_runner -- 9 4 256 64 1 --json "$SMOKE_JSON" \
    > /dev/null
grep -Eq '"retransmits": *[1-9]' "$SMOKE_JSON"
grep -Eq '"schema_version": *10' "$SMOKE_JSON"
rm -f "$SMOKE_JSON"

# Smoke: the SUNBFS_DIRECTION runner override — both heuristic families
# run (and stamp the config they used into the report); a mistyped
# value must be a typed refusal with exit code 2, never a silent
# fallback to a default schedule.
echo "==> direction-heuristic override smoke (graph500_runner)"
DIR_JSON="$(mktemp)"
SUNBFS_DIRECTION=fixed timeout 300 \
    cargo run -q --release --example graph500_runner -- 9 4 256 64 1 --json "$DIR_JSON" \
    > /dev/null
grep -Eq '"direction_heuristic": *"fixed"' "$DIR_JSON"
SUNBFS_DIRECTION=measured timeout 300 \
    cargo run -q --release --example graph500_runner -- 9 4 256 64 1 --json "$DIR_JSON" \
    > /dev/null
grep -Eq '"direction_heuristic": *"measured"' "$DIR_JSON"
rm -f "$DIR_JSON"
set +e
SUNBFS_DIRECTION=sideways timeout 300 \
    cargo run -q --release --example graph500_runner -- 9 4 256 64 1 > /dev/null 2>&1
DIR_RC=$?
set -e
if [ "$DIR_RC" -ne 2 ]; then
    echo "direction smoke: unknown SUNBFS_DIRECTION must exit 2 (got $DIR_RC)"
    exit 1
fi

# Serve suite: admission control, batch formation, fault containment,
# batch-vs-sequential equivalence, and the >=2x roots/sec acceptance
# bar. Hard timeout for the same reason as the fault suites — a stuck
# queue or hung batch is a regression.
echo "==> serve suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-serve
timeout 600 cargo test -q --test serve_equivalence --test serve_perf

# Store suite: the paged codec round-trips byte-identically, every
# flipped byte is a typed refusal, and a session opened from a file
# serves the same parents/depths as the session that built it.
echo "==> store suite (hard timeout)"
timeout 300 cargo test -q -p sunbfs-store
timeout 600 cargo test -q --release --test store_session

# Smoke: SCALE 14 save -> load through the runner. The warm run must
# open the saved file (never rebuild) and its open wall time must beat
# the cold run's build wall time.
echo "==> store save/load smoke (graph500_runner)"
STORE_FILE="$(mktemp -u).sbfs"
COLD_JSON="$(mktemp)"
WARM_JSON="$(mktemp)"
timeout 600 cargo run -q --release --example graph500_runner -- 14 16 256 64 2 \
    --json "$COLD_JSON" --save-graph "$STORE_FILE" > /dev/null
timeout 600 cargo run -q --release --example graph500_runner -- 14 16 256 64 2 \
    --json "$WARM_JSON" --load-graph "$STORE_FILE" > /dev/null
grep -Eq '"saved": *true' "$COLD_JSON"
grep -Eq '"opened": *true' "$WARM_JSON"
grep -Eq '"schema_version": *10' "$WARM_JSON"
COLD_S=$(grep -o '"cold_build_wall_seconds": *[0-9.e-]*' "$COLD_JSON" | grep -o '[0-9.e-]*$')
WARM_S=$(grep -o '"warm_open_wall_seconds": *[0-9.e-]*' "$WARM_JSON" | grep -o '[0-9.e-]*$')
awk -v cold="$COLD_S" -v warm="$WARM_S" \
    'BEGIN { if (!(warm + 0 < cold + 0)) { print "warm open (" warm "s) not faster than cold build (" cold "s)"; exit 1 } }'
rm -f "$STORE_FILE" "$COLD_JSON" "$WARM_JSON"

# Smoke: the bfs_server stdin protocol answers with well-formed JSON —
# a load acknowledgment, per-query results, and a stats reply carrying
# the serve section. Mistyped load knobs must be typed refusals (never
# a silent default-config build), so the malformed load comes first and
# the server must still be graphless when the query arrives.
echo "==> bfs_server stdin smoke"
SERVE_OUT="$(mktemp)"
printf '%s\n' \
    '{"cmd":"load","scale":"9","ranks":4}' \
    '{"cmd":"query","root":1}' \
    '{"cmd":"load","scale":9,"ranks":4,"h_threshold":512}' \
    '{"cmd":"load","scale":9,"ranks":4}' \
    '{"cmd":"batch","roots":[1,2,3]}' \
    '{"cmd":"stats"}' \
    | timeout 300 cargo run -q --release --example bfs_server > "$SERVE_OUT"
grep -Eq '"reply":"error","detail":"load knob \\"scale\\" must be an unsigned integer' "$SERVE_OUT"
grep -Eq '"reply":"error","detail":"no graph loaded' "$SERVE_OUT"
grep -Eq '"reply":"error","detail":"load knob \\"h_threshold\\"' "$SERVE_OUT"
grep -Eq '"reply":"loaded"' "$SERVE_OUT"
grep -Eq '"reply":"result".*"status":"served"' "$SERVE_OUT"
grep -Eq '"reply":"stats".*"batch_roots_per_sec"' "$SERVE_OUT"
rm -f "$SERVE_OUT"

# Smoke: the server's `path` knob — the first invocation builds and
# saves, the second opens the same file instead of rebuilding.
echo "==> bfs_server store-path smoke"
SERVER_STORE="$(mktemp -u).sbfs"
FIRST_OUT="$(mktemp)"
SECOND_OUT="$(mktemp)"
printf '%s\n' \
    "{\"cmd\":\"load\",\"scale\":9,\"ranks\":4,\"path\":\"$SERVER_STORE\"}" \
    '{"cmd":"query","root":1}' \
    '{"cmd":"drain"}' \
    | timeout 300 cargo run -q --release --example bfs_server > "$FIRST_OUT"
printf '%s\n' \
    "{\"cmd\":\"load\",\"scale\":9,\"ranks\":4,\"path\":\"$SERVER_STORE\"}" \
    '{"cmd":"query","root":1}' \
    '{"cmd":"drain"}' \
    | timeout 300 cargo run -q --release --example bfs_server > "$SECOND_OUT"
grep -Eq '"reply":"loaded".*"saved":true' "$FIRST_OUT"
grep -Eq '"reply":"loaded".*"opened":true' "$SECOND_OUT"
grep -Eq '"reply":"result".*"status":"served"' "$SECOND_OUT"
rm -f "$SERVER_STORE" "$FIRST_OUT" "$SECOND_OUT"

# Smoke: sustained overload against the real TCP server. loadgen offers
# well beyond what a capacity-16 queue admits at SCALE 14, so the run
# must produce queue-full rejections while keeping every accounting
# invariant (loadgen exits nonzero on any lost/duplicated/unacked/
# malformed reply), emit the committed schema-v10 serve_load artifact,
# and the server must drain cleanly on shutdown with zero dropped
# results. Both binaries are prebuilt so the two processes never race
# for the cargo target-dir lock.
echo "==> TCP sustained-load smoke (bfs_server --tcp + loadgen)"
cargo build -q --release --example bfs_server --example loadgen
TCP_LOG="$(mktemp)"
timeout 600 ./target/release/examples/bfs_server --tcp 127.0.0.1:0 \
    --scale 14 --ranks 4 --queue-capacity 16 --batch-max 64 --flush-deadline 128 \
    > "$TCP_LOG" &
TCP_SERVER_PID=$!
for _ in $(seq 1 300); do
    grep -q '"event":"listening"' "$TCP_LOG" 2>/dev/null && break
    sleep 0.2
done
grep -q '"event":"listening"' "$TCP_LOG"
TCP_ADDR=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$TCP_LOG" | head -1)
timeout 300 ./target/release/examples/loadgen "$TCP_ADDR" \
    --conns 4 --qps 400 --duration 4 --root-max 16384 --seed 42 \
    --json SERVE_LOAD_14.json > /dev/null
wait "$TCP_SERVER_PID"
grep -Eq '"schema_version": *10' SERVE_LOAD_14.json
grep -Eq '"protocol_errors": *0' SERVE_LOAD_14.json
grep -Eq '"lost_replies": *0' SERVE_LOAD_14.json
grep -Eq '"duplicate_replies": *0' SERVE_LOAD_14.json
grep -Eq '"unacked": *0' SERVE_LOAD_14.json
grep -Eq '"rejected_full": *[1-9]' SERVE_LOAD_14.json
grep -Eq '"event":"shutdown"' "$TCP_LOG"
grep -Eq '"results_dropped":0' "$TCP_LOG"
rm -f "$TCP_LOG"

# Chaos soak: live fault injection against the SCALE-14 serving path.
# A seeded schedule arms rank panics / stragglers / payload corruption
# into the batched traversal while paced clients (deadline budgets,
# hint-honoring retries) stay connected; a side connection polls the
# `health` state machine. The soak must end with zero protocol losses,
# availability at or above the gate, the service recovered to healthy
# within the tick budget, and the committed schema-v10 serve_chaos
# artifact well-formed (chaos_soak exits nonzero on any gate failure).
echo "==> chaos soak smoke (SCALE 14, hard timeout)"
cargo build -q --release --example chaos_soak
timeout 600 ./target/release/examples/chaos_soak \
    --scale 14 --ranks 8 --conns 4 --qps 300 --duration 4 --seed 42 \
    --chaos-every 48 --chaos-max-events 4 --deadline-ticks 400 --retry-max 3 \
    --availability-gate 0.90 --json SERVE_CHAOS_14.json > /dev/null
grep -Eq '"schema_version": *10' SERVE_CHAOS_14.json
grep -Eq '"passed": *true' SERVE_CHAOS_14.json
grep -Eq '"recovered": *true' SERVE_CHAOS_14.json
grep -Eq '"final_health": *"healthy"' SERVE_CHAOS_14.json
grep -Eq '"protocol_errors": *0' SERVE_CHAOS_14.json
grep -Eq '"lost_replies": *0' SERVE_CHAOS_14.json
grep -Eq '"chaos_injected": *[1-9]' SERVE_CHAOS_14.json

# Update soak: live graph mutations against the SCALE-14 serving path.
# Phase A commits seeded edge-insert batches and proves incremental BFS
# repair depth-identical to — and at least as fast as — a full
# recompute over the same union adjacency; phase B interleaves wire
# `update` batches into paced TCP load with a seeded update plan armed,
# and the epoch stamped on every reply must never regress on a
# connection (the torn-read proxy) through a clean drain. update_soak
# exits nonzero on any gate failure and regenerates the committed
# schema-v10 UPDATE_14.json artifact.
echo "==> update soak smoke (SCALE 14, hard timeout)"
cargo build -q --release --example update_soak
timeout 600 ./target/release/examples/update_soak \
    --scale 14 --ranks 4 --rounds 6 --batch 64 --seed 42 \
    --json UPDATE_14.json > /dev/null
grep -Eq '"schema_version": *10' UPDATE_14.json
grep -Eq '"passed": *true' UPDATE_14.json
grep -Eq '"equivalence_violations": *0' UPDATE_14.json
grep -Eq '"torn_reads": *0' UPDATE_14.json
grep -Eq '"clean_drain": *true' UPDATE_14.json
grep -Eq '"updates_committed": *[1-9]' UPDATE_14.json

# Perf trajectory: regenerate the committed GTEPS curve — one
# BENCH_<scale>_<rows>x<cols>.json per scale in the 14/16/18 sweep —
# gate the fresh SCALE-14 harmonic mean against the committed baseline,
# and smoke-check the schema-v10 wall-clock section plus the
# parallel-vs-serial throughput bound (strict only on >= 4 cores; see
# the script header and docs/PERF.md).
echo "==> bench trajectory (hard timeout inside)"
./scripts/bench_trajectory.sh

echo "CI green."
