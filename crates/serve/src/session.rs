//! The session-persistent graph: generate + partition once, query many.
//!
//! The Graph 500 driver rebuilds its partition for every benchmark run
//! and exits; a service cannot afford that. [`GraphSession::load`] pays
//! the R-MAT generation and 1.5D partition build exactly once, keeps
//! each rank's [`RankPartition`] resident on the driver side, and hands
//! out traversals against it for as long as the session lives. The
//! underlying [`Cluster`] is reusable across SPMD runs (its collective
//! counters reset per run), so one session serves an unbounded stream
//! of queries — and because planned fault events fire at most once per
//! cluster lifetime, a query that loses a rank can simply be retried on
//! the healed cluster without touching the resident partition.

use sunbfs_common::MachineConfig;
use sunbfs_core::{
    run_bfs, run_bfs_batch, run_bfs_recoverable, BatchOutput, BfsOutput, CheckpointStore,
    EngineConfig, EngineError,
};
use sunbfs_net::{Cluster, FaultPlan, MeshShape, RankFailure};
use sunbfs_part::{build_1p5d, ComponentStats, RankPartition, Thresholds, VertexDistribution};
use sunbfs_rmat::RmatParams;

/// Everything a session needs to materialize its graph.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Graph 500 SCALE (`2^scale` vertices).
    pub scale: u32,
    /// Edges per vertex (spec: 16).
    pub edge_factor: u32,
    /// Mesh of simulated ranks.
    pub mesh: MeshShape,
    /// E/H degree thresholds.
    pub thresholds: Thresholds,
    /// Engine technique toggles (shared by batch and fallback paths).
    pub engine: EngineConfig,
    /// Machine constants.
    pub machine: MachineConfig,
    /// Generator seed.
    pub seed: u64,
    /// SPMD attempts [`GraphSession::load`] may spend before giving up
    /// (a planned fault can fire during the build; it is consumed by
    /// the failed attempt, so a bounded retry normally heals the load).
    pub max_load_attempts: u32,
}

impl SessionConfig {
    /// A laptop-scale session.
    pub fn small(scale: u32, ranks: usize) -> Self {
        SessionConfig {
            scale,
            edge_factor: 16,
            mesh: MeshShape::near_square(ranks),
            thresholds: Thresholds::new(256, 64),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            max_load_attempts: 3,
        }
    }

    /// The generator parameters this session materializes.
    pub fn rmat(&self) -> RmatParams {
        let mut p = RmatParams::graph500(self.scale, self.seed);
        p.edge_factor = self.edge_factor;
        p
    }
}

/// Loading the resident graph failed on every allowed attempt.
#[derive(Debug)]
pub struct LoadError {
    /// SPMD attempts spent.
    pub attempts: u32,
    /// Rank failures observed on the final attempt.
    pub failures: Vec<RankFailure>,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph load failed after {} attempts ({} rank failures on the last)",
            self.attempts,
            self.failures.len()
        )
    }
}

impl std::error::Error for LoadError {}

/// A resident graph: one cluster plus every rank's partition, built
/// once and borrowed by each query run.
pub struct GraphSession {
    cfg: SessionConfig,
    cluster: Cluster,
    parts: Vec<RankPartition>,
    /// Per-rank component sizes of the resident partition.
    pub partition_stats: Vec<ComponentStats>,
    /// Simulated seconds the (successful) build took, max over ranks.
    pub build_sim_seconds: f64,
    /// SPMD attempts the load spent (1 = clean first build).
    pub load_attempts: u32,
}

impl GraphSession {
    /// Generate the R-MAT graph and build the 1.5D partition, retrying
    /// up to `cfg.max_load_attempts` times when a (transient) fault
    /// takes a rank down mid-build.
    ///
    /// # Errors
    /// [`LoadError`] when every attempt lost at least one rank.
    pub fn load(cfg: SessionConfig, plan: FaultPlan) -> Result<GraphSession, LoadError> {
        let params = cfg.rmat();
        let n = params.num_vertices();
        let p = cfg.mesh.num_ranks() as u64;
        let cluster = Cluster::with_faults(cfg.mesh, cfg.machine, plan);
        let budget = cfg.max_load_attempts.max(1);
        let mut attempts = 0;
        loop {
            attempts += 1;
            let results = cluster.run_fallible(|ctx| {
                let t0 = ctx.now();
                let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, p);
                let part = build_1p5d(ctx, n, &chunk, cfg.thresholds);
                ((ctx.now() - t0).as_secs(), part)
            });
            let mut oks = Vec::with_capacity(results.len());
            let mut failures = Vec::new();
            for r in results {
                match r {
                    Ok(v) => oks.push(v),
                    Err(f) => failures.push(f),
                }
            }
            if failures.is_empty() {
                let build_sim_seconds = oks.iter().map(|(s, _)| *s).fold(0.0, f64::max);
                let parts: Vec<RankPartition> = oks.into_iter().map(|(_, p)| p).collect();
                let partition_stats = parts.iter().map(|p| p.stats).collect();
                return Ok(GraphSession {
                    cfg,
                    cluster,
                    parts,
                    partition_stats,
                    build_sim_seconds,
                    load_attempts: attempts,
                });
            }
            if attempts >= budget {
                return Err(LoadError { attempts, failures });
            }
        }
    }

    /// The configuration this session was loaded with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Total vertices in the resident graph.
    pub fn num_vertices(&self) -> u64 {
        self.cfg.rmat().num_vertices()
    }

    /// Number of ranks holding the partition.
    pub fn num_ranks(&self) -> usize {
        self.cfg.mesh.num_ranks()
    }

    /// The block distribution of the resident graph (for assembling
    /// rank-local slices into global arrays).
    pub fn distribution(&self) -> VertexDistribution {
        VertexDistribution::new(self.num_vertices(), self.num_ranks())
    }

    /// The underlying cluster (fault/retransmit logs, topology).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// One bit-parallel multi-source traversal over the resident
    /// partition. Rank-indexed results; an `Err` entry is a lost rank
    /// (callers fall back to [`Self::run_single_recoverable`]), an
    /// inner `Err` is a replicated engine error.
    pub fn run_batch(
        &self,
        roots: &[u64],
    ) -> Vec<Result<Result<BatchOutput, EngineError>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster
            .run_fallible(move |ctx| run_bfs_batch(ctx, &parts[ctx.rank()], roots, &engine))
    }

    /// One single-source traversal (the sequential baseline path).
    pub fn run_single(
        &self,
        root: u64,
    ) -> Vec<Result<Result<BfsOutput, EngineError>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster
            .run_fallible(move |ctx| run_bfs(ctx, &parts[ctx.rank()], root, &engine))
    }

    /// The sequential baseline shape: every root, one at a time, inside
    /// one SPMD pass (the driver's per-root loop against the resident
    /// partition). Rank-indexed; inner vector is root-indexed.
    #[allow(clippy::type_complexity)]
    pub fn run_seq_loop(
        &self,
        roots: &[u64],
    ) -> Vec<Result<Vec<Result<BfsOutput, EngineError>>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster.run_fallible(move |ctx| {
            roots
                .iter()
                .map(|&root| run_bfs(ctx, &parts[ctx.rank()], root, &engine))
                .collect()
        })
    }

    /// One checkpointed single-source traversal — the per-root recovery
    /// path a degraded batch falls back to. Resumes from `store`'s last
    /// verified common checkpoint when one exists.
    pub fn run_single_recoverable(
        &self,
        root: u64,
        store: &CheckpointStore,
    ) -> Vec<Result<Result<BfsOutput, EngineError>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster.run_fallible(move |ctx| {
            run_bfs_recoverable(ctx, &parts[ctx.rank()], root, &engine, Some(store))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_net::{FaultEvent, FaultKind};

    #[test]
    fn session_loads_once_and_serves_repeatedly() {
        let session =
            GraphSession::load(SessionConfig::small(8, 4), FaultPlan::none()).expect("clean load");
        assert_eq!(session.load_attempts, 1);
        assert_eq!(session.partition_stats.len(), 4);
        // Two traversals against the same resident partition.
        for root in [1u64, 2] {
            let outs = session.run_batch(&[root]);
            for r in outs {
                r.expect("no rank failure").expect("terminates");
            }
        }
    }

    #[test]
    fn load_retries_through_a_transient_build_fault() {
        // A panic early in the build (op 1) kills the first attempt;
        // fire-once semantics heal the retry.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 1,
            op_index: 1,
            kind: FaultKind::Panic,
        }]);
        let session =
            GraphSession::load(SessionConfig::small(8, 4), plan).expect("retry heals the load");
        assert_eq!(session.load_attempts, 2);
        assert_eq!(session.cluster().fault_log().len(), 1);
    }
}
