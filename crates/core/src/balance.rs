//! Edge-aware vertex-cut load balancing (§5, after GraphIt).
//!
//! In early EH2EH top-down iterations a handful of frontier hubs carry
//! almost all edges; cutting the frontier by *vertex count* starves
//! most CPEs. The paper instead prefix-sums the frontier vertices'
//! degrees and cuts by *accumulated edges*, giving every CPE an equal
//! edge share ("Given the frontier size is small in a top-down
//! iteration, this will not cost much").

/// Split `degrees` (the per-frontier-vertex edge counts, in frontier
/// order) into `parts` contiguous chunks with near-equal edge totals.
/// Returns the chunk boundaries as indices into `degrees`
/// (`parts + 1` entries, first 0, last `degrees.len()`).
pub fn vertex_cut_chunks(degrees: &[u64], parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let total: u64 = degrees.iter().sum();
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let mut acc = 0u64;
    let mut next_target = 1u64;
    for (i, &d) in degrees.iter().enumerate() {
        acc += d;
        // Close chunks whose edge quota `k * total / parts` we just passed.
        while bounds.len() < parts && acc * parts as u64 >= next_target * total && total > 0 {
            bounds.push(i + 1);
            next_target += 1;
        }
    }
    while bounds.len() < parts {
        bounds.push(degrees.len());
    }
    bounds.push(degrees.len());
    bounds
}

/// The largest per-chunk edge total under an edge-aware cut — the
/// critical-path work of the balanced kernel.
pub fn max_chunk_edges(degrees: &[u64], parts: usize) -> u64 {
    let bounds = vertex_cut_chunks(degrees, parts);
    bounds
        .windows(2)
        .map(|w| degrees[w[0]..w[1]].iter().sum::<u64>())
        .max()
        .unwrap_or(0)
}

/// The largest per-chunk edge total under a naive vertex-count cut —
/// what the imbalance would be without the technique.
pub fn max_chunk_edges_naive(degrees: &[u64], parts: usize) -> u64 {
    if degrees.is_empty() {
        return 0;
    }
    let chunk = degrees.len().div_ceil(parts);
    degrees
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_in_order() {
        let degs = vec![5u64, 1, 1, 1, 8, 1, 1, 1, 1, 1];
        let b = vertex_cut_chunks(&degs, 4);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), degs.len());
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn skewed_frontier_balances_better_than_naive() {
        // One super-hub followed by many light vertices: the naive cut
        // puts the hub plus a share of light vertices in chunk 0.
        let mut degs = vec![10_000u64];
        degs.extend(std::iter::repeat_n(10, 999));
        let parts = 8;
        let aware = max_chunk_edges(&degs, parts);
        let naive = max_chunk_edges_naive(&degs, parts);
        assert!(aware < naive, "edge-aware {aware} must beat naive {naive}");
        // Perfectly balanceable except the indivisible hub itself.
        assert!(aware <= 10_000 + 10);
    }

    #[test]
    fn uniform_degrees_split_evenly() {
        let degs = vec![4u64; 64];
        let aware = max_chunk_edges(&degs, 8);
        assert_eq!(aware, 8 * 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(max_chunk_edges(&[], 4), 0);
        assert_eq!(max_chunk_edges(&[7], 4), 7);
        assert_eq!(max_chunk_edges(&[0, 0, 0], 2), 0);
        let one_part = vertex_cut_chunks(&[1, 2, 3], 1);
        assert_eq!(one_part, vec![0, 3]);
    }

    #[test]
    fn more_parts_never_increase_critical_path() {
        let degs: Vec<u64> = (0..100).map(|i| (i * 7 % 23) as u64 + 1).collect();
        let mut prev = u64::MAX;
        for parts in [1usize, 2, 4, 8, 16, 32] {
            let m = max_chunk_edges(&degs, parts);
            assert!(
                m <= prev,
                "critical path grew from {prev} to {m} at {parts} parts"
            );
            prev = m;
        }
    }
}
