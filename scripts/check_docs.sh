#!/usr/bin/env bash
# Documentation link check (run by scripts/ci.sh): every relative
# markdown link in README.md and docs/*.md must point at an existing
# file, and every `#anchor` must match a heading slug in the target
# document. Plain shell + grep/sed — no dependencies beyond coreutils.
# Run from anywhere; resolves against the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

ERRORS="$(mktemp)"
trap 'rm -f "$ERRORS"' EXIT

# GitHub-style anchor slugs of a markdown file: take every ATX heading,
# strip the leading #'s, lowercase, drop everything but alphanumerics /
# spaces / hyphens, spaces -> hyphens (backtick spans slug like plain
# text, so stripping the punctuation is enough).
anchors_of() {
    sed -n 's/^#\{1,6\} *//p' "$1" \
        | tr '[:upper:]' '[:lower:]' \
        | sed 's/[^a-z0-9 -]//g; s/  */ /g; s/^ //; s/ $//; s/ /-/g'
}

for DOC in README.md docs/*.md; do
    DIR="$(dirname "$DOC")"
    # Every inline-link target: the (...) of ](...). Reference-style
    # links and autolinks are not used in this repository.
    { grep -o '](<*[^)>]*' "$DOC" || true; } | sed 's/^](<*//' \
    | while IFS= read -r TARGET; do
        case "$TARGET" in
            http://*|https://*|mailto:*|'') continue ;;
        esac
        FILE_PART="${TARGET%%#*}"
        ANCHOR=""
        case "$TARGET" in *'#'*) ANCHOR="${TARGET#*#}" ;; esac
        if [ -n "$FILE_PART" ]; then
            FILE="$DIR/$FILE_PART"
            if [ ! -e "$FILE" ]; then
                echo "$DOC: broken relative link '$TARGET' (no $FILE)" >> "$ERRORS"
                continue
            fi
        else
            FILE="$DOC"   # pure intra-document anchor: #section
        fi
        if [ -n "$ANCHOR" ] && [ -f "$FILE" ]; then
            case "$FILE" in *.md)
                if ! anchors_of "$FILE" | grep -qx "$ANCHOR"; then
                    echo "$DOC: broken anchor '#$ANCHOR' (no such heading in $FILE)" >> "$ERRORS"
                fi
            ;; esac
        fi
    done
done

if [ -s "$ERRORS" ]; then
    cat "$ERRORS"
    echo "doc link check FAILED ($(wc -l < "$ERRORS") broken link(s))"
    exit 1
fi
echo "doc link check OK ($(ls README.md docs/*.md | wc -l) files)"
