//! Direction-heuristic equivalence and wide-kernel correctness.
//!
//! Three contracts from the v10 vectorization pass (docs/KERNELS.md):
//!
//! 1. `DirectionHeuristic::Fixed` reproduces the pre-vectorization
//!    engine exactly — parents and the per-iteration direction schedule
//!    are pinned to a golden fingerprint captured from the scalar
//!    fixed-threshold engine.
//! 2. `DirectionHeuristic::Measured` (the default) stays Graph 500
//!    valid with canonical depths on every mesh shape, and its parents
//!    are byte-identical across worker counts within a mesh.
//! 3. The wide-word primitives (`sunbfs::common::bitmap::wide`) agree
//!    with the scalar loops they replaced on arbitrary word blocks,
//!    including ragged (non-multiple-of-4-word) tails.

use proptest::prelude::*;
use sunbfs::common::bitmap::wide;
use sunbfs::common::{pool, Edge, MachineConfig};
use sunbfs::core::{run_bfs, validate_parents, Direction, DirectionHeuristic, EngineConfig};
use sunbfs::net::{Cluster, MeshShape};
use sunbfs::part::{build_1p5d, Thresholds};
use sunbfs::rmat::{degrees, generate_chunk, generate_edges, RmatParams};

const SCALE: u32 = 10;
const SEED: u64 = 42;

/// Global parent array plus the first root's direction trace.
struct Pass {
    parents: Vec<u64>,
    /// One char per component per iteration: 'P' = pull, 'p' = push,
    /// iterations joined with '.'.
    trace: String,
    /// Measured masses seen by the schedule: `(frontier, unexplored)`
    /// summed over every sub-iteration.
    mass_sum: (u64, u64),
}

fn run_pass(mesh: MeshShape, root: u64, heuristic: DirectionHeuristic) -> Pass {
    let params = RmatParams::graph500(SCALE, SEED);
    let n = params.num_vertices();
    let ranks = (mesh.rows * mesh.cols) as u64;
    let cfg = EngineConfig {
        heuristic,
        ..EngineConfig::default()
    };
    let cluster = Cluster::new(mesh, MachineConfig::new_sunway());
    let outs = cluster.run(|ctx| {
        let chunk = generate_chunk(&params, ctx.rank() as u64, ranks);
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(128, 32));
        run_bfs(ctx, &part, root, &cfg).expect("BFS terminates")
    });
    let parents = outs
        .iter()
        .flat_map(|o| o.parents.iter().copied())
        .collect();
    let trace = outs[0]
        .stats
        .iterations
        .iter()
        .map(|it| {
            it.directions
                .iter()
                .map(|d| if *d == Direction::Pull { 'P' } else { 'p' })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(".");
    let mut mass_sum = (0u64, 0u64);
    for it in &outs[0].stats.iterations {
        for s in &it.subs {
            mass_sum.0 += s.frontier_edges;
            mass_sum.1 += s.unexplored_edges;
        }
    }
    Pass {
        parents,
        trace,
        mass_sum,
    }
}

/// FNV-1a over the little-endian parent words — the golden fingerprint
/// format (stable across platforms, cheap to recompute).
fn fingerprint(parents: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &p in parents {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn graph() -> (RmatParams, Vec<Edge>, u64) {
    let params = RmatParams::graph500(SCALE, SEED);
    let edges = generate_edges(&params);
    let degs = degrees(params.num_vertices(), &edges);
    let root = (0..params.num_vertices())
        .find(|&v| degs[v as usize] > 0)
        .expect("connected root");
    (params, edges, root)
}

/// Derive BFS levels by walking parent chains — canonical depths, the
/// cross-mesh invariant (parent *choice* is partition-dependent; the
/// level of every vertex is not).
fn levels_of(root: u64, parents: &[u64]) -> Vec<u32> {
    const UNSET: u32 = u32::MAX;
    let mut levels = vec![UNSET; parents.len()];
    levels[root as usize] = 0;
    for v in 0..parents.len() {
        if parents[v] == u64::MAX || levels[v] != UNSET {
            continue;
        }
        // Walk up to a vertex with a known level, then unwind.
        let mut chain = vec![v as u64];
        let mut cur = parents[v];
        while levels[cur as usize] == UNSET {
            chain.push(cur);
            cur = parents[cur as usize];
        }
        let mut d = levels[cur as usize];
        for &u in chain.iter().rev() {
            d += 1;
            levels[u as usize] = d;
        }
    }
    levels
}

/// Contract 1: the `fixed` heuristic is the pre-v10 engine, bit for
/// bit. The fingerprint and direction trace below were captured from
/// the scalar fixed-threshold engine at this exact configuration
/// (SCALE 10, seed 42, 2x2 mesh, thresholds 128/32); the vectorized
/// scans must keep reproducing them.
#[test]
fn fixed_heuristic_matches_pre_vectorization_golden() {
    let (params, edges, root) = graph();
    pool::set_workers(1);
    let pass = run_pass(MeshShape::new(2, 2), root, DirectionHeuristic::Fixed);
    pool::set_workers(0);

    validate_parents(params.num_vertices(), &edges, root, &pass.parents)
        .expect("fixed parents validate");
    assert_eq!(
        fingerprint(&pass.parents),
        0xc5fd30036b33b73b,
        "parent golden"
    );
    assert_eq!(
        pass.trace, "pppppp.PPPPPP.ppPPPP.ppppPP",
        "direction-schedule golden"
    );
    // Fixed mode never computes edge masses: the v10 stats fields stay
    // zero, so fixed-mode reports are shape-compatible with v9 ones.
    assert_eq!(pass.mass_sum, (0, 0), "fixed mode must not report masses");
}

/// Contract 2: the measured heuristic (the default) is Graph 500 valid
/// on both mesh shapes, produces the canonical depth per vertex on
/// each (so depths agree across meshes), and is byte-identical across
/// worker counts {1, 4} within a mesh.
#[test]
fn measured_heuristic_validates_across_meshes_and_workers() {
    let (params, edges, root) = graph();
    let n = params.num_vertices();
    let mut reference_levels: Option<Vec<u32>> = None;

    for mesh in [MeshShape::new(2, 2), MeshShape::new(2, 3)] {
        pool::set_workers(1);
        let serial = run_pass(mesh, root, DirectionHeuristic::Measured);
        validate_parents(n, &edges, root, &serial.parents).expect("measured parents validate");
        assert!(
            serial.mass_sum.0 > 0 && serial.mass_sum.1 > 0,
            "measured mode must surface edge masses in SubIterationStats"
        );

        // Depths are the cross-mesh invariant.
        let levels = levels_of(root, &serial.parents);
        match &reference_levels {
            None => reference_levels = Some(levels),
            Some(reference) => assert_eq!(
                &levels, reference,
                "depths differ between meshes on {}x{}",
                mesh.rows, mesh.cols
            ),
        }

        pool::set_workers(4);
        let parallel = run_pass(mesh, root, DirectionHeuristic::Measured);
        pool::set_workers(0);
        assert!(
            parallel.parents == serial.parents,
            "measured parents differ at 4 workers on {}x{}",
            mesh.rows,
            mesh.cols
        );
        assert_eq!(
            parallel.trace, serial.trace,
            "schedule must be worker-invariant"
        );
    }
}

/// Contract 3 (deterministic half): the block-chunked scans handle
/// every non-multiple-of-4 word count. Regression test for the ragged
/// tails — all-ones words at lengths 1..=9 must be fully visited and
/// fully counted by every primitive.
#[test]
fn wide_primitives_cover_ragged_tails_exhaustively() {
    for len in 1usize..=9 {
        let ones = vec![u64::MAX; len];
        let zeros = vec![0u64; len];
        assert_eq!(wide::count_ones(&ones), len as u64 * 64, "len={len}");
        assert_eq!(
            wide::and_not_count(&ones, &zeros),
            len as u64 * 64,
            "len={len}"
        );

        let mut visited = Vec::new();
        wide::for_each_nonzero_word(&ones, 0, len, |wi, w| visited.push((wi, w)));
        assert_eq!(visited.len(), len, "every word visited at len={len}");

        let mut bits = 0u64;
        wide::for_each_one(&ones, len as u64 * 64, 0, len, |_| bits += 1);
        assert_eq!(bits, len as u64 * 64, "every bit visited at len={len}");

        let mut unset = 0u64;
        wide::for_each_zero(&zeros, len as u64 * 64, 0, len as u64 * 64, |_| unset += 1);
        assert_eq!(unset, len as u64 * 64, "every zero visited at len={len}");

        let mut diff = Vec::new();
        wide::for_each_and_not(&ones, &zeros, 0, len, |wi, w| diff.push((wi, w)));
        assert_eq!(diff.len(), len, "every difference word at len={len}");

        let mut dst = zeros.clone();
        wide::or_and_not_assign(&mut dst, &ones, &zeros);
        assert_eq!(dst, ones, "fused discovery advance at len={len}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 3: every wide primitive agrees with the obvious scalar
    /// loop on random word blocks. Lengths 0..11 cover the empty slice,
    /// sub-block slices, exact blocks, and ragged tails.
    #[test]
    fn wide_counts_and_assigns_match_scalar(
        a in prop::collection::vec(any::<u64>(), 0..11),
        seed in any::<u64>(),
    ) {
        // Pair `a` with a derived block of equal length so the slices
        // always match (the shim has no same-length pair strategy).
        let b: Vec<u64> = a
            .iter()
            .enumerate()
            .map(|(i, &w)| w.rotate_left((i % 61) as u32) ^ seed)
            .collect();

        let scalar_count: u64 = a.iter().map(|w| w.count_ones() as u64).sum();
        prop_assert_eq!(wide::count_ones(&a), scalar_count);

        let scalar_and_not: u64 = a.iter().zip(&b).map(|(x, y)| (x & !y).count_ones() as u64).sum();
        prop_assert_eq!(wide::and_not_count(&a, &b), scalar_and_not);

        let mut or = a.clone();
        wide::or_assign(&mut or, &b);
        let scalar_or: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
        prop_assert_eq!(or, scalar_or);

        let mut an = a.clone();
        wide::and_not_assign(&mut an, &b);
        let scalar_an: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & !y).collect();
        prop_assert_eq!(an, scalar_an);

        let mut fused = a.clone();
        wide::or_and_not_assign(&mut fused, &b, &a);
        let scalar_fused: Vec<u64> = a.iter().zip(&b).map(|(d, x)| d | (x & !d)).collect();
        prop_assert_eq!(fused, scalar_fused);
    }

    /// The iteration primitives visit exactly the scalar-loop index
    /// sequence — ascending, windowed, slack-masked — on random blocks
    /// and random (possibly inverted or out-of-range) windows.
    #[test]
    fn wide_iteration_matches_scalar_loops(
        words in prop::collection::vec(any::<u64>(), 0..11),
        seed in any::<u64>(),
        (raw_start, raw_end) in (any::<u64>(), any::<u64>()),
    ) {
        let other: Vec<u64> = words.iter().map(|&w| w.wrapping_mul(seed | 1)).collect();
        let nbits = words.len() as u64 * 64;
        let bits = nbits.saturating_sub(seed % 7); // ragged bit length
        let start = if nbits == 0 { 0 } else { raw_start % (nbits + 3) };
        let end = if nbits == 0 { 0 } else { raw_end % (nbits + 3) };

        let mut got = Vec::new();
        wide::for_each_nonzero_word(&words, start as usize, end as usize, |i, w| got.push((i, w)));
        let hi = (end as usize).min(words.len());
        let lo = (start as usize).min(hi);
        let expect: Vec<(usize, u64)> =
            (lo..hi).filter(|&i| words[i] != 0).map(|i| (i, words[i])).collect();
        prop_assert_eq!(got, expect);

        let mut got = Vec::new();
        wide::for_each_one(&words, bits, start as usize, end as usize, |i| got.push(i));
        let expect: Vec<u64> = (lo as u64 * 64..(hi as u64 * 64).min(bits))
            .filter(|&i| words[(i / 64) as usize] >> (i % 64) & 1 == 1)
            .collect();
        prop_assert_eq!(got, expect);

        let get = |ws: &[u64], i: u64| ws[(i / 64) as usize] >> (i % 64) & 1 == 1;
        let top = end.min(bits);
        let mut got = Vec::new();
        wide::for_each_zero(&words, bits, start, end, |i| got.push(i));
        let expect: Vec<u64> = (start.min(top)..top).filter(|&i| !get(&words, i)).collect();
        prop_assert_eq!(got, expect);

        let mut got = Vec::new();
        wide::for_each_unset_pair(&words, &other, bits, start, end, |i| got.push(i));
        let expect: Vec<u64> = (start.min(top)..top)
            .filter(|&i| !get(&words, i) && !get(&other, i))
            .collect();
        prop_assert_eq!(got, expect);

        let mut got = Vec::new();
        wide::for_each_and_not(&words, &other, start as usize, end as usize, |i, w| {
            got.push((i, w))
        });
        let expect: Vec<(usize, u64)> = (lo..hi)
            .filter_map(|i| {
                let n = words[i] & !other[i];
                (n != 0).then_some((i, n))
            })
            .collect();
        prop_assert_eq!(got, expect);
    }
}
