//! End-to-end persistent-store tests: a session opened from a graph
//! file must serve byte-identical BFS results to the session that
//! built the graph, the driver must report the store activity in the
//! metrics JSON, and any damage to the file must surface as a typed
//! refusal — never a silently different graph.

use std::path::{Path, PathBuf};

use sunbfs::common::MachineConfig;
use sunbfs::core::{validate, EngineConfig};
use sunbfs::driver::{pick_roots, run_benchmark, RunConfig};
use sunbfs::net::{FaultPlan, MeshShape};
use sunbfs::part::Thresholds;
use sunbfs::rmat::RmatParams;
use sunbfs::serve::{
    BfsService, GraphSession, ServeConfig, SessionConfig, SessionError, StoreError,
};

const SCALE: u32 = 10;
const RANKS: usize = 4;
const SEED: u64 = 4242;

fn session_cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        scale: SCALE,
        edge_factor: 16,
        mesh: MeshShape::near_square(RANKS),
        thresholds: Thresholds::new(256, 64),
        engine: EngineConfig::default(),
        machine: MachineConfig::new_sunway(),
        seed,
        max_load_attempts: 1,
    }
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sunbfs_store_e2e_{tag}_{}.sbfs",
        std::process::id()
    ))
}

/// Serve `roots` through a fresh service over `session` and return
/// `(root, parents, depth_histogram)` per query, in submission order.
fn serve_all(session: GraphSession, roots: &[u64]) -> Vec<(u64, Vec<u64>, Vec<u64>)> {
    let mut service = BfsService::new(
        session,
        ServeConfig {
            queue_capacity: roots.len().max(1),
            ..ServeConfig::default()
        },
    );
    for &root in roots {
        service.submit(root).expect("in-range root");
    }
    let mut results = service.drain();
    results.sort_by_key(|r| r.id);
    results
        .into_iter()
        .map(|r| {
            let parents = r.parents.expect("served query carries parents");
            (r.root, parents.to_vec(), r.depth_histogram.clone())
        })
        .collect()
}

/// The acceptance criterion: a session opened from the store file
/// serves byte-identical parents and depth histograms to the session
/// that built the graph, and the fresh results Graph 500-validate.
#[test]
fn opened_session_serves_byte_identical_results() {
    let path = temp_store("identity");
    let roots = pick_roots(&RmatParams::graph500(SCALE, SEED), 4).expect("connected roots");

    let mut built = GraphSession::load(session_cfg(SEED), FaultPlan::none()).expect("build");
    let info = built.save(&path).expect("save");
    assert_eq!(info.file_bytes, info.pages * 4096);
    let fresh = serve_all(built, &roots);

    // Every fresh parent array is a valid BFS tree of the real graph.
    let edges = sunbfs::rmat::generate_edges(&RmatParams::graph500(SCALE, SEED));
    for (root, parents, _) in &fresh {
        validate::validate_parents(1 << SCALE, &edges, *root, parents)
            .expect("fresh results must Graph 500-validate");
    }

    let opened = GraphSession::open(&path, session_cfg(SEED), FaultPlan::none())
        .unwrap_or_else(|e| panic!("open failed: {e}"));
    std::fs::remove_file(&path).ok();
    let warm = serve_all(opened, &roots);

    assert_eq!(fresh.len(), warm.len());
    for ((root_a, parents_a, hist_a), (root_b, parents_b, hist_b)) in fresh.iter().zip(&warm) {
        assert_eq!(root_a, root_b);
        assert_eq!(parents_a, parents_b, "parents differ for root {root_a}");
        assert_eq!(hist_a, hist_b, "depth histogram differs for root {root_a}");
    }
}

/// An opened session reports zero build cost and `opened` store
/// activity; a header disagreement (different seed) is a typed refusal.
#[test]
fn opened_sessions_report_store_activity_and_refuse_mismatches() {
    let path = temp_store("mismatch");
    let mut built = GraphSession::load(session_cfg(SEED), FaultPlan::none()).expect("build");
    built.save(&path).expect("save");
    assert!(built.store.as_ref().is_some_and(|s| s.saved && !s.opened));

    let opened = GraphSession::open(&path, session_cfg(SEED), FaultPlan::none())
        .unwrap_or_else(|e| panic!("open failed: {e}"));
    assert_eq!(opened.build_sim_seconds, 0.0);
    assert_eq!(opened.load_attempts, 0);
    let store = opened
        .store
        .as_ref()
        .expect("opened sessions carry store activity");
    assert!(store.opened);
    assert!(store.warm_open_wall_seconds.is_some());

    match GraphSession::open(&path, session_cfg(SEED + 1), FaultPlan::none()) {
        Ok(_) => panic!("a mismatched seed must refuse to open"),
        Err(SessionError::Store(StoreError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "seed")
        }
        Err(other) => panic!("expected HeaderMismatch, got {other}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Damage sweep through the session layer: flip one byte at every page
/// boundary — `open` must refuse each time with a typed store error.
#[test]
fn open_refuses_a_damaged_file_at_every_page_boundary() {
    let path = temp_store("damage");
    let mut built = GraphSession::load(session_cfg(SEED), FaultPlan::none()).expect("build");
    built.save(&path).expect("save");
    let clean = std::fs::read(&path).expect("read store file");
    let pages = clean.len() / 4096;
    assert!(pages >= 2);

    // Probe the first payload byte of each page (64 pages max keeps the
    // sweep fast at this scale) plus the final page's seal.
    let probes: Vec<usize> = (0..pages.min(64))
        .map(|p| p * 4096)
        .chain(std::iter::once(clean.len() - 1))
        .collect();
    for at in probes {
        let mut bad = clean.clone();
        bad[at] ^= 0x01;
        std::fs::write(&path, &bad).expect("write damaged file");
        match GraphSession::open(&path, session_cfg(SEED), FaultPlan::none()) {
            Ok(_) => panic!("byte {at}: damaged file opened"),
            Err(SessionError::Store(e)) => {
                let _ = e.to_string();
            }
            Err(other) => panic!("byte {at}: expected a store error, got {other}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The driver round trip: `save_graph` then `load_graph` produce the
/// same validated runs, and the second report records a warm open.
#[test]
fn driver_save_then_load_reports_store_activity() {
    let path = temp_store("driver");
    let path_str = path.to_str().expect("utf-8 temp path").to_string();
    let base = RunConfig::builder()
        .scale(9)
        .ranks(4)
        .num_roots(2)
        .validate(true);

    let cold = run_benchmark(&base.clone().save_graph(&path_str).build()).expect("cold run");
    assert!(cold.validated);
    let store = cold
        .store
        .as_ref()
        .expect("save_graph records store activity");
    assert!(store.saved && !store.opened);
    assert!(store.cold_build_wall_seconds.is_some());

    let warm = run_benchmark(&base.load_graph(&path_str).build()).expect("warm run");
    std::fs::remove_file(&path).ok();
    assert!(warm.validated);
    let store = warm
        .store
        .as_ref()
        .expect("load_graph records store activity");
    assert!(store.opened && !store.saved);
    assert!(store.warm_open_wall_seconds.is_some());
    assert_eq!(warm.serve.as_ref().expect("serve path").load_attempts, 0);

    // Identical traversals: same roots, same visited counts and sim
    // times on both sides of the restart.
    for (a, b) in cold.runs.iter().zip(&warm.runs) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.visited_vertices, b.visited_vertices);
        assert_eq!(a.traversed_edges, b.traversed_edges);
    }
    let _ = Path::new(&path_str);
}
