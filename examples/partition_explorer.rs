//! Partition explorer: how the 1.5D split reacts to degree thresholds.
//!
//! Builds the partition of one R-MAT graph under several threshold
//! settings — including both degenerate baselines — and prints, per
//! setting: hub counts, the six component sizes, and the min/max/mean
//! per-rank load (the Figure 13 balance story at laptop scale). Also
//! prints the degree histogram that makes threshold choice meaningful
//! (Figure 2 / §6.2.1).
//!
//! ```text
//! cargo run --release --example partition_explorer -- [scale] [ranks]
//! ```

use sunbfs::common::MachineConfig;
use sunbfs::net::{Cluster, MeshShape};
use sunbfs::part::{build_1p5d, ComponentStats, Thresholds};
use sunbfs::rmat::{self, RmatParams};

fn arg(n: usize, default: u64) -> u64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = arg(1, 14) as u32;
    let ranks = arg(2, 16) as usize;
    let params = RmatParams::graph500(scale, 42);
    let n = params.num_vertices();

    // ---- degree distribution (Figure 2 at laptop scale) ----
    let edges = rmat::generate_edges(&params);
    let degs = rmat::degrees(n, &edges);
    let hist = rmat::degree_histogram(&degs);
    println!(
        "degree distribution, SCALE {scale} ({} edges):",
        edges.len()
    );
    println!("  degree bucket   vertices");
    for (lo, count) in hist.buckets() {
        if count > 0 {
            println!(
                "  >= {lo:<10}   {count:>10}  {}",
                "#".repeat((count as f64).log10().max(0.0) as usize * 4)
            );
        }
    }
    drop(edges);
    drop(degs);

    // ---- partitions under different thresholds ----
    let settings: Vec<(&str, Thresholds)> = vec![
        ("vanilla 1D (no hubs)", Thresholds::none()),
        ("1D + heavy delegates (|H|=0)", Thresholds::heavy_only(256)),
        ("1.5D (paper)", Thresholds::new(256, 64)),
        ("1.5D, aggressive H", Thresholds::new(256, 16)),
        ("2D (|L|=0)", Thresholds::all_hubs(1 << 24)),
    ];

    let mesh = MeshShape::near_square(ranks);
    let cluster = Cluster::new(mesh, MachineConfig::new_sunway());
    for (name, th) in settings {
        let stats: Vec<(u32, u32, ComponentStats)> = cluster.run(|ctx| {
            let chunk = rmat::generate_chunk(&params, ctx.rank() as u64, ranks as u64);
            let part = build_1p5d(ctx, n, &chunk, th);
            (part.directory.num_e(), part.directory.num_h(), part.stats)
        });
        let (num_e, num_h, _) = stats[0];
        println!("\n=== {name} (E>={}, H>={}) ===", th.e, th.h);
        println!("  hubs: |E|={num_e} |H|={num_h}");
        let sum = |f: fn(&ComponentStats) -> u64| -> (u64, u64, u64) {
            let v: Vec<u64> = stats.iter().map(|(_, _, s)| f(s)).collect();
            (
                *v.iter().min().unwrap(),
                *v.iter().max().unwrap(),
                v.iter().sum(),
            )
        };
        for (label, f) in [
            (
                "EH2EH",
                (|s: &ComponentStats| s.eh2eh) as fn(&ComponentStats) -> u64,
            ),
            ("E2L", |s| s.e2l),
            ("L2E", |s| s.l2e),
            ("H2L", |s| s.h2l),
            ("L2H", |s| s.l2h),
            ("L2L", |s| s.l2l),
        ] {
            let (min, max, total) = sum(f);
            if total == 0 {
                continue;
            }
            let mean = total as f64 / ranks as f64;
            println!(
                "  {label:<6} total {total:>9}  per-rank min {min:>8} / max {max:>8}  (max/mean {:.3})",
                max as f64 / mean.max(1.0)
            );
        }
        let totals: Vec<u64> = stats.iter().map(|(_, _, s)| s.total()).collect();
        let (tmin, tmax) = (*totals.iter().min().unwrap(), *totals.iter().max().unwrap());
        let tmean = totals.iter().sum::<u64>() as f64 / ranks as f64;
        println!(
            "  ALL    per-rank min {tmin} / max {tmax}  (max/mean {:.3})",
            tmax as f64 / tmean.max(1.0)
        );
    }
}
