//! Simulated supercomputer interconnect for `sunbfs`.
//!
//! The paper's BFS runs on 103,912 New Sunway nodes joined by an
//! oversubscribed fat tree (§3.2). Mature Rust MPI/RMA bindings for
//! this communication pattern do not exist, so this crate *is* the
//! substrate: an in-process SPMD runtime in which
//!
//! * each simulated rank is an OS thread ([`Cluster::run`]),
//! * ranks communicate exclusively through MPI-style collectives on
//!   [`RankCtx`] (`alltoallv`, `allgatherv`, `allreduce_with`,
//!   `barrier`) that really move the bytes,
//! * every collective charges analytic network time from the actual
//!   byte volumes and the mesh/supernode topology ([`cost`]), and
//!   records entry skew as load imbalance — producing the same
//!   time-breakdown categories as the paper's Figure 11.
//!
//! The topology follows §4.1: ranks form an `R × C` mesh whose **rows
//! map to supernodes**; row traffic enjoys full NIC bandwidth while
//! column/global traffic pays the 8× fat-tree oversubscription.

//!
//! Failure is a first-class citizen: a [`FaultPlan`] injects
//! deterministic rank panics, straggler delays, and payload corruption
//! at chosen collective indices, and [`Cluster::run_fallible`] returns
//! typed per-rank [`RankFailure`]s (injected faults, [`SpmdViolation`]
//! contract breaches, poisoned-barrier teardown) instead of tearing the
//! whole process down — the substrate for the driver's per-root
//! retry/quarantine loop.
//!
//! Exchanges are self-healing: with a live fault plan every deposit
//! carries a length + FNV-1a checksum [`frame::Frame`]; a mismatch
//! after the deposit barrier triggers bounded in-place retransmission
//! of just the corrupted deposit (logged in
//! [`Cluster::retransmit_log`]), escalating to a typed
//! [`FailureKind::CorruptPayload`] only when the corruption persists
//! past the budget.

#![warn(missing_docs)]

pub mod barrier;
pub mod cluster;
pub mod cost;
pub mod fault;
pub mod frame;
pub mod topology;

pub use barrier::{BarrierPoisoned, PoisonBarrier};
pub use cluster::{
    Cluster, CommOpStats, CommStats, FailureKind, RankCtx, RankFailure, RetransmitRecord,
    SpmdViolation, SpmdViolationKind,
};
pub use cost::Scope;
pub use fault::{
    CorruptMode, FaultEvent, FaultKind, FaultPlan, FaultRecord, FaultSpec, InjectedFault,
};
pub use frame::{fnv1a, Frame};
pub use topology::{MeshShape, Topology};
