//! Crash-safety of [`save_file`]: a save that dies mid-write must
//! never leave a truncated store at the target path. The save goes to
//! a sibling temp file and is renamed into place only after a full
//! write + fsync, so at every instant the target path holds either the
//! previous complete store or the new complete store — nothing else.

use sunbfs_common::{Edge, MachineConfig};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, RankPartition, Thresholds};
use sunbfs_store::{
    encode_store, open_file, save_file, temp_save_path, StoreError, StoreHeader, PAGE_SIZE,
};

/// Build a real multi-rank partition the same way the serve session
/// does (each rank gets a strided chunk of the edge list).
fn build(rows: usize, cols: usize, n: u64, edges: &[Edge], th: Thresholds) -> Vec<RankPartition> {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        build_1p5d(ctx, n, &chunk, th)
    })
}

fn sample() -> (StoreHeader, Vec<RankPartition>) {
    let n = 128u64;
    let edges: Vec<Edge> = (0..n).map(|i| Edge::new(i, (i * 5 + 1) % n)).collect();
    let th = Thresholds::new(16, 4);
    let parts = build(1, 2, n, &edges, th);
    let header = StoreHeader {
        scale: 7,
        edge_factor: 16,
        mesh_rows: 1,
        mesh_cols: 2,
        e_threshold: u64::from(th.e),
        h_threshold: u64::from(th.h),
        seed: 42,
        num_ranks: 2,
        epoch: 0,
    };
    (header, parts)
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sunbfs_crash_{}_{}.sbfs", name, std::process::id()))
}

/// Simulated kill mid-save: a dying writer leaves a *truncated* byte
/// stream at the target path (exactly what the old `File::create` +
/// `write_all` save could leave behind). Opening that wreck must be a
/// typed refusal, and one clean [`save_file`] over it must atomically
/// replace it with a store that opens in full.
#[test]
fn a_truncated_wreck_at_the_target_is_replaced_atomically() {
    let (header, parts) = sample();
    let bytes = encode_store(&header, &parts);
    assert!(bytes.len() > PAGE_SIZE, "need a multi-page store");
    let path = scratch("wreck");

    // The "crash": half the file made it to disk before the writer died.
    std::fs::write(&path, &bytes[..bytes.len() / 2 + 17]).expect("plant wreck");
    match open_file(&path) {
        Ok(_) => panic!("truncated store decoded successfully"),
        Err(e) => {
            let _ = e.to_string(); // typed refusal renders, never panics
        }
    }

    // Recovery is just a normal save: the temp-file + rename protocol
    // replaces the wreck without ever exposing a partial state.
    let info = save_file(&path, &header, &parts).expect("save over wreck");
    assert_eq!(info.file_bytes, bytes.len() as u64);
    let (got_header, got_parts, _) = open_file(&path).expect("open after recovery");
    assert_eq!(got_header, header);
    assert_eq!(encode_store(&header, &got_parts), bytes);
    assert!(
        !temp_save_path(&path).exists(),
        "a successful save must not leave its temp file behind"
    );
    std::fs::remove_file(&path).ok();
}

/// Kill mid-save with a *previous good store* in place: the interrupted
/// attempt (modelled by its on-disk artifact, a partial temp file that
/// was never renamed) must leave the old store untouched and openable.
#[test]
fn an_interrupted_save_never_touches_the_previous_store() {
    let (header, parts) = sample();
    let path = scratch("oldgood");
    save_file(&path, &header, &parts).expect("initial save");
    let before = std::fs::read(&path).expect("read initial");

    // The "crash": a second save died after writing part of its temp
    // file, before the rename. The target path is untouched by design —
    // the rename is the only operation that ever moves bytes there.
    let tmp = temp_save_path(&path);
    std::fs::write(&tmp, &before[..PAGE_SIZE / 2]).expect("plant dead temp");

    let (got_header, got_parts, info) = open_file(&path).expect("old store still opens");
    assert_eq!(got_header, header);
    assert_eq!(encode_store(&header, &got_parts), before);
    assert_eq!(info.file_bytes, before.len() as u64);

    // The next save simply overwrites the dead temp and completes.
    save_file(&path, &header, &parts).expect("retry save");
    assert!(!tmp.exists(), "retry must consume/remove the stale temp");
    let after = std::fs::read(&path).expect("read after retry");
    assert_eq!(after, before);
    std::fs::remove_file(&path).ok();
}

/// A failing save (unwritable temp location: the target's parent is not
/// a directory) must surface a typed [`StoreError::Io`] and leave no
/// debris at the target path.
#[test]
fn a_failed_save_is_a_typed_error_with_no_debris() {
    let (header, parts) = sample();
    let file_as_dir = scratch("notadir");
    std::fs::write(&file_as_dir, b"plain file").expect("plant file");
    let path = file_as_dir.join("store.sbfs");
    match save_file(&path, &header, &parts) {
        Ok(_) => panic!("save under a non-directory succeeded"),
        Err(StoreError::Io { .. }) => {}
        Err(other) => panic!("expected a typed Io error, got {other}"),
    }
    assert!(!path.exists());
    std::fs::remove_file(&file_as_dir).ok();
}
