//! Time charging for the BFS sub-iteration kernels.
//!
//! Functional work in the engine runs in plain Rust; the simulated cost
//! of each sub-iteration is charged here from the same counted
//! quantities (edges scanned, probes issued, messages bucketed), using
//! the chip estimators of `sunbfs_sunway::kernels`. Keeping every
//! charge in one module makes the Figure 10/15 breakdowns auditable.

use sunbfs_common::{MachineConfig, SimTime};
use sunbfs_net::RankCtx;
use sunbfs_sunway::kernels;

/// Bytes one adjacency entry occupies when streamed by DMA.
const EDGE_BYTES: u64 = 8;

/// CPE cycles per scanned edge in a streaming kernel.
const SCAN_CYCLES: f64 = 8.0;

/// Charge a streaming edge scan (push, or the sequential side of a
/// pull): DMA-bound adjacency streaming overlapped with per-edge CPE
/// work — the slower of the two dominates.
pub fn charge_scan(ctx: &mut RankCtx, category: &str, edges: u64) {
    if edges == 0 {
        return;
    }
    let m = *ctx.machine();
    let t = scan_time(&m, edges);
    ctx.charge(category, t);
}

fn scan_time(m: &MachineConfig, edges: u64) -> SimTime {
    let dma = kernels::dma_stream(m, edges * EDGE_BYTES, m.dma_grain_bytes, m.cgs_per_node);
    let cpe = kernels::cpe_work(m, edges, SCAN_CYCLES, m.cgs_per_node);
    dma.max(cpe)
}

/// Charge an EH2EH push balanced by the edge-aware vertex cut: the
/// critical path is the largest per-CPE edge chunk, plus the (small)
/// frontier prefix-sum.
pub fn charge_balanced_push(
    ctx: &mut RankCtx,
    category: &str,
    max_chunk_edges: u64,
    frontier: u64,
) {
    let m = *ctx.machine();
    let cpe = SimTime::secs(max_chunk_edges as f64 * SCAN_CYCLES / m.cpe_hz);
    let prefix = kernels::cpe_work(&m, frontier, 2.0, m.cgs_per_node);
    let dma = kernels::dma_stream(
        &m,
        max_chunk_edges * EDGE_BYTES * m.cpes_per_node() as u64,
        m.dma_grain_bytes,
        m.cgs_per_node,
    );
    ctx.charge(category, cpe.max(dma) + prefix);
}

/// Charge an EH2EH pull: sequential destination streaming plus random
/// source-bit probes. With CG-aware segmenting (§4.3) every probe is an
/// on-chip RMA get served by the 64 CPEs of the segment's core group;
/// without it, every probe is a GLD round trip to main memory. The
/// per-CG probe counts come from the actual scan, so imbalance between
/// segments shows up as it would on hardware.
pub fn charge_eh_pull(
    ctx: &mut RankCtx,
    category: &str,
    edges: u64,
    probes_per_segment: &[u64],
    segmenting: bool,
) {
    let m = *ctx.machine();
    let stream = scan_time(&m, edges);
    let probe_time = if segmenting {
        let worst = probes_per_segment.iter().copied().max().unwrap_or(0);
        kernels::rma_random(&m, worst, m.cpes_per_cg)
    } else {
        let total: u64 = probes_per_segment.iter().sum();
        kernels::gld_random(&m, total, m.cpes_per_node())
    };
    ctx.charge(category, stream.max(probe_time));
}

/// Charge the receiver-side application of a message batch (the
/// two-stage destination update of §4.4: coarse bucket + in-LDM update).
pub fn charge_apply(ctx: &mut RankCtx, category: &str, messages: u64) {
    if messages == 0 {
        return;
    }
    let m = *ctx.machine();
    let t = scan_time(&m, 2 * messages); // two passes over the messages
    ctx.charge(category, t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::MachineConfig;

    #[test]
    fn scan_time_monotone_in_edges() {
        let m = MachineConfig::new_sunway();
        let t1 = scan_time(&m, 1_000);
        let t2 = scan_time(&m, 1_000_000);
        assert!(t2 > t1);
        assert!(t1.as_secs() > 0.0);
    }

    #[test]
    fn segmented_pull_is_about_nine_times_faster() {
        // Probe-dominated regime, balanced segments: the RMA/GLD latency
        // ratio (9x) must carry through — Figure 15's kernel speedup.
        let m = MachineConfig::new_sunway();
        let probes = vec![1_000_000u64; 6];
        let seg = kernels::rma_random(&m, 1_000_000, m.cpes_per_cg);
        let unseg = kernels::gld_random(&m, 6_000_000, m.cpes_per_node());
        let ratio = unseg.as_secs() / seg.as_secs();
        assert!((8.0..10.0).contains(&ratio), "speedup {ratio}");
        let _ = probes;
    }
}
