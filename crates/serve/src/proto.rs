//! The newline-delimited-JSON wire protocol shared by the stdin
//! server and the TCP server.
//!
//! One JSON object per line in each direction. Requests parse into a
//! typed [`Request`]; anything malformed parses into a typed
//! [`ProtoError`] instead of a stringly error, so both transports
//! refuse bad input identically and tests can pin the failure class.
//! Replies are built here too — one serializer per reply shape — so a
//! `result` line from the stdin example and from the TCP service are
//! byte-identical for the same [`QueryResult`].
//!
//! Every reply carries a `"reply"` discriminator. Rejections carry the
//! admission reason plus an optional `retry_after_ticks` backoff hint
//! (see [`RejectReason::retry_after_ticks`]); error replies carry a
//! stable `kind` label after the human-readable `detail`.

use sunbfs_common::{JsonValue, MachineConfig, ToJson};
use sunbfs_core::EngineConfig;
use sunbfs_net::MeshShape;
use sunbfs_part::Thresholds;

use crate::report::ServeReport;
use crate::service::{
    HealthConfig, HealthSnapshot, QueryResult, QueryStatus, RejectReason, ServeConfig,
};
use crate::session::{GraphSession, SessionConfig};

/// Hard cap on one request line. A line that exceeds it is refused
/// with [`ProtoError::Oversized`] — and, over TCP, disconnected,
/// because the line framing can no longer be trusted.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// One parsed client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Build (or open) the resident graph. Stdin-only: the TCP server
    /// loads its graph at startup and refuses this over the wire.
    Load(Box<LoadRequest>),
    /// Submit one root.
    Query {
        /// The requested BFS root.
        root: u64,
        /// Optional deadline budget: ticks the query may wait in the
        /// queue before eviction with a `deadline_exceeded` result.
        deadline_ticks: Option<u32>,
    },
    /// Submit many roots at once.
    Batch {
        /// The requested BFS roots, in submission order.
        roots: Vec<u64>,
        /// Optional deadline budget applied to every root in the batch.
        deadline_ticks: Option<u32>,
    },
    /// Commit one batched edge-insert against the live graph; the
    /// reply carries the new epoch.
    Update {
        /// Edges to insert, as `[u, v]` endpoint pairs.
        edges: Vec<(u64, u64)>,
    },
    /// Ask for the service's health state and transition history.
    Health,
    /// Ask for the full [`ServeReport`].
    Stats,
    /// Flush every pending query now.
    Drain,
    /// Graceful shutdown: stop accepting, drain in-flight, flush
    /// replies, exit.
    Shutdown,
}

/// A validated `load` command: both configs plus the optional store
/// path.
#[derive(Clone, Debug)]
pub struct LoadRequest {
    /// The graph to materialize.
    pub session: SessionConfig,
    /// The service knobs to run with.
    pub serve: ServeConfig,
    /// A `sunbfs-store` file to open instead of rebuilding.
    pub path: Option<String>,
}

/// Why a request line was refused, as a closed set of classes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The line exceeds [`MAX_REQUEST_BYTES`]. Fatal over TCP: the
    /// reader can no longer find the next line boundary safely.
    Oversized {
        /// Bytes seen before giving up (may undercount the line).
        bytes: usize,
        /// The configured cap.
        max: usize,
    },
    /// The line is not one well-formed JSON document.
    BadJson {
        /// The parser's message (byte offset of the offense).
        detail: String,
    },
    /// The object has no `"cmd"` string field.
    MissingCmd,
    /// The `"cmd"` names no known command.
    UnknownCmd {
        /// The unknown command verb.
        cmd: String,
    },
    /// A known command with a missing, mistyped, or out-of-range
    /// field. Mistyped knobs refuse the whole command — never a
    /// silent fall-back to the default value.
    BadRequest {
        /// What was wrong, naming the field.
        detail: String,
    },
}

impl ProtoError {
    /// Stable machine-readable class label (the reply's `kind`).
    pub fn label(&self) -> &'static str {
        match self {
            ProtoError::Oversized { .. } => "oversized",
            ProtoError::BadJson { .. } => "bad_json",
            ProtoError::MissingCmd => "missing_cmd",
            ProtoError::UnknownCmd { .. } => "unknown_cmd",
            ProtoError::BadRequest { .. } => "bad_request",
        }
    }

    /// True when the connection cannot continue after this error
    /// (framing is lost, so the peer must reconnect).
    pub fn is_fatal(&self) -> bool {
        matches!(self, ProtoError::Oversized { .. })
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized { bytes, max } => {
                write!(
                    f,
                    "request line of {bytes}+ bytes exceeds the {max}-byte cap"
                )
            }
            ProtoError::BadJson { detail } => write!(f, "bad JSON: {detail}"),
            ProtoError::MissingCmd => write!(f, "missing \"cmd\" field"),
            ProtoError::UnknownCmd { cmd } => write!(f, "unknown cmd {cmd:?}"),
            ProtoError::BadRequest { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Parse one request line into a typed [`Request`].
///
/// # Errors
/// A typed [`ProtoError`] naming the failure class.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(ProtoError::Oversized {
            bytes: line.len(),
            max: MAX_REQUEST_BYTES,
        });
    }
    let cmd = JsonValue::parse(line).map_err(|detail| ProtoError::BadJson { detail })?;
    match cmd.get("cmd").and_then(JsonValue::as_str) {
        Some("load") => parse_load(&cmd).map(|l| Request::Load(Box::new(l))),
        Some("query") => match cmd.get("root").and_then(JsonValue::as_u64) {
            Some(root) => Ok(Request::Query {
                root,
                deadline_ticks: deadline_knob(&cmd)?,
            }),
            None => Err(ProtoError::BadRequest {
                detail: "query needs a numeric \"root\"".into(),
            }),
        },
        Some("batch") => {
            let Some(items) = cmd.get("roots").and_then(JsonValue::as_array) else {
                return Err(ProtoError::BadRequest {
                    detail: "batch needs a \"roots\" array".into(),
                });
            };
            let mut roots = Vec::with_capacity(items.len());
            for v in items {
                match v.as_u64() {
                    Some(root) => roots.push(root),
                    None => {
                        return Err(ProtoError::BadRequest {
                            detail: format!("non-numeric root {}", v.render()),
                        })
                    }
                }
            }
            Ok(Request::Batch {
                roots,
                deadline_ticks: deadline_knob(&cmd)?,
            })
        }
        Some("update") => {
            let Some(items) = cmd.get("edges").and_then(JsonValue::as_array) else {
                return Err(ProtoError::BadRequest {
                    detail: "update needs an \"edges\" array of [u, v] pairs".into(),
                });
            };
            if items.is_empty() {
                return Err(ProtoError::BadRequest {
                    detail: "update \"edges\" must not be empty".into(),
                });
            }
            let mut edges = Vec::with_capacity(items.len());
            for v in items {
                let pair = v.as_array().and_then(|p| match p {
                    [u, w] => Some((u.as_u64()?, w.as_u64()?)),
                    _ => None,
                });
                match pair {
                    Some(e) => edges.push(e),
                    None => {
                        return Err(ProtoError::BadRequest {
                            detail: format!(
                                "update edge must be a [u, v] pair of unsigned \
                                 integers, got {}",
                                v.render()
                            ),
                        })
                    }
                }
            }
            Ok(Request::Update { edges })
        }
        Some("health") => Ok(Request::Health),
        Some("stats") => Ok(Request::Stats),
        Some("drain") => Ok(Request::Drain),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => Err(ProtoError::UnknownCmd { cmd: other.into() }),
        None => Err(ProtoError::MissingCmd),
    }
}

/// A numeric knob with a default and an inclusive range. A knob that is
/// present but mistyped (not an unsigned integer) or out of range is a
/// refusal, not a silent fall-back — `{"scale":"14"}` must never run a
/// default-scale build.
fn knob(cmd: &JsonValue, key: &str, default: u64, min: u64, max: u64) -> Result<u64, ProtoError> {
    match cmd.get(key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(n) if (min..=max).contains(&n) => Ok(n),
            Some(n) => Err(ProtoError::BadRequest {
                detail: format!("load knob {key:?} must be in {min}..={max}, got {n}"),
            }),
            None => Err(ProtoError::BadRequest {
                detail: format!(
                    "load knob {key:?} must be an unsigned integer, got {}",
                    v.render()
                ),
            }),
        },
    }
}

/// The optional `deadline_ticks` budget on a `query`/`batch`. Absent
/// means no deadline; present but mistyped or out of `u32` range is a
/// refusal, like every other knob.
fn deadline_knob(cmd: &JsonValue) -> Result<Option<u32>, ProtoError> {
    match cmd.get("deadline_ticks") {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) if n <= u64::from(u32::MAX) => Ok(Some(n as u32)),
            Some(n) => Err(ProtoError::BadRequest {
                detail: format!("\"deadline_ticks\" must fit in u32, got {n}"),
            }),
            None => Err(ProtoError::BadRequest {
                detail: format!(
                    "\"deadline_ticks\" must be an unsigned integer, got {}",
                    v.render()
                ),
            }),
        },
    }
}

/// A boolean knob with a default; mistyped values are refused.
fn bool_knob(cmd: &JsonValue, key: &str, default: bool) -> Result<bool, ProtoError> {
    match cmd.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| ProtoError::BadRequest {
            detail: format!("load knob {key:?} must be a boolean, got {}", v.render()),
        }),
    }
}

/// The optional `path` knob: a store file to open instead of rebuilding.
fn path_knob(cmd: &JsonValue) -> Result<Option<String>, ProtoError> {
    match (cmd.get("path"), ()) {
        (None, ()) => Ok(None),
        (Some(v), ()) => {
            v.as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| ProtoError::BadRequest {
                    detail: format!("load knob \"path\" must be a string, got {}", v.render()),
                })
        }
    }
}

/// Validate every `load` knob into the two configs plus the optional
/// store path. Any mistyped field refuses the whole command.
fn parse_load(cmd: &JsonValue) -> Result<LoadRequest, ProtoError> {
    let scale = knob(cmd, "scale", 10, 1, 40)?;
    let ranks = knob(cmd, "ranks", 4, 1, 1 << 16)?;
    let e_threshold = knob(cmd, "e_threshold", 256, 0, u64::from(u32::MAX))?;
    let h_threshold = knob(cmd, "h_threshold", 64, 0, u64::from(u32::MAX))?;
    if h_threshold > e_threshold {
        // Thresholds::new panics on h > e; refuse before constructing.
        return Err(ProtoError::BadRequest {
            detail: format!(
                "load knob \"h_threshold\" ({h_threshold}) must not exceed \
                 \"e_threshold\" ({e_threshold})"
            ),
        });
    }
    let session = SessionConfig {
        scale: scale as u32,
        edge_factor: knob(cmd, "edge_factor", 16, 1, u64::from(u32::MAX))? as u32,
        mesh: MeshShape::near_square(ranks as usize),
        thresholds: Thresholds::new(e_threshold as u32, h_threshold as u32),
        engine: EngineConfig::default(),
        machine: MachineConfig::new_sunway(),
        seed: knob(cmd, "seed", 42, 0, u64::MAX)?,
        max_load_attempts: 3,
    };
    let serve = ServeConfig {
        queue_capacity: knob(cmd, "queue_capacity", 256, 1, 1 << 20)? as usize,
        batch_max: knob(
            cmd,
            "batch_max",
            crate::MAX_BATCH as u64,
            1,
            crate::MAX_BATCH as u64,
        )? as usize,
        flush_deadline: knob(cmd, "flush_deadline", 4, 0, u64::from(u32::MAX))? as u32,
        max_root_retries: 2,
        measure_baseline: bool_knob(cmd, "baseline", false)?,
        health: HealthConfig::default(),
    };
    Ok(LoadRequest {
        session,
        serve,
        path: path_knob(cmd)?,
    })
}

/// A generic `{"reply":"error","detail":...,"kind":...}` refusal.
pub fn error_reply(detail: impl Into<String>, kind: &'static str) -> JsonValue {
    JsonValue::object()
        .field("reply", "error")
        .field("detail", detail.into())
        .field("kind", kind)
        .build()
}

/// The error reply for a typed protocol failure.
pub fn proto_error_reply(e: &ProtoError) -> JsonValue {
    error_reply(e.to_string(), e.label())
}

/// The acknowledgment for an admitted query.
pub fn accepted_reply(id: u64, root: u64, queue_depth: usize) -> JsonValue {
    JsonValue::object()
        .field("reply", "accepted")
        .field("id", id)
        .field("root", root)
        .field("queue_depth", queue_depth as u64)
        .build()
}

/// A rejection with an arbitrary reason label and an optional backoff
/// hint (the transport layers add reasons of their own — per-client
/// backlog caps, shutdown — on top of the service's [`RejectReason`]s).
pub fn rejected_reply(
    root: u64,
    reason: &str,
    detail: &str,
    retry_after_ticks: Option<u32>,
) -> JsonValue {
    JsonValue::object()
        .field("reply", "rejected")
        .field("root", root)
        .field("reason", reason)
        .field("detail", detail)
        .field(
            "retry_after_ticks",
            match retry_after_ticks {
                Some(t) => JsonValue::from(u64::from(t)),
                None => JsonValue::Null,
            },
        )
        .build()
}

/// The rejection reply for a typed service-level [`RejectReason`],
/// surfacing its backoff hint when it has one.
pub fn rejection_reply(root: u64, reason: &RejectReason) -> JsonValue {
    rejected_reply(
        root,
        reason.label(),
        &reason.to_string(),
        reason.retry_after_ticks(),
    )
}

/// Render a completed query (histogram and parent handle length, not
/// the full parent array — trees at serving scale dwarf a reply line).
pub fn result_reply(r: &QueryResult) -> JsonValue {
    let mut o = JsonValue::object()
        .field("reply", "result")
        .field("id", r.id.0)
        .field("root", r.root)
        .field(
            "batch_id",
            match r.batch_id {
                Some(b) => JsonValue::from(b),
                None => JsonValue::Null,
            },
        )
        .field("status", r.status.label())
        .field("visited", r.visited)
        .field(
            "depth_histogram",
            JsonValue::Array(
                r.depth_histogram
                    .iter()
                    .map(|&c| JsonValue::from(c))
                    .collect(),
            ),
        )
        .field(
            "parents_len",
            r.parents.as_ref().map_or(0, |p| p.len()) as u64,
        )
        .field("sim_latency_s", r.sim_latency_s)
        .field("via_fallback", r.via_fallback)
        .field("epoch", r.epoch);
    match &r.status {
        QueryStatus::Quarantined(q) => {
            o = o
                .field("quarantine", q.label)
                .field("detail", q.detail.clone());
        }
        QueryStatus::DeadlineExceeded {
            deadline_ticks,
            waited_ticks,
        } => {
            o = o
                .field("deadline_ticks", u64::from(*deadline_ticks))
                .field("waited_ticks", *waited_ticks);
        }
        QueryStatus::Served => {}
    }
    o.build()
}

/// The acknowledgment for a committed update batch: the epoch the
/// commit produced and the session's compaction count after it.
pub fn committed_reply(epoch: u64, edges: usize, compactions: u64) -> JsonValue {
    JsonValue::object()
        .field("reply", "committed")
        .field("epoch", epoch)
        .field("edges", edges as u64)
        .field("compactions", compactions)
        .build()
}

/// The refusal for an update that could not commit (service draining,
/// or the routing pass lost ranks). Deliberately *not* the `rejected`
/// reply shape — that one acknowledges a queued query offer, and
/// reusing it would corrupt client-side offer accounting.
pub fn update_rejected_reply(reason: &str, detail: &str) -> JsonValue {
    JsonValue::object()
        .field("reply", "update_rejected")
        .field("reason", reason)
        .field("detail", detail)
        .build()
}

/// The `health` reply: current state, tick clock, per-class counters,
/// and the full transition history.
pub fn health_reply(h: &HealthSnapshot) -> JsonValue {
    JsonValue::object()
        .field("reply", "health")
        .field("state", h.state)
        .field("ticks", h.ticks)
        .field("queue_depth", h.queue_depth as u64)
        .field("served", h.served)
        .field("quarantined", h.quarantined)
        .field("deadline_exceeded", h.deadline_exceeded)
        .field("rejected_degraded", h.rejected_degraded)
        .field(
            "transitions",
            JsonValue::Array(h.transitions.iter().map(|t| t.to_json()).collect()),
        )
        .build()
}

/// The `stats` reply wrapping the full [`ServeReport`].
pub fn stats_reply(report: &ServeReport) -> JsonValue {
    JsonValue::object()
        .field("reply", "stats")
        .field("serve", report.to_json())
        .build()
}

/// The acknowledgment after a `drain`.
pub fn drained_reply(queue_depth: usize) -> JsonValue {
    JsonValue::object()
        .field("reply", "drained")
        .field("queue_depth", queue_depth as u64)
        .build()
}

/// The acknowledgment for a successful `load`.
pub fn loaded_reply(session: &GraphSession) -> JsonValue {
    let cfg = session.config();
    JsonValue::object()
        .field("reply", "loaded")
        .field("scale", u64::from(cfg.scale))
        .field("ranks", cfg.mesh.num_ranks() as u64)
        .field("vertices", session.num_vertices())
        .field("build_sim_seconds", session.build_sim_seconds)
        .field("load_sim_seconds", session.load_sim_seconds)
        .field("load_attempts", u64::from(session.load_attempts))
        .field(
            "store",
            match &session.store {
                Some(s) => s.to_json(),
                None => JsonValue::Null,
            },
        )
        .build()
}

/// The immediate acknowledgment of a `shutdown` request (sent before
/// the drain starts; the final [`shutdown_reply`] follows it).
pub fn shutting_down_reply(queue_depth: usize) -> JsonValue {
    JsonValue::object()
        .field("reply", "shutting_down")
        .field("queue_depth", queue_depth as u64)
        .build()
}

/// The final reply of a graceful shutdown, after every in-flight query
/// has been drained and its result flushed.
pub fn shutdown_reply(drained: u64) -> JsonValue {
    JsonValue::object()
        .field("reply", "shutdown")
        .field("drained", drained)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::QueryId;
    use std::sync::Arc;

    #[test]
    fn well_formed_requests_parse() {
        assert!(matches!(
            parse_request(r#"{"cmd":"query","root":7}"#),
            Ok(Request::Query {
                root: 7,
                deadline_ticks: None
            })
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"query","root":7,"deadline_ticks":4}"#),
            Ok(Request::Query {
                root: 7,
                deadline_ticks: Some(4)
            })
        ));
        match parse_request(r#"{"cmd":"batch","roots":[1,2,3],"deadline_ticks":0}"#) {
            Ok(Request::Batch {
                roots,
                deadline_ticks,
            }) => {
                assert_eq!(roots, vec![1, 2, 3]);
                assert_eq!(deadline_ticks, Some(0));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"cmd":"health"}"#),
            Ok(Request::Health)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"drain"}"#),
            Ok(Request::Drain)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        match parse_request(r#"{"cmd":"load","scale":9,"ranks":4,"batch_max":8}"#) {
            Ok(Request::Load(l)) => {
                assert_eq!(l.session.scale, 9);
                assert_eq!(l.session.mesh.num_ranks(), 4);
                assert_eq!(l.serve.batch_max, 8);
                assert!(l.path.is_none());
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn update_requests_parse_and_refuse_typed() {
        match parse_request(r#"{"cmd":"update","edges":[[1,2],[3,4]]}"#) {
            Ok(Request::Update { edges }) => assert_eq!(edges, vec![(1, 2), (3, 4)]),
            other => panic!("expected update, got {other:?}"),
        }
        for (line, needle) in [
            (r#"{"cmd":"update"}"#, "\"edges\" array"),
            (r#"{"cmd":"update","edges":[]}"#, "must not be empty"),
            (r#"{"cmd":"update","edges":[[1]]}"#, "[u, v] pair"),
            (r#"{"cmd":"update","edges":[[1,2,3]]}"#, "[u, v] pair"),
            (r#"{"cmd":"update","edges":[[1,"2"]]}"#, "[u, v] pair"),
            (r#"{"cmd":"update","edges":[7]}"#, "[u, v] pair"),
        ] {
            match parse_request(line) {
                Err(ProtoError::BadRequest { detail }) => {
                    assert!(
                        detail.contains(needle),
                        "{line}: {detail:?} lacks {needle:?}"
                    )
                }
                other => panic!("{line} must be BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn update_replies_carry_epoch_and_a_distinct_shape() {
        let js = committed_reply(3, 16, 1).render();
        assert!(
            js.starts_with(r#"{"reply":"committed","epoch":3,"edges":16,"compactions":1"#),
            "got {js}"
        );
        let js = update_rejected_reply("draining", "shutdown in progress").render();
        assert!(
            js.starts_with(r#"{"reply":"update_rejected","reason":"draining""#),
            "got {js}"
        );
        // Never the query-offer rejection shape.
        assert!(!js.contains(r#""reply":"rejected""#), "got {js}");
    }

    #[test]
    fn malformed_lines_are_typed_bad_json() {
        for bad in ["", "not json", "{", r#"{"cmd":}"#] {
            match parse_request(bad) {
                Err(ProtoError::BadJson { .. }) => {}
                other => panic!("{bad:?} must be BadJson, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_and_missing_commands_are_typed() {
        match parse_request(r#"{"cmd":"zap"}"#) {
            Err(ProtoError::UnknownCmd { cmd }) => assert_eq!(cmd, "zap"),
            other => panic!("expected UnknownCmd, got {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"root":1}"#),
            Err(ProtoError::MissingCmd)
        ));
        // A non-string cmd is "missing" — there is no verb to dispatch.
        assert!(matches!(
            parse_request(r#"{"cmd":3}"#),
            Err(ProtoError::MissingCmd)
        ));
    }

    #[test]
    fn oversized_lines_are_fatal() {
        let line = format!(
            r#"{{"cmd":"query","root":1,"pad":"{}"}}"#,
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let err = parse_request(&line).expect_err("oversized must refuse");
        assert!(matches!(err, ProtoError::Oversized { .. }));
        assert!(err.is_fatal());
        assert_eq!(err.label(), "oversized");
        // Every other class keeps the connection usable.
        assert!(!ProtoError::MissingCmd.is_fatal());
    }

    #[test]
    fn bad_fields_refuse_the_whole_command() {
        for (line, needle) in [
            (r#"{"cmd":"query"}"#, "numeric \"root\""),
            (r#"{"cmd":"query","root":"5"}"#, "numeric \"root\""),
            (r#"{"cmd":"batch"}"#, "\"roots\" array"),
            (r#"{"cmd":"batch","roots":[1,"2"]}"#, "non-numeric root"),
            (r#"{"cmd":"load","scale":"9"}"#, "unsigned integer"),
            (r#"{"cmd":"load","scale":99}"#, "must be in 1..=40"),
            (r#"{"cmd":"load","baseline":1}"#, "must be a boolean"),
            (r#"{"cmd":"load","path":7}"#, "must be a string"),
            (
                r#"{"cmd":"query","root":1,"deadline_ticks":"4"}"#,
                "unsigned integer",
            ),
            (
                r#"{"cmd":"batch","roots":[1],"deadline_ticks":4294967296}"#,
                "must fit in u32",
            ),
            (
                r#"{"cmd":"load","e_threshold":8,"h_threshold":16}"#,
                "must not exceed",
            ),
        ] {
            match parse_request(line) {
                Err(ProtoError::BadRequest { detail }) => {
                    assert!(
                        detail.contains(needle),
                        "{line}: {detail:?} lacks {needle:?}"
                    )
                }
                other => panic!("{line} must be BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejection_replies_carry_the_backoff_hint() {
        let full = RejectReason::QueueFull {
            capacity: 8,
            retry_after_ticks: 3,
        };
        let js = rejection_reply(5, &full).render();
        assert!(js.contains(r#""reason":"queue_full""#), "got {js}");
        assert!(js.contains(r#""retry_after_ticks":3"#), "got {js}");

        let invalid = RejectReason::InvalidRoot {
            root: 99,
            num_vertices: 64,
        };
        let js = rejection_reply(99, &invalid).render();
        assert!(js.contains(r#""reason":"invalid_root""#), "got {js}");
        assert!(js.contains(r#""retry_after_ticks":null"#), "got {js}");
    }

    #[test]
    fn reply_shapes_carry_their_discriminators() {
        assert!(accepted_reply(1, 2, 3)
            .render()
            .starts_with(r#"{"reply":"accepted","id":1,"root":2,"queue_depth":3"#));
        assert!(drained_reply(0)
            .render()
            .starts_with(r#"{"reply":"drained"#));
        assert!(shutting_down_reply(2)
            .render()
            .starts_with(r#"{"reply":"shutting_down","queue_depth":2"#));
        assert!(shutdown_reply(7)
            .render()
            .starts_with(r#"{"reply":"shutdown","drained":7"#));
        let err = proto_error_reply(&ProtoError::MissingCmd).render();
        assert!(
            err.starts_with(
                r#"{"reply":"error","detail":"missing \"cmd\" field","kind":"missing_cmd""#
            ),
            "got {err}"
        );
    }

    #[test]
    fn result_replies_render_status_and_quarantine_detail() {
        let served = QueryResult {
            id: QueryId(4),
            root: 9,
            batch_id: Some(1),
            status: QueryStatus::Served,
            parents: Some(Arc::new(vec![0, 1])),
            depth_histogram: vec![1, 1],
            visited: 2,
            engine_traversed_edges: 3,
            sim_latency_s: 0.5,
            wall_latency_s: 0.1,
            via_fallback: false,
            epoch: 2,
        };
        let js = result_reply(&served).render();
        assert!(js.contains(r#""status":"served""#), "got {js}");
        assert!(js.contains(r#""epoch":2"#), "got {js}");
        assert!(js.contains(r#""parents_len":2"#), "got {js}");
        assert!(!js.contains("quarantine"), "got {js}");

        let mut bad = served;
        bad.status = QueryStatus::Quarantined(crate::service::Quarantine {
            label: "engine",
            detail: "boom".into(),
        });
        bad.parents = None;
        let js = result_reply(&bad).render();
        assert!(js.contains(r#""status":"quarantined""#), "got {js}");
        assert!(js.contains(r#""quarantine":"engine""#), "got {js}");
        assert!(js.contains(r#""detail":"boom""#), "got {js}");
    }

    #[test]
    fn deadline_exceeded_results_render_budget_and_wait() {
        let evicted = QueryResult {
            id: QueryId(11),
            root: 3,
            batch_id: None,
            status: QueryStatus::DeadlineExceeded {
                deadline_ticks: 2,
                waited_ticks: 3,
            },
            parents: None,
            depth_histogram: Vec::new(),
            visited: 0,
            engine_traversed_edges: 0,
            sim_latency_s: 0.0,
            wall_latency_s: 0.0,
            via_fallback: false,
            epoch: 0,
        };
        let js = result_reply(&evicted).render();
        assert!(js.contains(r#""status":"deadline_exceeded""#), "got {js}");
        assert!(js.contains(r#""batch_id":null"#), "got {js}");
        assert!(js.contains(r#""deadline_ticks":2"#), "got {js}");
        assert!(js.contains(r#""waited_ticks":3"#), "got {js}");
    }

    #[test]
    fn health_replies_carry_state_and_transitions() {
        let snap = HealthSnapshot {
            state: "recovering",
            ticks: 40,
            transitions: vec![crate::report::HealthTransition {
                from: "healthy",
                to: "degraded",
                at_tick: 12,
                reason: "batch 3 fell back".into(),
            }],
            queue_depth: 2,
            served: 10,
            quarantined: 1,
            deadline_exceeded: 2,
            rejected_degraded: 5,
        };
        let js = health_reply(&snap).render();
        assert!(
            js.starts_with(r#"{"reply":"health","state":"recovering""#),
            "got {js}"
        );
        assert!(js.contains(r#""ticks":40"#), "got {js}");
        assert!(js.contains(r#""rejected_degraded":5"#), "got {js}");
        assert!(js.contains(r#""from":"healthy""#), "got {js}");
        assert!(js.contains(r#""to":"degraded""#), "got {js}");
    }

    #[test]
    fn degraded_rejections_carry_state_and_hint() {
        let shed = RejectReason::ServiceDegraded {
            state: "quarantined",
            retry_after_ticks: 9,
        };
        let js = rejection_reply(5, &shed).render();
        assert!(js.contains(r#""reason":"service_degraded""#), "got {js}");
        assert!(js.contains(r#""retry_after_ticks":9"#), "got {js}");
        assert!(js.contains("quarantined"), "got {js}");
    }
}
