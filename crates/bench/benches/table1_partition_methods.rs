//! **Table 1** — partitioning methods of recent large-scale BFS records.
//!
//! The paper's table lists five systems (Blue Gene/Q 1D+delegates,
//! K-Computer 2D, TaihuLight 1D+delegates, Fugaku 2D, and this work's
//! degree-aware 1.5D). §4.1 observes the baselines are *degenerations*
//! of 1.5D: `|H| = 0` on a flat mesh gives 1D with heavy delegates;
//! `|L| = 0` gives 2D with vertex reordering.
//!
//! This harness runs all partitioning methods on the same simulated
//! machine and graph, so the "Part. Method" column becomes a measured
//! comparison: the 1.5D row must win, and both baselines must beat
//! vanilla 1D.

use sunbfs_bench::{run_and_summarize, run_config};
use sunbfs_core::EngineConfig;
use sunbfs_part::Thresholds;

fn main() {
    let scale = 19;
    let ranks = 16;
    let roots = 3;
    println!("=== Table 1: partitioning methods compared on one machine ===");
    println!("    (SCALE {scale}, {ranks} ranks, {roots} roots, simulated GTEPS)\n");

    let engine = EngineConfig::default();
    let rows: Vec<(&str, Thresholds)> = vec![
        ("vanilla 1D (no delegates)", Thresholds::none()),
        (
            "1D with heavy delegates   [Checconi'14, Lin'16]",
            Thresholds::heavy_only(4096),
        ),
        (
            "2D                        [Ueno'15, Nakao'21]",
            Thresholds::all_hubs(1 << 24),
        ),
        (
            "degree-aware 1.5D         [this paper]",
            Thresholds::new(4096, 512),
        ),
    ];

    let mut results = Vec::new();
    for (name, th) in rows {
        let cfg = run_config(scale, ranks, th, engine, roots);
        let report = run_and_summarize(name, &cfg);
        results.push((name, report.harmonic_mean_gteps()));
    }

    println!("\n  method                                            GTEPS   vs vanilla 1D");
    let base = results[0].1;
    for (name, gteps) in &results {
        println!("  {name:<48} {gteps:>7.3}   {:>5.2}x", gteps / base);
    }

    let one_d = results[1].1;
    let two_d = results[2].1;
    let ours = results[3].1;
    println!();
    if ours >= one_d && ours >= two_d {
        println!(
            "  -> 1.5D wins over both baselines ({:.2}x over 1D+delegates, {:.2}x over 2D),",
            ours / one_d,
            ours / two_d
        );
        println!("     matching the paper's 1.75x over the best prior record.");
    } else {
        println!("  !! 1.5D did not win at this configuration — see EXPERIMENTS.md notes.");
    }
}
