//! Service observability: everything the metrics JSON `serve` section
//! (schema v9, `docs/METRICS.md`) reports about one service lifetime.

use sunbfs_common::{JsonValue, ToJson};

/// One health state change (`docs/FAULTS.md`), as the report and the
/// `health` reply carry it.
#[derive(Clone, Debug)]
pub struct HealthTransition {
    /// State label left (`healthy`/`degraded`/`quarantined`/`recovering`).
    pub from: &'static str,
    /// State label entered.
    pub to: &'static str,
    /// Service tick when the transition happened.
    pub at_tick: u64,
    /// Why (human-readable, e.g. `"2/4 window batches failed"`).
    pub reason: String,
}

impl ToJson for HealthTransition {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("from", self.from)
            .field("to", self.to)
            .field("at_tick", self.at_tick)
            .field("reason", self.reason.as_str())
            .build()
    }
}

/// Power-of-two occupancy buckets: 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64.
pub const OCCUPANCY_BUCKETS: usize = 7;

/// Bucket index for a batch of `occ` riders (`occ ≥ 1`). Occupancies
/// past the last bucket's lower bound clamp into the last bucket — a
/// modulo here would wrap occ = 128 back to the `"1"` bucket.
pub fn occupancy_bucket(occ: usize) -> usize {
    debug_assert!(occ >= 1);
    ((usize::BITS - 1 - occ.max(1).leading_zeros()) as usize).min(OCCUPANCY_BUCKETS - 1)
}

/// Human-readable bucket labels, index-aligned with the histogram.
pub const OCCUPANCY_LABELS: [&str; OCCUPANCY_BUCKETS] =
    ["1", "2-3", "4-7", "8-15", "16-31", "32-63", "64"];

/// One executed batch.
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Sequence number (0-based, formation order).
    pub batch_id: u64,
    /// Queries that rode in this batch.
    pub occupancy: usize,
    /// Simulated seconds the batch took (max over ranks for the batched
    /// path; summed per-root times on the fallback path).
    pub sim_seconds: f64,
    /// Wall-clock seconds the execution took on the host.
    pub wall_seconds: f64,
    /// True when a lost rank degraded this batch to per-root recovery.
    pub fallback: bool,
    /// Riders served.
    pub served: u64,
    /// Riders quarantined.
    pub quarantined: u64,
    /// Simulated seconds the same roots took sequentially (present only
    /// when the service measures baselines).
    pub seq_sim_seconds: Option<f64>,
}

impl ToJson for BatchRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("batch_id", self.batch_id)
            .field("occupancy", self.occupancy as u64)
            .field("sim_seconds", self.sim_seconds)
            .field("wall_seconds", self.wall_seconds)
            .field("fallback", self.fallback)
            .field("served", self.served)
            .field("quarantined", self.quarantined)
            .field(
                "seq_sim_seconds",
                match self.seq_sim_seconds {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            )
            .build()
    }
}

/// One completed query, as the report remembers it.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The query's ticket number.
    pub id: u64,
    /// The root vertex.
    pub root: u64,
    /// The batch it rode in (`None` for queries evicted before forming
    /// one, e.g. `deadline_exceeded`).
    pub batch_id: Option<u64>,
    /// `served`, `quarantined`, or `deadline_exceeded`.
    pub status: &'static str,
    /// Simulated seconds the serving traversal took.
    pub sim_latency_s: f64,
    /// Wall-clock seconds the execution took on the host.
    pub wall_latency_s: f64,
    /// True when served by per-root recovery instead of the batch.
    pub via_fallback: bool,
}

impl ToJson for QueryRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("id", self.id)
            .field("root", self.root)
            .field(
                "batch_id",
                match self.batch_id {
                    Some(b) => JsonValue::from(b),
                    None => JsonValue::Null,
                },
            )
            .field("status", self.status)
            .field("sim_latency_s", self.sim_latency_s)
            .field("wall_latency_s", self.wall_latency_s)
            .field("via_fallback", self.via_fallback)
            .build()
    }
}

/// Everything one service lifetime reports.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Configured maximum batch width.
    pub batch_max: usize,
    /// Configured partial-batch flush deadline (ticks).
    pub flush_deadline: u32,
    /// Queries admitted.
    pub submitted: u64,
    /// Queries served (batched or fallback).
    pub served: u64,
    /// Queries quarantined after exhausting recovery.
    pub quarantined: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_full: u64,
    /// Submissions rejected because the root was out of range.
    pub rejected_invalid: u64,
    /// Submissions shed by the health circuit breaker
    /// (`service_degraded` rejections).
    pub rejected_degraded: u64,
    /// Queries evicted past their deadline budget.
    pub deadline_exceeded: u64,
    /// Service ticks elapsed at report time.
    pub ticks: u64,
    /// Health state label at report time (empty before the service
    /// first reports; rendered as `healthy` then).
    pub health: &'static str,
    /// Every health transition, in order.
    pub health_transitions: Vec<HealthTransition>,
    /// Chaos fault events armed against the live cluster.
    pub chaos_injected: u64,
    /// Of those, rank panics.
    pub chaos_panics: u64,
    /// Of those, stragglers.
    pub chaos_stragglers: u64,
    /// Of those, payload corruptions.
    pub chaos_corruptions: u64,
    /// Deepest the pending queue ever got.
    pub max_queue_depth: usize,
    /// Pending queries at report time.
    pub current_queue_depth: usize,
    /// Batches that degraded to per-root recovery.
    pub fallback_batches: u64,
    /// Batches per occupancy bucket ([`OCCUPANCY_LABELS`] order).
    pub occupancy_histogram: [u64; OCCUPANCY_BUCKETS],
    /// Every executed batch, in order.
    pub batches: Vec<BatchRecord>,
    /// Every completed query, in completion order.
    pub queries: Vec<QueryRecord>,
    /// Total simulated seconds spent executing batches.
    pub batch_sim_seconds: f64,
    /// Total simulated seconds the sequential baseline spent on the
    /// same roots (present only when baselines were measured).
    pub sequential_sim_seconds: Option<f64>,
    /// Simulated seconds the session's partition build took.
    pub build_sim_seconds: f64,
    /// Simulated seconds across *all* session build attempts, failed
    /// ones included (≥ `build_sim_seconds` when the load retried).
    pub load_sim_seconds: f64,
    /// SPMD attempts the session load spent (1 = clean, 0 = opened
    /// from a persistent store file).
    pub load_attempts: u32,
    /// Update batches committed (each bumped the epoch by one).
    pub updates_applied: u64,
    /// Edges across every committed update batch (pre-dedup).
    pub update_edges: u64,
    /// Update batches that failed to commit (lost ranks mid-routing);
    /// the session state is untouched by a failed commit.
    pub updates_failed: u64,
    /// Session epoch at report time (0 = never mutated).
    pub epoch: u64,
    /// Delta-into-base compactions the session performed.
    pub compactions: u64,
    /// Served queries whose result was patched by incremental repair
    /// (a non-empty delta overlay was resident at execution time).
    pub repaired_queries: u64,
    /// Vertices whose depth the repair passes improved, summed over
    /// all repaired queries.
    pub repaired_vertices: u64,
}

impl ServeReport {
    /// Served roots per simulated second through the batch path.
    pub fn batch_roots_per_sec(&self) -> f64 {
        if self.batch_sim_seconds > 0.0 {
            self.served as f64 / self.batch_sim_seconds
        } else {
            0.0
        }
    }

    /// Roots per simulated second of the sequential baseline, when
    /// measured.
    pub fn sequential_roots_per_sec(&self) -> Option<f64> {
        let seq = self.sequential_sim_seconds?;
        if seq > 0.0 {
            Some(self.served as f64 / seq)
        } else {
            None
        }
    }

    /// Fraction of completed queries that were served: `served /
    /// (served + quarantined + deadline_exceeded)`. `1.0` when nothing
    /// completed yet. Rejections are *not* completions — a shed query
    /// never entered the service — so they sit outside this ratio (the
    /// soak harness accounts for them separately).
    pub fn availability(&self) -> f64 {
        let completed = self.served + self.quarantined + self.deadline_exceeded;
        if completed == 0 {
            1.0
        } else {
            self.served as f64 / completed as f64
        }
    }

    /// Batched-over-sequential throughput ratio, when the baseline was
    /// measured (> 1.0 means batching wins).
    pub fn speedup(&self) -> Option<f64> {
        let seq = self.sequential_sim_seconds?;
        if self.batch_sim_seconds > 0.0 {
            Some(seq / self.batch_sim_seconds)
        } else {
            None
        }
    }
}

impl ServeReport {
    /// The aggregate serve section without the per-batch and per-query
    /// arrays — what committed artifacts embed, since a multi-second
    /// soak records thousands of queries and the arrays would dwarf
    /// every other field.
    pub fn to_summary_json(&self) -> JsonValue {
        let occupancy = OCCUPANCY_LABELS
            .iter()
            .zip(self.occupancy_histogram.iter())
            .fold(JsonValue::object(), |o, (label, &count)| {
                o.field(label, count)
            })
            .build();
        JsonValue::object()
            .field("queue_capacity", self.queue_capacity as u64)
            .field("batch_max", self.batch_max as u64)
            .field("flush_deadline", u64::from(self.flush_deadline))
            .field("submitted", self.submitted)
            .field("served", self.served)
            .field("quarantined", self.quarantined)
            .field("rejected_full", self.rejected_full)
            .field("rejected_invalid", self.rejected_invalid)
            .field("rejected_degraded", self.rejected_degraded)
            .field("deadline_exceeded", self.deadline_exceeded)
            .field("availability", self.availability())
            .field("ticks", self.ticks)
            .field(
                "health",
                if self.health.is_empty() {
                    "healthy"
                } else {
                    self.health
                },
            )
            .field(
                "health_transitions",
                JsonValue::Array(
                    self.health_transitions
                        .iter()
                        .map(|t| t.to_json())
                        .collect(),
                ),
            )
            .field("chaos_injected", self.chaos_injected)
            .field("chaos_panics", self.chaos_panics)
            .field("chaos_stragglers", self.chaos_stragglers)
            .field("chaos_corruptions", self.chaos_corruptions)
            .field("max_queue_depth", self.max_queue_depth as u64)
            .field("current_queue_depth", self.current_queue_depth as u64)
            .field("fallback_batches", self.fallback_batches)
            .field("occupancy_histogram", occupancy)
            .field("batch_sim_seconds", self.batch_sim_seconds)
            .field(
                "sequential_sim_seconds",
                match self.sequential_sim_seconds {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            )
            .field("batch_roots_per_sec", self.batch_roots_per_sec())
            .field(
                "sequential_roots_per_sec",
                match self.sequential_roots_per_sec() {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            )
            .field(
                "speedup",
                match self.speedup() {
                    Some(s) => JsonValue::from(s),
                    None => JsonValue::Null,
                },
            )
            .field("build_sim_seconds", self.build_sim_seconds)
            .field("load_sim_seconds", self.load_sim_seconds)
            .field("load_attempts", u64::from(self.load_attempts))
            .field("updates_applied", self.updates_applied)
            .field("update_edges", self.update_edges)
            .field("updates_failed", self.updates_failed)
            .field("epoch", self.epoch)
            .field("compactions", self.compactions)
            .field("repaired_queries", self.repaired_queries)
            .field("repaired_vertices", self.repaired_vertices)
            .build()
    }
}

impl ToJson for ServeReport {
    fn to_json(&self) -> JsonValue {
        let JsonValue::Object(mut fields) = self.to_summary_json() else {
            unreachable!("summary is always an object");
        };
        fields.push((
            "batches".to_string(),
            JsonValue::Array(self.batches.iter().map(|b| b.to_json()).collect()),
        ));
        fields.push((
            "queries".to_string(),
            JsonValue::Array(self.queries.iter().map(|q| q.to_json()).collect()),
        ));
        JsonValue::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_buckets_are_power_of_two_ranges() {
        assert_eq!(occupancy_bucket(1), 0);
        assert_eq!(occupancy_bucket(2), 1);
        assert_eq!(occupancy_bucket(3), 1);
        assert_eq!(occupancy_bucket(4), 2);
        assert_eq!(occupancy_bucket(7), 2);
        assert_eq!(occupancy_bucket(8), 3);
        assert_eq!(occupancy_bucket(15), 3);
        assert_eq!(occupancy_bucket(16), 4);
        assert_eq!(occupancy_bucket(31), 4);
        assert_eq!(occupancy_bucket(32), 5);
        assert_eq!(occupancy_bucket(63), 5);
        assert_eq!(occupancy_bucket(64), 6);
    }

    #[test]
    fn occupancy_clamps_instead_of_wrapping() {
        // Regression: `% OCCUPANCY_BUCKETS` wrapped occ > 64 back to
        // bucket 0 ("1"); large batches must clamp to the last bucket.
        assert_eq!(occupancy_bucket(1), 0);
        assert_eq!(occupancy_bucket(2), 1);
        assert_eq!(occupancy_bucket(63), 5);
        assert_eq!(occupancy_bucket(64), 6);
        assert_eq!(occupancy_bucket(65), 6);
        assert_eq!(occupancy_bucket(128), 6);
    }

    #[test]
    fn speedup_requires_a_measured_baseline() {
        let mut r = ServeReport {
            served: 8,
            batch_sim_seconds: 2.0,
            ..ServeReport::default()
        };
        assert_eq!(r.speedup(), None);
        assert_eq!(r.sequential_roots_per_sec(), None);
        r.sequential_sim_seconds = Some(8.0);
        assert_eq!(r.speedup(), Some(4.0));
        assert_eq!(r.batch_roots_per_sec(), 4.0);
        assert_eq!(r.sequential_roots_per_sec(), Some(1.0));
    }

    #[test]
    fn report_json_carries_the_serve_section_fields() {
        let r = ServeReport::default();
        let js = r.to_json().render();
        for key in [
            "occupancy_histogram",
            "batch_roots_per_sec",
            "sequential_roots_per_sec",
            "speedup",
            "max_queue_depth",
            "batches",
            "queries",
            "rejected_degraded",
            "deadline_exceeded",
            "availability",
            "health",
            "health_transitions",
            "chaos_injected",
            "updates_applied",
            "update_edges",
            "updates_failed",
            "epoch",
            "compactions",
            "repaired_queries",
            "repaired_vertices",
        ] {
            assert!(js.contains(&format!("\"{key}\"")), "missing {key} in {js}");
        }
        assert!(
            js.contains("\"health\":\"healthy\""),
            "empty health label must render as healthy: {js}"
        );
    }

    #[test]
    fn availability_counts_only_completed_queries() {
        let mut r = ServeReport::default();
        assert_eq!(r.availability(), 1.0, "vacuously available");
        r.served = 9;
        r.quarantined = 1;
        assert_eq!(r.availability(), 0.9);
        r.deadline_exceeded = 10;
        assert_eq!(r.availability(), 0.45);
        // Rejections are not completions.
        r.rejected_degraded = 1000;
        r.rejected_full = 1000;
        assert_eq!(r.availability(), 0.45);
    }

    #[test]
    fn health_transitions_render_with_all_fields() {
        let t = HealthTransition {
            from: "healthy",
            to: "degraded",
            at_tick: 12,
            reason: "batch 3 fell back".to_string(),
        };
        let js = t.to_json().render();
        for key in ["from", "to", "at_tick", "reason"] {
            assert!(js.contains(&format!("\"{key}\"")), "missing {key} in {js}");
        }
        assert!(js.contains("\"at_tick\":12"));
    }
}
