//! Golden-file test pinning the JSON metrics schema at SCALE 9.
//!
//! The golden file records the *skeleton* of the report — every field
//! path with its JSON type, arrays descended through their first
//! element — not the values, so perf changes don't churn it but any
//! schema change (added, removed, renamed, or retyped field) fails
//! loudly. Regenerate deliberately with
//! `SUNBFS_UPDATE_GOLDEN=1 cargo test --test metrics_json`.

use std::path::PathBuf;

use sunbfs::common::JsonValue;
use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};

fn skeleton(v: &JsonValue, path: &str, out: &mut Vec<String>) {
    match v {
        JsonValue::Null => out.push(format!("{path}: null")),
        JsonValue::Bool(_) => out.push(format!("{path}: bool")),
        JsonValue::UInt(_) | JsonValue::Int(_) => out.push(format!("{path}: int")),
        JsonValue::Float(_) => out.push(format!("{path}: float")),
        JsonValue::Str(_) => out.push(format!("{path}: string")),
        JsonValue::Array(items) => match items.first() {
            None => out.push(format!("{path}: array(empty)")),
            Some(first) => skeleton(first, &format!("{path}[]"), out),
        },
        JsonValue::Object(fields) => {
            for (k, v) in fields {
                skeleton(v, &format!("{path}.{k}"), out);
            }
        }
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn check_against_golden(report: &sunbfs::driver::BenchmarkReport, name: &str) {
    let mut lines = Vec::new();
    skeleton(&report.to_json(), "$", &mut lines);
    let got = lines.join("\n") + "\n";

    let path = golden_path(name);
    if std::env::var_os("SUNBFS_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SUNBFS_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if got != want {
        let diff: Vec<String> = {
            let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
            let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
            want_set
                .difference(&got_set)
                .map(|l| format!("- {l}"))
                .chain(got_set.difference(&want_set).map(|l| format!("+ {l}")))
                .collect()
        };
        panic!(
            "JSON metrics schema changed relative to {} — if intentional, bump \
             SCHEMA_VERSION and regenerate with SUNBFS_UPDATE_GOLDEN=1.\n{}",
            path.display(),
            diff.join("\n")
        );
    }
}

#[test]
fn json_schema_matches_golden_at_scale_9() {
    let report = run_benchmark(&RunConfig::small_test(9, 4)).expect("benchmark must pass");
    check_against_golden(&report, "bench_schema_scale9.txt");
}

#[test]
fn degraded_json_schema_matches_golden_at_scale_9() {
    // A campaign that quarantines root 0 (panic at collective 0, no
    // retry budget) and logs a straggler: the skeleton then pins the
    // `faults.injected[]` and `faults.quarantined[]` element schemas,
    // which a clean run leaves as empty arrays.
    let mut cfg = RunConfig::small_test(9, 4);
    cfg.faults = FaultSpec {
        seed: 5,
        panics: 1,
        stragglers: 1,
        corruptions: 0,
        straggler_secs: 0.5,
        horizon: 1,
    };
    cfg.max_root_retries = 0;
    let report = run_benchmark(&cfg).expect("degraded completion");
    assert!(report.faults.degraded(), "campaign must degrade the run");
    check_against_golden(&report, "bench_schema_scale9_faults.txt");
}

#[test]
fn recovery_json_schema_matches_golden_at_scale_9() {
    // A campaign exercising both self-healing layers at once: probe
    // seeds (deterministically — the probe order never changes) until
    // one yields at least one healed retransmit AND at least one
    // iteration salvaged by checkpoint/resume, then pin that report's
    // skeleton, which includes the `recovery.retransmit_log[]` element
    // schema a clean run leaves empty.
    for seed in 0..32 {
        let mut cfg = RunConfig::small_test(9, 4);
        cfg.faults = FaultSpec {
            seed,
            panics: 1,
            stragglers: 0,
            corruptions: 2,
            straggler_secs: 0.0,
            horizon: 40,
        };
        cfg.max_root_retries = 2;
        let report = run_benchmark(&cfg).expect("campaign is absorbed or degraded, never fatal");
        if report.recovery.retransmits() >= 1 && report.recovery.iterations_salvaged >= 1 {
            check_against_golden(&report, "bench_schema_scale9_resume.txt");
            return;
        }
    }
    panic!("no probed campaign seed exercised both recovery layers");
}

#[test]
fn serve_json_schema_matches_golden_at_scale_9() {
    // The serve path fills the schema-v4 `serve` section (occupancy
    // histogram, per-batch and per-query records, baseline comparison);
    // the golden pins its skeleton. Two batches (batch_max 2, 3 roots)
    // so the partial-flush shape is exercised too.
    let cfg = RunConfig::builder()
        .scale(9)
        .ranks(4)
        .num_roots(3)
        .validate(true)
        .serve_batch(true)
        .serve_baseline(true)
        .build();
    let report = run_benchmark(&cfg).expect("serve benchmark must pass");
    assert!(report.validated, "served trees must validate");
    let serve = report.serve.as_ref().expect("serve section present");
    assert_eq!(serve.served, 3);
    assert!(serve.speedup().is_some(), "baseline requested");
    check_against_golden(&report, "bench_schema_scale9_serve.txt");
}

#[test]
fn store_json_schema_matches_golden_at_scale_9() {
    // A save → load round trip fills the schema-v6 `store` section;
    // the golden pins the *opened* shape (null cold-build seconds, a
    // measured warm-open wall) plus the `config.load_graph` string.
    let path =
        std::env::temp_dir().join(format!("sunbfs_store_golden_{}.sbfs", std::process::id()));
    let p = path.to_str().expect("utf-8 temp path");
    let base = RunConfig::builder()
        .scale(9)
        .ranks(4)
        .num_roots(2)
        .validate(true);
    run_benchmark(&base.clone().save_graph(p).build()).expect("cold run must pass");
    let report = run_benchmark(&base.load_graph(p).build()).expect("warm run must pass");
    std::fs::remove_file(&path).ok();
    assert!(report.validated, "opened-session trees must validate");
    let store = report.store.as_ref().expect("store section present");
    assert!(store.opened, "second run must open the saved file");
    check_against_golden(&report, "bench_schema_scale9_store.txt");
}

#[test]
fn classic_path_reports_a_null_serve_section() {
    let report = run_benchmark(&RunConfig::small_test(9, 4)).expect("benchmark must pass");
    assert!(report.serve.is_none());
    assert!(report.store.is_none());
    let js = report.to_json().render();
    assert!(js.contains("\"serve\":null"));
    assert!(js.contains("\"store\":null"));
    assert!(js.contains("\"schema_version\":10"));
    assert!(js.contains("\"serve_batch\":false"));
    assert!(js.contains("\"serve_baseline\":false"));
    assert!(js.contains("\"save_graph\":null"));
    assert!(js.contains("\"load_graph\":null"));
}

#[test]
fn report_contains_acceptance_fields() {
    let report = run_benchmark(&RunConfig::small_test(9, 4)).expect("benchmark must pass");
    let js = report.to_json().render();
    // Acceptance criteria: headline, per-iteration directions for all
    // six subgraphs, per-category time breakdown, OCS kernel
    // aggregates.
    assert!(js.contains("\"harmonic_mean_gteps\":"));
    for comp in ["EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L"] {
        assert!(
            js.contains(&format!("\"{comp}\":")),
            "missing component {comp}"
        );
    }
    assert!(js.contains("\"direction\":\"push\"") || js.contains("\"direction\":\"pull\""));
    assert!(js.contains("\"time_breakdown\":"));
    assert!(js.contains("\"rma_ops\":"));
    assert!(js.contains("\"dma_bytes\":"));
    assert!(js.contains("\"atomic_ops\":"));
}
