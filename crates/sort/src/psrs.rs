//! Parallel Sorting by Regular Sampling over the simulated cluster.
//!
//! The in-place global sort of §5 (the preprocessing workhorse that
//! splits the edge list into the six subgraph components) is "based on
//! Parallel Sorting by Regular Sampling [Shi & Schaeffer 1992], with
//! local sort implemented with PARADIS". This module is that global
//! sort, written SPMD against [`sunbfs_net::RankCtx`]:
//!
//! 1. each rank PARADIS-sorts its local slice,
//! 2. each rank contributes `P` regular samples; the gathered `P²`
//!    samples are sorted and `P-1` pivots chosen (identically on every
//!    rank — no root broadcast needed),
//! 3. local data is partitioned by the pivots and exchanged with one
//!    `alltoallv`,
//! 4. each rank merges its received, already-sorted runs.
//!
//! The result is globally sorted by rank order with the classic PSRS
//! balance guarantee (< 2·n/P elements per rank for distinct keys).

use crate::paradis;
use sunbfs_common::SimTime;
use sunbfs_net::{RankCtx, Scope};

/// Approximate node-local sort rate used for time accounting: an
/// 8-byte-key radix pass is DMA-bound, so we charge `key_bytes` streaming
/// passes over the data at chip DMA bandwidth.
fn charge_local_sort(ctx: &mut RankCtx, category: &str, bytes: u64, passes: u32) {
    let t = SimTime::from_bytes(bytes * passes as u64 * 2, ctx.machine().dma_bandwidth);
    ctx.charge(category, t);
}

/// Globally sort `local` by `key` across all ranks of the world scope.
///
/// Returns this rank's slice of the global sorted order (rank 0 holds
/// the smallest keys). The concatenation over ranks is a sorted
/// permutation of the concatenated inputs.
pub fn psrs_sort_by_key<T, K>(
    ctx: &mut RankCtx,
    category: &str,
    mut local: Vec<T>,
    key: K,
    key_bytes: u32,
) -> Vec<T>
where
    T: Copy + Send + Sync + 'static,
    K: Fn(&T) -> u64 + Sync,
{
    let p = ctx.nranks();
    // Local PARADIS *partitions* per simulated rank. Fixed so the
    // permutation (hence the order of equal keys) never depends on how
    // many pool threads actually staff it — see `permute_speculative`.
    let workers = 2;

    // (1) local sort
    paradis::radix_sort_in_place(&mut local, &key, workers, key_bytes);
    charge_local_sort(
        ctx,
        category,
        (local.len() * std::mem::size_of::<T>()) as u64,
        key_bytes,
    );

    if p == 1 {
        return local;
    }

    // (2) regular sampling: P samples per rank at positions i*n/P.
    let n = local.len();
    let samples: Vec<u64> = (0..p)
        .map(|i| if n == 0 { 0 } else { key(&local[i * n / p]) })
        .collect();
    let gathered = ctx.allgatherv(Scope::World, "comm.allgather", samples);
    let mut all_samples: Vec<u64> = gathered.into_iter().flatten().collect();
    all_samples.sort_unstable();
    // P-1 pivots at regular positions of the sample array.
    let pivots: Vec<u64> = (1..p).map(|i| all_samples[i * p + p / 2 - 1]).collect();

    // (3) partition by pivots (local is sorted → binary-search cuts),
    // then exchange.
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0usize);
    for &piv in &pivots {
        let at = local.partition_point(|x| key(x) <= piv);
        cuts.push(at.max(*cuts.last().unwrap()));
    }
    cuts.push(n);
    let send: Vec<Vec<T>> = (0..p)
        .map(|i| local[cuts[i]..cuts[i + 1]].to_vec())
        .collect();
    let received = ctx.alltoallv(Scope::World, "comm.alltoallv", send);

    // (4) k-way merge of the received sorted runs.
    let merged = merge_runs(received, &key);
    charge_local_sort(
        ctx,
        category,
        (merged.len() * std::mem::size_of::<T>()) as u64,
        1,
    );
    merged
}

/// Merge already-sorted runs into one sorted vector (binary heap k-way).
fn merge_runs<T, K>(runs: Vec<Vec<T>>, key: &K) -> Vec<T>
where
    T: Copy,
    K: Fn(&T) -> u64,
{
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (key, run index, pos) — run index breaks ties deterministically.
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    for (r, run) in runs.iter().enumerate() {
        if !run.is_empty() {
            heap.push(Reverse((key(&run[0]), r, 0)));
        }
    }
    while let Some(Reverse((_, r, i))) = heap.pop() {
        out.push(runs[r][i]);
        if i + 1 < runs[r].len() {
            heap.push(Reverse((key(&runs[r][i + 1]), r, i + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::{MachineConfig, SplitMix64};
    use sunbfs_net::{Cluster, MeshShape};

    fn run_psrs(ranks: (usize, usize), per_rank: usize, seed: u64) -> (Vec<u64>, Vec<Vec<u64>>) {
        let cluster = Cluster::new(
            MeshShape::new(ranks.0, ranks.1),
            MachineConfig::new_sunway(),
        );
        let out = cluster.run(|ctx| {
            let mut rng = SplitMix64::new(seed ^ ctx.rank() as u64);
            let local: Vec<u64> = (0..per_rank).map(|_| rng.next_u64()).collect();
            let input = local.clone();
            let sorted = psrs_sort_by_key(ctx, "sort", local, |x| *x, 8);
            (input, sorted)
        });
        let mut all_input = Vec::new();
        let mut shards = Vec::new();
        for (inp, shard) in out {
            all_input.extend(inp);
            shards.push(shard);
        }
        (all_input, shards)
    }

    fn check_global_sort(all_input: &[u64], shards: &[Vec<u64>]) {
        // Each shard sorted; shard boundaries ordered; global multiset
        // preserved.
        for s in shards {
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "shard not sorted");
        }
        for w in shards.windows(2) {
            if let (Some(&a), Some(&b)) = (w[0].last(), w[1].first()) {
                assert!(a <= b, "shard boundary out of order: {a} > {b}");
            }
        }
        let mut expect = all_input.to_vec();
        expect.sort_unstable();
        let got: Vec<u64> = shards.iter().flatten().copied().collect();
        assert_eq!(expect, got, "global sort is not a permutation");
    }

    #[test]
    fn sorts_across_four_ranks() {
        let (input, shards) = run_psrs((2, 2), 5_000, 1);
        check_global_sort(&input, &shards);
    }

    #[test]
    fn sorts_on_non_square_mesh() {
        let (input, shards) = run_psrs((2, 3), 3_000, 2);
        check_global_sort(&input, &shards);
    }

    #[test]
    fn single_rank_degenerates_to_local_sort() {
        let (input, shards) = run_psrs((1, 1), 10_000, 3);
        check_global_sort(&input, &shards);
    }

    #[test]
    fn empty_input_survives() {
        let (input, shards) = run_psrs((2, 2), 0, 4);
        check_global_sort(&input, &shards);
        assert!(shards.iter().all(Vec::is_empty));
    }

    #[test]
    fn balance_is_reasonable() {
        // PSRS guarantees < 2n/P per rank for distinct keys; allow a
        // small slack for sampling granularity.
        let per_rank = 20_000;
        let (_, shards) = run_psrs((2, 2), per_rank, 5);
        for s in &shards {
            assert!(
                s.len() < 2 * per_rank + per_rank / 2,
                "rank holds {} of {} total — PSRS balance violated",
                s.len(),
                4 * per_rank
            );
        }
    }

    #[test]
    fn duplicate_heavy_input_sorts() {
        let cluster = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
        let out = cluster.run(|ctx| {
            let mut rng = SplitMix64::new(77 + ctx.rank() as u64);
            let local: Vec<u64> = (0..8000).map(|_| rng.next_below(4)).collect();
            let input = local.clone();
            (input, psrs_sort_by_key(ctx, "sort", local, |x| *x, 8))
        });
        let mut input = Vec::new();
        let mut shards = Vec::new();
        for (i, s) in out {
            input.extend(i);
            shards.push(s);
        }
        check_global_sort(&input, &shards);
    }

    #[test]
    fn merge_runs_merges() {
        let runs = vec![vec![1u64, 4, 9], vec![2, 3, 10], vec![], vec![0, 11]];
        let m = merge_runs(runs, &|x: &u64| *x);
        assert_eq!(m, vec![0, 1, 2, 3, 4, 9, 10, 11]);
    }
}
