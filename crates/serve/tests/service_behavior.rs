//! Service-mechanics tests: admission control and backpressure, batch
//! formation (full flush vs deadline flush), and fault containment —
//! a rank panic mid-batch degrades only that batch's riders, never the
//! resident session.

use sunbfs_net::{FaultEvent, FaultKind, FaultPlan};
use sunbfs_serve::{BfsService, QueryStatus, RejectReason, ServeConfig, SessionConfig};

fn service(scale: u32, ranks: usize, cfg: ServeConfig) -> BfsService {
    let session =
        sunbfs_serve::GraphSession::load(SessionConfig::small(scale, ranks), FaultPlan::none())
            .expect("clean load");
    BfsService::new(session, cfg)
}

#[test]
fn queue_full_rejects_and_recovers_after_a_flush() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            queue_capacity: 2,
            batch_max: 2,
            flush_deadline: 1,
            ..ServeConfig::default()
        },
    );
    svc.submit(1).expect("first admit");
    svc.submit(2).expect("second admit");
    let err = svc.submit(3).expect_err("third must hit backpressure");
    // Two pending >= batch_max 2: the next tick flushes, so the hint is 1.
    assert_eq!(
        err,
        RejectReason::QueueFull {
            capacity: 2,
            retry_after_ticks: 1
        }
    );
    assert_eq!(err.label(), "queue_full");
    assert_eq!(err.retry_after_ticks(), Some(1));

    // A tick flushes the full batch; the queue then admits again.
    let done = svc.tick();
    assert_eq!(done.len(), 2);
    assert!(done.iter().all(|r| matches!(r.status, QueryStatus::Served)));
    svc.submit(3).expect("queue drained, admission resumes");

    let report = svc.report();
    assert_eq!(report.rejected_full, 1);
    assert_eq!(report.submitted, 3);
    assert_eq!(report.max_queue_depth, 2);
    assert_eq!(report.current_queue_depth, 1);
}

#[test]
fn out_of_range_roots_are_rejected_without_touching_the_queue() {
    let mut svc = service(8, 4, ServeConfig::default());
    let n = svc.session().num_vertices();
    let err = svc.submit(n).expect_err("root == n is out of range");
    assert_eq!(
        err,
        RejectReason::InvalidRoot {
            root: n,
            num_vertices: n
        }
    );
    assert_eq!(err.label(), "invalid_root");
    assert_eq!(svc.queue_depth(), 0);
    assert_eq!(svc.report().rejected_invalid, 1);
}

#[test]
fn a_full_batch_flushes_on_the_next_tick() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            batch_max: 4,
            flush_deadline: 100,
            ..ServeConfig::default()
        },
    );
    for root in [1u64, 2, 3, 4] {
        svc.submit(root).expect("admit");
    }
    // batch_max reached: the flush must not wait for the deadline.
    let done = svc.tick();
    assert_eq!(done.len(), 4);
    let batch_ids: Vec<u64> = done.iter().filter_map(|r| r.batch_id).collect();
    assert!(batch_ids.iter().all(|&b| b == batch_ids[0]));
    let report = svc.report();
    // Occupancy 4 lands in the "4-7" bucket (index 2).
    assert_eq!(report.occupancy_histogram[2], 1);
    assert_eq!(report.batches.len(), 1);
    assert!(!report.batches[0].fallback);
}

#[test]
fn a_partial_batch_waits_for_the_flush_deadline() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            batch_max: 64,
            flush_deadline: 3,
            ..ServeConfig::default()
        },
    );
    svc.submit(1).expect("admit");
    svc.submit(2).expect("admit");
    assert!(svc.tick().is_empty(), "tick 1: deadline not reached");
    assert!(svc.tick().is_empty(), "tick 2: deadline not reached");
    let done = svc.tick();
    assert_eq!(done.len(), 2, "tick 3: deadline flushes the partial batch");
    // Occupancy 2 lands in the "2-3" bucket (index 1).
    assert_eq!(svc.report().occupancy_histogram[1], 1);
}

#[test]
fn drain_flushes_everything_without_waiting() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            batch_max: 3,
            flush_deadline: 100,
            ..ServeConfig::default()
        },
    );
    for root in 1u64..=7 {
        svc.submit(root).expect("admit");
    }
    let done = svc.drain();
    assert_eq!(done.len(), 7);
    let report = svc.report();
    assert_eq!(report.current_queue_depth, 0);
    // 7 riders over batch_max 3: batches of 3, 3, 1.
    assert_eq!(report.batches.len(), 3);
    assert_eq!(
        report
            .batches
            .iter()
            .map(|b| b.occupancy)
            .collect::<Vec<_>>(),
        vec![3, 3, 1]
    );
}

#[test]
fn flush_deadline_zero_flushes_on_every_tick() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            batch_max: 64,
            flush_deadline: 0,
            ..ServeConfig::default()
        },
    );
    svc.submit(1).expect("admit");
    // Deadline 0: even a single-query partial batch must not wait.
    let done = svc.tick();
    assert_eq!(done.len(), 1);
    assert!(matches!(done[0].status, QueryStatus::Served));
    assert_eq!(svc.queue_depth(), 0);
    // An empty tick stays empty and doesn't fabricate batches.
    assert!(svc.tick().is_empty());
    assert_eq!(svc.report().batches.len(), 1);
    // The backoff hint can never be 0 ticks even at deadline 0.
    for root in 0..svc.config().queue_capacity as u64 {
        svc.submit(root).expect("fill");
    }
    let err = svc.submit(9).expect_err("full");
    assert_eq!(err.retry_after_ticks(), Some(1));
}

#[test]
fn batch_max_one_degenerates_to_sequential_batches() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            batch_max: 1,
            flush_deadline: 100,
            ..ServeConfig::default()
        },
    );
    for root in [3u64, 4, 5] {
        svc.submit(root).expect("admit");
    }
    // Every pending query is its own full batch: one tick flushes all
    // three as three single-occupancy batches, in submission order.
    let done = svc.tick();
    assert_eq!(done.len(), 3);
    assert_eq!(
        done.iter().map(|r| r.root).collect::<Vec<_>>(),
        vec![3, 4, 5]
    );
    let batch_ids: Vec<u64> = done.iter().filter_map(|r| r.batch_id).collect();
    assert_eq!(batch_ids.len(), 3);
    assert!(batch_ids.windows(2).all(|w| w[0] != w[1]));
    let report = svc.report();
    assert_eq!(report.batches.len(), 3);
    assert!(report.batches.iter().all(|b| b.occupancy == 1));
    // Occupancy 1 lands in the "1" bucket (index 0).
    assert_eq!(report.occupancy_histogram[0], 3);
}

#[test]
fn submit_at_capacity_then_drain_preserves_reply_order() {
    let mut svc = service(
        8,
        4,
        ServeConfig {
            queue_capacity: 5,
            batch_max: 2,
            flush_deadline: 100,
            ..ServeConfig::default()
        },
    );
    let mut admitted = Vec::new();
    for root in 1u64..=5 {
        admitted.push((svc.submit(root).expect("admit"), root));
    }
    svc.submit(6).expect_err("at capacity");
    // Drain flushes batches of 2, 2, 1 — and the results come back in
    // exactly the submission order with their original ids intact.
    let done = svc.drain();
    assert_eq!(done.len(), 5);
    assert_eq!(
        done.iter().map(|r| (r.id, r.root)).collect::<Vec<_>>(),
        admitted
    );
    assert!(done.iter().all(|r| matches!(r.status, QueryStatus::Served)));
    // The queue is empty again: admission resumes and the drained
    // rejection didn't leak into the pending count.
    assert_eq!(svc.queue_depth(), 0);
    svc.submit(6).expect("admission resumes after drain");
    let report = svc.report();
    assert_eq!(report.rejected_full, 1);
    assert_eq!(
        report
            .batches
            .iter()
            .map(|b| b.occupancy)
            .collect::<Vec<_>>(),
        vec![2, 2, 1]
    );
}

#[test]
fn a_rank_panic_mid_batch_degrades_only_that_batch() {
    // Probe the collective schedule for an op_index that clears the
    // partition build (otherwise the load retry consumes the fault)
    // but fires inside the batched traversal. The probe order is
    // deterministic, so the test pins one concrete schedule position.
    let roots: Vec<u64> = (1..=8).collect();
    for op_index in 1..400u64 {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 2,
            op_index,
            kind: FaultKind::Panic,
        }]);
        let session =
            sunbfs_serve::GraphSession::load(SessionConfig::small(8, 4), plan).expect("load heals");
        if session.load_attempts > 1 {
            // The fault fired during the build; try a later op.
            continue;
        }
        let mut svc = BfsService::new(
            session,
            ServeConfig {
                batch_max: 8,
                max_root_retries: 2,
                ..ServeConfig::default()
            },
        );
        for &root in &roots {
            svc.submit(root).expect("admit");
        }
        let done = svc.drain();
        if svc.session().cluster().fault_log().is_empty() {
            // The batch finished under the op_index; try a later op.
            continue;
        }

        // The fault fired mid-batch: every rider is accounted for, and
        // the served ones came through the per-root fallback.
        assert_eq!(done.len(), roots.len());
        let report = svc.report();
        assert_eq!(report.fallback_batches, 1);
        assert!(report.batches[0].fallback);
        for r in &done {
            match &r.status {
                QueryStatus::Served => {
                    assert!(r.via_fallback, "batched path died; service must fall back");
                    assert!(r.parents.is_some());
                }
                QueryStatus::Quarantined(q) => {
                    panic!("fire-once fault must be absorbed by fallback, got {q:?}")
                }
                QueryStatus::DeadlineExceeded { .. } => {
                    panic!("no deadlines were set on these queries")
                }
            }
        }

        // The resident session survived: the next batch runs on the
        // batched path with no new faults and no fallback.
        for &root in &roots {
            svc.submit(root).expect("admit round 2");
        }
        let done2 = svc.drain();
        assert_eq!(done2.len(), roots.len());
        assert!(done2
            .iter()
            .all(|r| { matches!(r.status, QueryStatus::Served) && !r.via_fallback }));
        assert_eq!(
            svc.session().cluster().fault_log().len(),
            1,
            "no further faults fired"
        );
        assert_eq!(svc.report().fallback_batches, 1);
        return;
    }
    panic!("no probed op_index fired during a batch — schedule changed?");
}
