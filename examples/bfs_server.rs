//! `bfs_server` — the BFS query service speaking newline-delimited
//! JSON on stdin/stdout.
//!
//! One JSON object per input line; one (or more) JSON objects per
//! output line. The protocol (documented in `docs/SERVE.md`):
//!
//! ```text
//! {"cmd":"load","scale":10,"ranks":4}          build the resident graph
//! {"cmd":"query","root":5}                     submit one root, tick once
//! {"cmd":"batch","roots":[1,2,3]}              submit many, drain
//! {"cmd":"stats"}                              full ServeReport JSON
//! {"cmd":"drain"}                              flush everything pending
//! ```
//!
//! `load` knobs (all optional): `scale` (10), `ranks` (4),
//! `edge_factor` (16), `e_threshold` (256), `h_threshold` (64),
//! `seed` (42), `queue_capacity` (256), `batch_max` (64),
//! `flush_deadline` (4), `baseline` (false — measure the sequential
//! path per batch and report the speedup in `stats`).
//!
//! Every reply carries a `"reply"` discriminator; errors are
//! `{"reply":"error","detail":...}` and never kill the server. EOF on
//! stdin exits 0.
//!
//! ```text
//! printf '%s\n' '{"cmd":"load","scale":9,"ranks":4}' \
//!     '{"cmd":"batch","roots":[1,2,3]}' '{"cmd":"stats"}' \
//!     | cargo run --release --example bfs_server
//! ```

use std::io::BufRead;

use sunbfs::common::{JsonValue, MachineConfig, ToJson};
use sunbfs::core::EngineConfig;
use sunbfs::net::{FaultPlan, MeshShape};
use sunbfs::part::Thresholds;
use sunbfs::serve::{BfsService, QueryResult, QueryStatus, ServeConfig, SessionConfig};

fn main() {
    let stdin = std::io::stdin();
    let mut service: Option<BfsService> = None;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        for reply in handle_line(&mut service, &line) {
            println!("{}", reply.render());
        }
    }
}

/// Dispatch one input line to zero-or-more reply objects.
fn handle_line(service: &mut Option<BfsService>, line: &str) -> Vec<JsonValue> {
    let cmd = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => return vec![error(format!("bad JSON: {e}"))],
    };
    match cmd.get("cmd").and_then(|c| c.as_str()) {
        Some("load") => vec![handle_load(service, &cmd)],
        Some("query") => handle_query(service, &cmd),
        Some("batch") => handle_batch(service, &cmd),
        Some("stats") => vec![handle_stats(service)],
        Some("drain") => handle_drain(service),
        Some(other) => vec![error(format!("unknown cmd {other:?}"))],
        None => vec![error("missing \"cmd\" field".into())],
    }
}

fn error(detail: String) -> JsonValue {
    JsonValue::object()
        .field("reply", "error")
        .field("detail", detail)
        .build()
}

/// A numeric knob with a default.
fn knob(cmd: &JsonValue, key: &str, default: u64) -> u64 {
    cmd.get(key).and_then(|v| v.as_u64()).unwrap_or(default)
}

fn handle_load(service: &mut Option<BfsService>, cmd: &JsonValue) -> JsonValue {
    let scale = knob(cmd, "scale", 10) as u32;
    let ranks = knob(cmd, "ranks", 4) as usize;
    let session_cfg = SessionConfig {
        scale,
        edge_factor: knob(cmd, "edge_factor", 16) as u32,
        mesh: MeshShape::near_square(ranks),
        thresholds: Thresholds::new(
            knob(cmd, "e_threshold", 256) as u32,
            knob(cmd, "h_threshold", 64) as u32,
        ),
        engine: EngineConfig::default(),
        machine: MachineConfig::new_sunway(),
        seed: knob(cmd, "seed", 42),
        max_load_attempts: 3,
    };
    let serve_cfg = ServeConfig {
        queue_capacity: knob(cmd, "queue_capacity", 256) as usize,
        batch_max: knob(cmd, "batch_max", sunbfs::serve::MAX_BATCH as u64) as usize,
        flush_deadline: knob(cmd, "flush_deadline", 4) as u32,
        max_root_retries: 2,
        measure_baseline: cmd
            .get("baseline")
            .and_then(|v| v.as_bool())
            .unwrap_or(false),
    };
    // Fault injection (for drills) comes from SUNBFS_FAULT_PLAN, the
    // same env the benchmark driver honors.
    let plan = match FaultPlan::from_env() {
        Ok(p) => p.unwrap_or_else(FaultPlan::none),
        Err(e) => return error(format!("bad SUNBFS_FAULT_PLAN: {e}")),
    };
    match sunbfs::serve::GraphSession::load(session_cfg, plan) {
        Ok(session) => {
            let loaded = JsonValue::object()
                .field("reply", "loaded")
                .field("scale", u64::from(scale))
                .field("ranks", ranks as u64)
                .field("vertices", session.num_vertices())
                .field("build_sim_seconds", session.build_sim_seconds)
                .field("load_attempts", u64::from(session.load_attempts))
                .build();
            *service = Some(BfsService::new(session, serve_cfg));
            loaded
        }
        Err(e) => error(format!("load failed: {e}")),
    }
}

/// Render a completed query (histogram and parent handle length, not
/// the full parent array — trees at serving scale dwarf a reply line).
fn result_json(r: &QueryResult) -> JsonValue {
    let mut o = JsonValue::object()
        .field("reply", "result")
        .field("id", r.id.0)
        .field("root", r.root)
        .field("batch_id", r.batch_id)
        .field("status", r.status.label())
        .field("visited", r.visited)
        .field(
            "depth_histogram",
            JsonValue::Array(
                r.depth_histogram
                    .iter()
                    .map(|&c| JsonValue::from(c))
                    .collect(),
            ),
        )
        .field(
            "parents_len",
            r.parents.as_ref().map_or(0, |p| p.len()) as u64,
        )
        .field("sim_latency_s", r.sim_latency_s)
        .field("via_fallback", r.via_fallback);
    if let QueryStatus::Quarantined(q) = &r.status {
        o = o
            .field("quarantine", q.label)
            .field("detail", q.detail.clone());
    }
    o.build()
}

fn handle_query(service: &mut Option<BfsService>, cmd: &JsonValue) -> Vec<JsonValue> {
    let Some(svc) = service.as_mut() else {
        return vec![error(
            "no graph loaded (send {\"cmd\":\"load\"} first)".into(),
        )];
    };
    let Some(root) = cmd.get("root").and_then(|v| v.as_u64()) else {
        return vec![error("query needs a numeric \"root\"".into())];
    };
    let mut replies = Vec::new();
    match svc.submit(root) {
        Ok(id) => replies.push(
            JsonValue::object()
                .field("reply", "accepted")
                .field("id", id.0)
                .field("root", root)
                .field("queue_depth", svc.queue_depth() as u64)
                .build(),
        ),
        Err(reason) => {
            return vec![JsonValue::object()
                .field("reply", "rejected")
                .field("root", root)
                .field("reason", reason.label())
                .field("detail", reason.to_string())
                .build()]
        }
    }
    // One tick per submission: full batches flush immediately; partial
    // batches age toward the deadline.
    for r in svc.tick() {
        replies.push(result_json(&r));
    }
    replies
}

fn handle_batch(service: &mut Option<BfsService>, cmd: &JsonValue) -> Vec<JsonValue> {
    let Some(svc) = service.as_mut() else {
        return vec![error(
            "no graph loaded (send {\"cmd\":\"load\"} first)".into(),
        )];
    };
    let Some(roots) = cmd.get("roots").and_then(|v| v.as_array()) else {
        return vec![error("batch needs a \"roots\" array".into())];
    };
    let mut replies = Vec::new();
    for v in roots {
        let Some(root) = v.as_u64() else {
            replies.push(error(format!("non-numeric root {}", v.render())));
            continue;
        };
        match svc.submit(root) {
            Ok(id) => replies.push(
                JsonValue::object()
                    .field("reply", "accepted")
                    .field("id", id.0)
                    .field("root", root)
                    .field("queue_depth", svc.queue_depth() as u64)
                    .build(),
            ),
            Err(reason) => replies.push(
                JsonValue::object()
                    .field("reply", "rejected")
                    .field("root", root)
                    .field("reason", reason.label())
                    .field("detail", reason.to_string())
                    .build(),
            ),
        }
    }
    for r in svc.drain() {
        replies.push(result_json(&r));
    }
    replies
}

fn handle_stats(service: &mut Option<BfsService>) -> JsonValue {
    match service {
        Some(svc) => JsonValue::object()
            .field("reply", "stats")
            .field("serve", svc.report().to_json())
            .build(),
        None => error("no graph loaded (send {\"cmd\":\"load\"} first)".into()),
    }
}

fn handle_drain(service: &mut Option<BfsService>) -> Vec<JsonValue> {
    let Some(svc) = service.as_mut() else {
        return vec![error(
            "no graph loaded (send {\"cmd\":\"load\"} first)".into(),
        )];
    };
    let mut replies: Vec<JsonValue> = svc.drain().iter().map(result_json).collect();
    replies.push(
        JsonValue::object()
            .field("reply", "drained")
            .field("queue_depth", svc.queue_depth() as u64)
            .build(),
    );
    replies
}
