//! SPMD cluster runtime.
//!
//! [`Cluster::run`] executes one closure per simulated rank, each on its
//! own OS thread, exactly as an MPI program would run one process per
//! node. Ranks communicate **only** through the collectives on
//! [`RankCtx`]; all payload bytes really cross thread boundaries via a
//! rendezvous exchange, so the functional result of a run is a genuine
//! distributed computation, not a shared-memory shortcut.
//!
//! Every collective simultaneously:
//! 1. moves the data (two-barrier deposit/collect protocol),
//! 2. synchronizes the ranks' *simulated clocks* (entry skew is recorded
//!    as `comm.imbalance`, the paper's "imbalance/latency" component),
//! 3. charges the analytic network cost from the real byte volumes under
//!    the caller's category (`comm.alltoallv`, `comm.allgather`,
//!    `comm.reduce_scatter`, ... — the categories of Figure 11).
//!
//! The SPMD contract: all members of a scope must call the same
//! collectives in the same order. Mismatches are detected by per-op tag
//! checks and turn into a typed [`SpmdViolation`] unwind (plus barrier
//! poisoning) instead of a deadlock.
//!
//! Failure containment: [`Cluster::run_fallible`] executes a run and
//! returns one `Result<T, RankFailure>` per rank — injected faults
//! ([`crate::FaultPlan`]), SPMD violations, poisoned-barrier teardown,
//! and plain panics all come back as typed, diagnosable values. The
//! classic [`Cluster::run`] stays as a thin wrapper that re-raises an
//! aggregate panic naming *every* failing rank.

use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use sunbfs_common::{Bitmap, JsonValue, MachineConfig, SimTime, TimeAccumulator, ToJson};

use crate::barrier::{BarrierPoisoned, PoisonBarrier};
use crate::cost::{self, Scope};
use crate::fault::{corrupt_any_preserving, FaultKind, FaultPlan, FaultRecord, InjectedFault};
use crate::frame::{clone_any, fnv1a, frame_any, Frame};
use crate::topology::{MeshShape, Topology};

type Payload = Arc<dyn Any + Send + Sync>;

/// How many times a corrupted deposit is retransmitted before the
/// exchange gives up and escalates to a [`FailureKind::CorruptPayload`]
/// unwind. Three rounds absorb any transient corruption (and even
/// double faults on the same deposit); only a persistent fault — a
/// plan listing > MAX_RETRANSMITS duplicates of the same event — gets
/// through to escalation.
const MAX_RETRANSMITS: u32 = 3;

/// Lock a mutex, ignoring std poisoning: rank panics are contained by
/// `catch_unwind` + barrier poisoning, so a poisoned mutex here only
/// means some rank died — the teardown path must still proceed.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one rank leaves at the rendezvous point.
struct Deposit {
    /// Op-sequence tag; must agree across the scope.
    tag: u64,
    /// Payload size in bytes (for gather/reduce costing).
    bytes: u64,
    /// Per-destination byte volumes (for alltoallv costing).
    volumes: Option<Vec<u64>>,
    /// Length + checksum of the *pristine* payload, computed by the
    /// sender before the fault-injection hook ran (`None` on the
    /// fault-free fast path and for unframed payload types).
    frame: Option<Frame>,
    payload: Payload,
}

/// Shared state of one communicator scope (world, a row, or a column).
struct ScopeShared {
    /// Global ranks of the members, in scope position order.
    members: Vec<usize>,
    barrier: PoisonBarrier,
    slots: Vec<Mutex<Option<Deposit>>>,
    /// Entry clocks (f64 bits) deposited before the first barrier.
    clocks: Vec<AtomicU64>,
}

impl ScopeShared {
    fn new(members: Vec<usize>) -> Self {
        let n = members.len();
        ScopeShared {
            members,
            barrier: PoisonBarrier::new(n),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Clear all rendezvous state (only sound with no threads running).
    fn reset(&self) {
        self.barrier.reset();
        for s in &self.slots {
            *lock_ignore_poison(s) = None;
        }
        for c in &self.clocks {
            c.store(0, Ordering::Release);
        }
    }
}

struct ClusterShared {
    topo: Topology,
    machine: MachineConfig,
    world: ScopeShared,
    rows: Vec<ScopeShared>,
    cols: Vec<ScopeShared>,
    /// Deterministic fault-injection schedule (empty when unused).
    plan: FaultPlan,
    /// Every fault that actually fired, across all runs of this cluster.
    fault_log: Mutex<Vec<FaultRecord>>,
    /// Every corrupted deposit healed by retransmission, across all
    /// runs of this cluster.
    retransmit_log: Mutex<Vec<RetransmitRecord>>,
}

impl ClusterShared {
    fn poison_all(&self) {
        self.world.barrier.poison();
        for s in self.rows.iter().chain(self.cols.iter()) {
            s.barrier.poison();
        }
    }

    /// Heal barriers and clear rendezvous state between runs so a
    /// cluster that lost a rank can host a retry. Only sound when no
    /// rank threads are running — `run_fallible` joins all threads
    /// before returning, so its entry point is safe.
    fn reset_for_run(&self) {
        self.world.reset();
        for s in self.rows.iter().chain(self.cols.iter()) {
            s.reset();
        }
    }
}

/// Which SPMD contract rule a [`SpmdViolation`] caught.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmdViolationKind {
    /// A scope member reached the collect phase without a deposit in
    /// place — the member unwound or skipped the collective.
    MissingDeposit,
    /// A scope member is executing a different collective (op-sequence
    /// tag mismatch — the classic SPMD ordering bug).
    TagMismatch,
    /// A scope member deposited a payload of a different type.
    PayloadTypeMismatch,
    /// An allreduce member contributed a vector of a different length.
    LengthMismatch,
}

impl SpmdViolationKind {
    /// Stable label used in messages and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SpmdViolationKind::MissingDeposit => "missing_deposit",
            SpmdViolationKind::TagMismatch => "tag_mismatch",
            SpmdViolationKind::PayloadTypeMismatch => "payload_type_mismatch",
            SpmdViolationKind::LengthMismatch => "length_mismatch",
        }
    }
}

/// A typed SPMD-contract violation: which rank detected it, in which
/// collective, and which scope member is at fault. Raised as the unwind
/// payload (after poisoning every barrier) so `run_fallible` can hand
/// the driver a structured error instead of a stringly panic.
#[derive(Clone, Debug)]
pub struct SpmdViolation {
    /// Rank that *detected* the violation.
    pub rank: usize,
    /// Global rank of the offending scope member (the one whose deposit
    /// was missing/mismatched), when identifiable.
    pub offender: Option<usize>,
    /// Scope of the collective.
    pub scope: Scope,
    /// Op tag of the collective the detector was executing.
    pub op: String,
    /// Which contract rule was violated.
    pub kind: SpmdViolationKind,
}

impl std::fmt::Display for SpmdViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPMD violation ({}) detected by rank {} in op '{}' on {} scope",
            self.kind.label(),
            self.rank,
            self.op,
            scope_label(self.scope),
        )?;
        if let Some(o) = self.offender {
            write!(f, " (offending rank {o})")?;
        }
        Ok(())
    }
}

/// Why one rank failed, classified from its unwind payload.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// A planned [`FaultKind::Panic`] fired on this rank.
    Injected {
        /// Collective call index the fault fired at.
        op_index: u64,
        /// Op tag of the collective it fired in.
        op: String,
    },
    /// The rank detected an SPMD contract violation.
    Violation(SpmdViolation),
    /// Collateral teardown: another rank failed first and poisoned the
    /// barriers this rank was waiting on.
    BarrierPoisoned,
    /// A deposit kept failing checksum verification after the full
    /// retransmit budget — a persistent corruption the exchange layer
    /// detected but could not heal.
    CorruptPayload {
        /// Rank whose deposit stayed corrupt.
        from: usize,
        /// Scope of the collective.
        scope: Scope,
        /// Op tag of the collective.
        op: String,
        /// Collective call index on the failing rank.
        op_index: u64,
        /// Retransmit attempts burned before escalating.
        attempts: u32,
    },
    /// An ordinary panic escaped the rank closure.
    Panic {
        /// The stringified panic payload.
        message: String,
    },
}

/// The typed unwind payload raised when a corrupted deposit survives
/// the retransmit budget: every scope member sees the identical slot
/// state, so all of them unwind with the same escalation (and the
/// same blamed sender).
#[derive(Clone, Debug)]
struct CorruptPayloadEscalation {
    from: usize,
    scope: Scope,
    op: String,
    op_index: u64,
    attempts: u32,
}

/// One healed retransmission of a corrupted deposit: the exchange
/// layer detected a frame mismatch on `from`'s deposit for
/// `(scope, op, op_index)` and re-deposited a pristine copy on
/// retransmit round `attempt` (1-based).
#[derive(Clone, Debug)]
pub struct RetransmitRecord {
    /// Rank whose deposit was corrupt and got retransmitted.
    pub from: usize,
    /// Scope of the collective.
    pub scope: Scope,
    /// Op tag of the collective.
    pub op: String,
    /// Collective call index on `from`.
    pub op_index: u64,
    /// 1-based retransmit round this redeposit happened in.
    pub attempt: u32,
}

impl ToJson for RetransmitRecord {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("from", self.from)
            .field("scope", scope_label(self.scope))
            .field("op", self.op.as_str())
            .field("op_index", self.op_index)
            .field("attempt", self.attempt)
            .build()
    }
}

/// One rank's failure, as returned by [`Cluster::run_fallible`].
#[derive(Clone, Debug)]
pub struct RankFailure {
    /// The failing rank.
    pub rank: usize,
    /// Why it failed.
    pub kind: FailureKind,
}

impl RankFailure {
    fn from_panic(rank: usize, payload: Box<dyn Any + Send>) -> Self {
        let kind = if let Some(inj) = payload.downcast_ref::<InjectedFault>() {
            FailureKind::Injected {
                op_index: inj.op_index,
                op: inj.op.clone(),
            }
        } else if let Some(v) = payload.downcast_ref::<SpmdViolation>() {
            FailureKind::Violation(v.clone())
        } else if payload.downcast_ref::<BarrierPoisoned>().is_some() {
            FailureKind::BarrierPoisoned
        } else if let Some(c) = payload.downcast_ref::<CorruptPayloadEscalation>() {
            FailureKind::CorruptPayload {
                from: c.from,
                scope: c.scope,
                op: c.op.clone(),
                op_index: c.op_index,
                attempts: c.attempts,
            }
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            FailureKind::Panic {
                message: (*s).to_string(),
            }
        } else if let Some(s) = payload.downcast_ref::<String>() {
            FailureKind::Panic { message: s.clone() }
        } else {
            FailureKind::Panic {
                message: "opaque panic payload".to_string(),
            }
        };
        RankFailure { rank, kind }
    }

    /// True when this failure is a root cause rather than collateral
    /// teardown of a failure elsewhere.
    pub fn is_root_cause(&self) -> bool {
        !matches!(self.kind, FailureKind::BarrierPoisoned)
    }
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Injected { op_index, op } => {
                write!(
                    f,
                    "rank {}: injected panic at collective {op_index} ('{op}')",
                    self.rank
                )
            }
            FailureKind::Violation(v) => write!(f, "rank {}: {v}", self.rank),
            FailureKind::BarrierPoisoned => {
                write!(f, "rank {}: barrier poisoned (collateral)", self.rank)
            }
            FailureKind::CorruptPayload {
                from,
                scope,
                op,
                op_index,
                attempts,
            } => {
                write!(
                    f,
                    "rank {}: persistent payload corruption from rank {from} at collective \
                     {op_index} ('{op}', {} scope) after {attempts} retransmits",
                    self.rank,
                    scope_label(*scope),
                )
            }
            FailureKind::Panic { message } => write!(f, "rank {}: panic: {message}", self.rank),
        }
    }
}

/// A simulated cluster: an `R × C` mesh of ranks plus machine constants.
pub struct Cluster {
    shared: Arc<ClusterShared>,
}

impl Cluster {
    /// Build a cluster over `shape` with the given machine constants.
    pub fn new(shape: MeshShape, machine: MachineConfig) -> Self {
        Cluster::with_faults(shape, machine, FaultPlan::none())
    }

    /// Build a cluster that injects `plan` deterministically (each
    /// planned event fires at most once over the cluster's lifetime —
    /// the transient-fault model that makes retries meaningful).
    pub fn with_faults(shape: MeshShape, machine: MachineConfig, plan: FaultPlan) -> Self {
        let topo = Topology::new(shape);
        let n = topo.num_ranks();
        let world = ScopeShared::new((0..n).collect());
        let rows = (0..shape.rows)
            .map(|r| ScopeShared::new((0..shape.cols).map(|c| topo.rank_at(r, c)).collect()))
            .collect();
        let cols = (0..shape.cols)
            .map(|c| ScopeShared::new((0..shape.rows).map(|r| topo.rank_at(r, c)).collect()))
            .collect();
        Cluster {
            shared: Arc::new(ClusterShared {
                topo,
                machine,
                world,
                rows,
                cols,
                plan,
                fault_log: Mutex::new(Vec::new()),
                retransmit_log: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The mesh topology.
    pub fn topology(&self) -> Topology {
        self.shared.topo
    }

    /// Machine constants in force.
    pub fn machine(&self) -> MachineConfig {
        self.shared.machine
    }

    /// The fault plan this cluster injects (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.shared.plan
    }

    /// Every fault that fired so far, sorted by `(rank, op_index)` so
    /// the log is deterministic regardless of thread interleaving.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        let mut log = lock_ignore_poison(&self.shared.fault_log).clone();
        log.sort_by_key(|r| (r.rank, r.op_index));
        log
    }

    /// Every corrupted deposit healed by retransmission so far, sorted
    /// by `(op_index, from, attempt)` so the log is deterministic
    /// regardless of thread interleaving.
    pub fn retransmit_log(&self) -> Vec<RetransmitRecord> {
        let mut log = lock_ignore_poison(&self.shared.retransmit_log).clone();
        log.sort_by_key(|r| (r.op_index, r.from, r.attempt));
        log
    }

    /// Run `f` once per rank (one OS thread each) and return one
    /// `Result` per rank, in rank order: `Ok` with the closure's value
    /// for ranks that completed, `Err` with a typed [`RankFailure`] for
    /// ranks that unwound (injected faults, SPMD violations, poisoned
    /// barriers, plain panics).
    ///
    /// The cluster is healed on entry (barriers unpoisoned, rendezvous
    /// slots cleared), so a failed run can be retried on the same
    /// cluster — consumed fault-plan events will not re-fire.
    pub fn run_fallible<T, F>(&self, f: F) -> Vec<Result<T, RankFailure>>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        self.shared.reset_for_run();
        let n = self.shared.topo.num_ranks();
        let results: Mutex<Vec<Option<Result<T, RankFailure>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for rank in 0..n {
                let shared = Arc::clone(&self.shared);
                let f = &f;
                let results = &results;
                s.spawn(move || {
                    let mut ctx = RankCtx::new(rank, shared);
                    let outcome = match catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
                        Ok(v) => Ok(v),
                        Err(p) => {
                            ctx.shared.poison_all();
                            Err(RankFailure::from_panic(rank, p))
                        }
                    };
                    lock_ignore_poison(results)[rank] = Some(outcome);
                });
            }
        });
        results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|v| v.expect("rank produced no result"))
            .collect()
    }

    /// Run `f` once per rank (one OS thread each) and return the per-rank
    /// results in rank order.
    ///
    /// # Panics
    /// If any rank fails, panics after the whole cluster has been torn
    /// down (barriers poisoned, threads joined) with a message
    /// aggregating **every** failing rank — root causes first — rather
    /// than only the lowest-ranked one.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        let results = self.run_fallible(f);
        let mut failures: Vec<&RankFailure> =
            results.iter().filter_map(|r| r.as_ref().err()).collect();
        if !failures.is_empty() {
            failures.sort_by_key(|f| (!f.is_root_cause(), f.rank));
            let lines: Vec<String> = failures.iter().map(|f| format!("  {f}")).collect();
            panic!(
                "{} of {} ranks failed:\n{}",
                failures.len(),
                results.len(),
                lines.join("\n")
            );
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|f| unreachable!("failures already handled: {f}")))
            .collect()
    }
}

/// Invocation count and payload bytes of one `(scope, op)` collective
/// category on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommOpStats {
    /// Number of collective calls.
    pub count: u64,
    /// Bytes this rank contributed across those calls.
    pub bytes: u64,
}

/// Per-scope collective call counts and byte volumes on one rank.
///
/// Keys are `"<scope>/<op>"` (`"row/hubsync.EH2EH"`,
/// `"world/comm.alltoallv.L2L"`, ...), so the same op tag stays
/// distinguishable between its row and column hops — the traffic split
/// that decides what rides the supernode network versus the
/// oversubscribed tree.
///
/// Equality compares the full per-key state — the merge/diff round-trip
/// property (`(a ⊎ b) − b = a`) the serve layer's per-query comm
/// attribution relies on is tested against it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    ops: BTreeMap<String, CommOpStats>,
}

impl CommStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one collective call of `op` on `scope` with `bytes` sent.
    pub fn record(&mut self, scope: Scope, op: &str, bytes: u64) {
        let key = format!("{}/{op}", scope_label(scope));
        let e = self.ops.entry(key).or_default();
        e.count += 1;
        e.bytes += bytes;
    }

    /// Stats for one `(scope, op)` pair (zero when absent).
    pub fn get(&self, scope: Scope, op: &str) -> CommOpStats {
        self.ops
            .get(&format!("{}/{op}", scope_label(scope)))
            .copied()
            .unwrap_or_default()
    }

    /// All `(key, stats)` pairs in lexicographic key order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, CommOpStats)> {
        self.ops.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Total calls and bytes for keys starting with `prefix`.
    pub fn total_with_prefix(&self, prefix: &str) -> CommOpStats {
        let mut total = CommOpStats::default();
        for (k, v) in &self.ops {
            if k.starts_with(prefix) {
                total.count += v.count;
                total.bytes += v.bytes;
            }
        }
        total
    }

    /// Merge another rank's stats into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for (k, v) in &other.ops {
            let e = self.ops.entry(k.clone()).or_default();
            e.count += v.count;
            e.bytes += v.bytes;
        }
    }

    /// Per-key difference `self - earlier` (used to isolate one phase
    /// from a running recorder, mirroring [`TimeAccumulator::diff`]).
    pub fn diff(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats::new();
        for (k, v) in &self.ops {
            let base = earlier.ops.get(k).copied().unwrap_or_default();
            let d = CommOpStats {
                count: v.count - base.count,
                bytes: v.bytes - base.bytes,
            };
            if d != CommOpStats::default() {
                out.ops.insert(k.clone(), d);
            }
        }
        out
    }
}

impl ToJson for CommStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries()
                .map(|(k, v)| {
                    let o = JsonValue::object()
                        .field("count", v.count)
                        .field("bytes", v.bytes);
                    (k.to_string(), o.build())
                })
                .collect(),
        )
    }
}

pub(crate) fn scope_label(scope: Scope) -> &'static str {
    match scope {
        Scope::World => "world",
        Scope::Row => "row",
        Scope::Col => "col",
    }
}

/// Per-rank execution context: identity, simulated clock, time
/// accounting, and the collective operations.
pub struct RankCtx {
    rank: usize,
    shared: Arc<ClusterShared>,
    clock: SimTime,
    acc: TimeAccumulator,
    comm: CommStats,
    /// Per-scope-kind op sequence numbers (world/row/col).
    seqs: [u64; 3],
    /// Global collective call counter (all scopes, program order) —
    /// the index space fault-plan events address.
    op_index: u64,
    /// Simulated time spent retransmitting corrupted deposits during
    /// the collective in flight, consumed by the next settle so the
    /// heal cost lands *after* entry-skew alignment instead of being
    /// rewound by it.
    pending_retransmit: SimTime,
}

impl RankCtx {
    fn new(rank: usize, shared: Arc<ClusterShared>) -> Self {
        RankCtx {
            rank,
            shared,
            clock: SimTime::ZERO,
            acc: TimeAccumulator::new(),
            comm: CommStats::new(),
            seqs: [0; 3],
            op_index: 0,
            pending_retransmit: SimTime::ZERO,
        }
    }

    /// Number of collective calls this rank has issued so far — the
    /// `op_index` space fault-plan events address. Lock-step SPMD code
    /// observes the identical value on every rank, which lets tests
    /// and checkpoints pin a position in the collective schedule.
    #[inline]
    pub fn collective_calls(&self) -> u64 {
        self.op_index
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.shared.topo.num_ranks()
    }

    /// Mesh topology.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.shared.topo
    }

    /// This rank's mesh row.
    #[inline]
    pub fn row(&self) -> usize {
        self.shared.topo.row_of(self.rank)
    }

    /// This rank's mesh column.
    #[inline]
    pub fn col(&self) -> usize {
        self.shared.topo.col_of(self.rank)
    }

    /// Machine constants.
    #[inline]
    pub fn machine(&self) -> &MachineConfig {
        &self.shared.machine
    }

    /// Current simulated time on this rank.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advance this rank's simulated clock by `t`, attributed to
    /// `category` (local compute, chip kernels, ...).
    pub fn charge(&mut self, category: &str, t: SimTime) {
        self.clock += t;
        self.acc.add(category, t);
    }

    /// Read-only view of this rank's time accounting.
    pub fn accumulator(&self) -> &TimeAccumulator {
        &self.acc
    }

    /// Take the accumulated times (for returning from the rank closure).
    pub fn take_accumulator(&mut self) -> TimeAccumulator {
        std::mem::take(&mut self.acc)
    }

    /// Read-only view of this rank's per-scope collective counters.
    pub fn comm_stats(&self) -> &CommStats {
        &self.comm
    }

    /// Take the collective counters (for returning from the rank closure).
    pub fn take_comm_stats(&mut self) -> CommStats {
        std::mem::take(&mut self.comm)
    }

    fn scope_shared(&self, scope: Scope) -> (&ScopeShared, usize, usize) {
        // (shared, my position, seq index)
        match scope {
            Scope::World => (&self.shared.world, self.rank, 0),
            Scope::Row => (&self.shared.rows[self.row()], self.col(), 1),
            Scope::Col => (&self.shared.cols[self.col()], self.row(), 2),
        }
    }

    /// Number of ranks in `scope`.
    pub fn scope_size(&self, scope: Scope) -> usize {
        self.scope_shared(scope).0.members.len()
    }

    /// Core rendezvous: deposit `payload`, wait for all scope members,
    /// collect everyone's payloads (as shared `Arc`s) and metadata.
    ///
    /// Returns `(payloads, bytes, volumes, entry-clock max)` in scope
    /// position order.
    /// Poison every barrier and unwind with a typed [`SpmdViolation`]
    /// so the violation surfaces as a structured [`RankFailure`]
    /// instead of a bare panic (and never a deadlock).
    fn violate(
        &self,
        scope: Scope,
        op: &str,
        offender: Option<usize>,
        kind: SpmdViolationKind,
    ) -> ! {
        self.shared.poison_all();
        std::panic::panic_any(SpmdViolation {
            rank: self.rank,
            offender,
            scope,
            op: op.to_string(),
            kind,
        });
    }

    /// Consult the fault plan for this collective call; mutates the
    /// payload in place (corruption), delays the simulated clock
    /// (straggler), or unwinds (injected panic). Every firing is
    /// recorded in the cluster's fault log with this rank's simulated
    /// timestamp. When a corruption was applied, returns the pristine
    /// pre-corruption payload so the exchange can retransmit it after
    /// the checksum catches the damage.
    fn inject_fault(
        &mut self,
        scope: Scope,
        op: &str,
        op_index: u64,
        payload: &mut (dyn Any + Send + Sync),
    ) -> Option<Payload> {
        let kind = self.shared.plan.fire(self.rank, op_index)?;
        let mut applied = true;
        let mut pristine: Option<Payload> = None;
        match kind {
            FaultKind::Straggler { secs } => {
                // Simulated delay: every peer of this collective will
                // record the skew as `comm.imbalance`, exactly like a
                // slow node. Real delay (capped so test suites stay
                // fast): skews the actual thread interleaving too.
                self.clock += SimTime::secs(secs);
                self.acc.add("fault.straggler", SimTime::secs(secs));
                std::thread::sleep(std::time::Duration::from_secs_f64(secs.min(0.005)));
            }
            FaultKind::Corrupt { mode } => {
                let (did, kept) = corrupt_any_preserving(payload, mode);
                applied = did;
                pristine = kept.map(|b| -> Payload { Arc::from(b) });
            }
            FaultKind::Panic => {}
        }
        lock_ignore_poison(&self.shared.fault_log).push(FaultRecord {
            rank: self.rank,
            op_index,
            scope,
            op: op.to_string(),
            kind,
            sim_seconds: self.clock.as_secs(),
            applied,
        });
        if matches!(kind, FaultKind::Panic) {
            self.shared.poison_all();
            std::panic::panic_any(InjectedFault {
                rank: self.rank,
                op_index,
                op: op.to_string(),
            });
        }
        pristine
    }

    #[allow(clippy::type_complexity)]
    fn exchange<T: Send + Sync + 'static>(
        &mut self,
        scope: Scope,
        op: &str,
        payload: T,
        bytes: u64,
        volumes: Option<Vec<u64>>,
    ) -> (Vec<Arc<T>>, Vec<u64>, Vec<Vec<u64>>, SimTime) {
        let (pos, seq_idx) = match scope {
            Scope::World => (self.rank, 0),
            Scope::Row => (self.col(), 1),
            Scope::Col => (self.row(), 2),
        };
        let seq = self.seqs[seq_idx];
        self.seqs[seq_idx] += 1;
        let op_index = self.op_index;
        self.op_index += 1;
        let mut payload = payload;
        // Framing (and the pristine-copy bookkeeping for retransmits)
        // is only paid when a fault plan is live: the fault-free fast
        // path deposits unframed and skips verification entirely.
        let framing = !self.shared.plan.is_empty();
        let frame = if framing { frame_any(&payload) } else { None };
        let pristine = if framing {
            self.inject_fault(scope, op, op_index, &mut payload)
        } else {
            None
        };
        let retrans_volumes = if framing { volumes.clone() } else { None };
        self.comm.record(scope, op, bytes);
        let tag = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ fnv1a(op.as_bytes());
        let shared = Arc::clone(&self.shared);
        let ss = match scope {
            Scope::World => &shared.world,
            Scope::Row => &shared.rows[self.row()],
            Scope::Col => &shared.cols[self.col()],
        };
        let n = ss.members.len();
        debug_assert_eq!(ss.members[pos], self.rank);

        ss.clocks[pos].store(self.clock.as_secs().to_bits(), Ordering::Release);
        *lock_ignore_poison(&ss.slots[pos]) = Some(Deposit {
            tag,
            bytes,
            volumes,
            frame,
            payload: Arc::new(payload),
        });
        ss.barrier.wait();

        if framing {
            self.heal_corrupt_deposits(
                ss,
                scope,
                op,
                op_index,
                pos,
                tag,
                bytes,
                frame,
                &retrans_volumes,
                &pristine,
            );
        }

        let mut payloads = Vec::with_capacity(n);
        let mut all_bytes = Vec::with_capacity(n);
        let mut all_volumes = Vec::with_capacity(n);
        let mut max_entry = SimTime::ZERO;
        for p in 0..n {
            let member = ss.members[p];
            let slot = lock_ignore_poison(&ss.slots[p]);
            let Some(dep) = slot.as_ref() else {
                drop(slot);
                self.violate(scope, op, Some(member), SpmdViolationKind::MissingDeposit);
            };
            if dep.tag != tag {
                drop(slot);
                self.violate(scope, op, Some(member), SpmdViolationKind::TagMismatch);
            }
            let Ok(typed) =
                Arc::downcast::<T>(Arc::clone(&dep.payload) as Arc<dyn Any + Send + Sync>)
            else {
                drop(slot);
                self.violate(
                    scope,
                    op,
                    Some(member),
                    SpmdViolationKind::PayloadTypeMismatch,
                );
            };
            payloads.push(typed);
            all_bytes.push(dep.bytes);
            all_volumes.push(dep.volumes.clone().unwrap_or_default());
            let entry = SimTime::secs(f64::from_bits(ss.clocks[p].load(Ordering::Acquire)));
            max_entry = max_entry.max(entry);
        }
        // Second barrier: nobody may start the next collective (and
        // overwrite slots) until everyone has collected.
        ss.barrier.wait();
        (payloads, all_bytes, all_volumes, max_entry)
    }

    /// Self-healing pass between the deposit and collect barriers:
    /// verify every deposit's frame against its landed payload and
    /// retransmit corrupted ones in place, up to [`MAX_RETRANSMITS`]
    /// rounds. Each round is two-phase — verify, barrier, re-deposit,
    /// barrier — so every member derives the corrupt set from the same
    /// stable snapshot and runs the identical control flow (same
    /// corrupt set, same round count); every member also charges the
    /// identical allgather-shaped heal cost, keeping the simulated
    /// clocks in lock-step. Exhausting the budget poisons the cluster
    /// and unwinds all members with a typed escalation blaming the
    /// corrupt sender.
    #[allow(clippy::too_many_arguments)]
    fn heal_corrupt_deposits(
        &mut self,
        ss: &ScopeShared,
        scope: Scope,
        op: &str,
        op_index: u64,
        pos: usize,
        tag: u64,
        bytes: u64,
        frame: Option<Frame>,
        volumes: &Option<Vec<u64>>,
        pristine: &Option<Payload>,
    ) {
        let n = ss.members.len();
        let corrupt_positions = || -> Vec<usize> {
            (0..n)
                .filter(|&p| {
                    let slot = lock_ignore_poison(&ss.slots[p]);
                    slot.as_ref().is_some_and(|dep| match dep.frame {
                        Some(f) => frame_any(dep.payload.as_ref()) != Some(f),
                        // Unframed deposits (e.g. barriers) are
                        // unverifiable — and uncorruptible.
                        None => false,
                    })
                })
                .collect()
        };
        let mut attempt = 0u32;
        loop {
            let corrupt = corrupt_positions();
            // Verification barrier: every member must derive the
            // corrupt set from the same stable snapshot of the slots
            // before any re-depositor overwrites one — otherwise a
            // slow verifier can observe an already-healed slot, skip
            // the heal round, and unbalance the barrier protocol.
            ss.barrier.wait();
            if corrupt.is_empty() {
                return;
            }
            if attempt >= MAX_RETRANSMITS {
                // Replicated decision: every member reads the same
                // slots, so all unwind together blaming the same rank.
                let from = ss.members[corrupt[0]];
                self.shared.poison_all();
                std::panic::panic_any(CorruptPayloadEscalation {
                    from,
                    scope,
                    op: op.to_string(),
                    op_index,
                    attempts: attempt,
                });
            }
            attempt += 1;
            // Every member charges the same heal cost — the corrupted
            // deposits are re-gathered across the scope — stashed for
            // the next settle (which would otherwise rewind a direct
            // clock bump during entry-skew alignment).
            let mut heal_volumes = vec![0u64; n];
            for &p in &corrupt {
                heal_volumes[p] = lock_ignore_poison(&ss.slots[p])
                    .as_ref()
                    .map_or(0, |d| d.bytes);
            }
            self.pending_retransmit +=
                cost::allgatherv_cost(&self.shared.machine, scope, &heal_volumes);
            if corrupt.contains(&pos) {
                let pristine = pristine
                    .as_ref()
                    .expect("a corrupted deposit always has a pristine copy");
                let mut fresh =
                    clone_any(pristine.as_ref()).expect("framed payload types are clonable");
                // Re-run injection on the fresh copy: a duplicate plan
                // event at the same (rank, op_index) re-corrupts the
                // retransmission too — the persistent-fault model that
                // can exhaust the budget.
                let _ = self.inject_fault(scope, op, op_index, fresh.as_mut());
                lock_ignore_poison(&self.shared.retransmit_log).push(RetransmitRecord {
                    from: self.rank,
                    scope,
                    op: op.to_string(),
                    op_index,
                    attempt,
                });
                *lock_ignore_poison(&ss.slots[pos]) = Some(Deposit {
                    tag,
                    bytes,
                    volumes: volumes.clone(),
                    frame,
                    payload: Arc::from(fresh),
                });
            }
            // Re-deposit barrier: re-depositors must finish before
            // anyone re-verifies in the next round.
            ss.barrier.wait();
        }
    }

    /// Record the skew between this rank's entry clock and the scope's
    /// latest entry, then advance to `max_entry + cost` charged under
    /// `category` (plus any pending retransmit heal time under
    /// `comm.retransmit`).
    fn settle(&mut self, category: &str, max_entry: SimTime, cost: SimTime) {
        let heal = std::mem::replace(&mut self.pending_retransmit, SimTime::ZERO);
        let skew = max_entry - self.clock;
        if skew.as_secs() > 0.0 {
            self.acc.add("comm.imbalance", skew);
        }
        if heal.as_secs() > 0.0 {
            self.acc.add("comm.retransmit", heal);
        }
        self.acc.add(category, cost);
        self.clock = max_entry + heal + cost;
    }

    /// Barrier over `scope`: synchronizes clocks, charges only skew.
    pub fn barrier(&mut self, scope: Scope) {
        let (_, _, _, max_entry) = self.exchange(scope, "barrier", (), 0, None);
        self.settle("comm.barrier", max_entry, SimTime::ZERO);
    }

    /// Irregular all-to-all: `send[p]` goes to scope member `p`; returns
    /// what every member sent to this rank, in member order.
    pub fn alltoallv<T: Clone + Send + Sync + 'static>(
        &mut self,
        scope: Scope,
        category: &str,
        send: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let n = self.scope_size(scope);
        assert_eq!(
            send.len(),
            n,
            "alltoallv send buffer count must equal scope size"
        );
        let item = std::mem::size_of::<T>() as u64;
        let volumes: Vec<u64> = send.iter().map(|v| v.len() as u64 * item).collect();
        let bytes: u64 = volumes.iter().sum();
        let my_pos = self.scope_pos(scope);
        let (payloads, _, all_volumes, max_entry) =
            self.exchange(scope, category, send, bytes, Some(volumes));
        let members = self.scope_members(scope);
        let cost = cost::alltoallv_cost(
            &self.shared.machine,
            &self.shared.topo,
            &members,
            &all_volumes,
        );
        self.settle(category, max_entry, cost);
        payloads.iter().map(|p| p[my_pos].clone()).collect()
    }

    /// All-gather: every member contributes a vector; returns all
    /// vectors in member order.
    pub fn allgatherv<T: Clone + Send + Sync + 'static>(
        &mut self,
        scope: Scope,
        category: &str,
        send: Vec<T>,
    ) -> Vec<Vec<T>> {
        let bytes = (send.len() * std::mem::size_of::<T>()) as u64;
        let (payloads, all_bytes, _, max_entry) = self.exchange(scope, category, send, bytes, None);
        let cost = cost::allgatherv_cost(&self.shared.machine, scope, &all_bytes);
        self.settle(category, max_entry, cost);
        payloads.iter().map(|p| p.as_ref().clone()).collect()
    }

    /// Element-wise all-reduce with a custom combiner. All members must
    /// pass equal-length vectors; the result (identical on every rank)
    /// is the position-ordered fold.
    ///
    /// The cost is charged as a ring all-reduce, split into its
    /// reduce-scatter and allgather halves under
    /// `"comm.reduce_scatter"` / `"comm.allgather"` so the Figure 11
    /// breakdown falls out naturally; `charged_bytes` overrides the
    /// payload size when the caller models a sparser exchange.
    pub fn allreduce_with<T, F>(
        &mut self,
        scope: Scope,
        op: &str,
        mine: Vec<T>,
        charged_bytes: Option<u64>,
        combine: F,
    ) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&mut T, &T),
    {
        self.allreduce_with_indexed(scope, op, mine, charged_bytes, |_, a, b| combine(a, b))
    }

    /// [`Self::allreduce_with`] with a position-aware combiner, so one
    /// collective can mix reductions (e.g. OR over bitmap words plus a
    /// summed trailing counter — the piggybacking real BFS codes use to
    /// avoid extra latency-bound scalar collectives).
    pub fn allreduce_with_indexed<T, F>(
        &mut self,
        scope: Scope,
        op: &str,
        mine: Vec<T>,
        charged_bytes: Option<u64>,
        combine: F,
    ) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(usize, &mut T, &T),
    {
        let n = self.scope_size(scope);
        let bytes = charged_bytes.unwrap_or((mine.len() * std::mem::size_of::<T>()) as u64);
        let len = mine.len();
        let (payloads, _, _, max_entry) = self.exchange(scope, op, mine, bytes, None);
        let members = self.scope_members(scope);
        // The deposited payloads may differ in length from this rank's
        // contribution — an SPMD bug or an injected truncation. Check
        // every member (including position 0 and ourselves, whose
        // deposit may have been corrupted in transit).
        for (p, payload) in payloads.iter().enumerate() {
            if payload.len() != len {
                self.violate(
                    scope,
                    op,
                    Some(members[p]),
                    SpmdViolationKind::LengthMismatch,
                );
            }
        }
        let mut result: Vec<T> = payloads[0].as_ref().clone();
        for p in &payloads[1..] {
            let other: &[T] = p.as_ref();
            for (i, (a, b)) in result.iter_mut().zip(other).enumerate() {
                combine(i, a, b);
            }
        }
        let half = cost::allreduce_half_cost(&self.shared.machine, scope, n, bytes);
        let heal = std::mem::replace(&mut self.pending_retransmit, SimTime::ZERO);
        let skew = max_entry - self.clock;
        if skew.as_secs() > 0.0 {
            self.acc.add("comm.imbalance", skew);
        }
        if heal.as_secs() > 0.0 {
            self.acc.add("comm.retransmit", heal);
        }
        // Keep the op name as a suffix so callers can group the same
        // totals per comm type (Figure 11) *and* per algorithm phase
        // (Figure 10).
        self.acc.add(&format!("comm.reduce_scatter.{op}"), half);
        self.acc.add(&format!("comm.allgather.{op}"), half);
        self.clock = max_entry + heal + half + half;
        result
    }

    /// OR-combine a bitmap across the scope in place.
    pub fn allreduce_or_bitmap(&mut self, scope: Scope, op: &str, bm: &mut Bitmap) {
        let words = bm.words().to_vec();
        let reduced = self.allreduce_with(scope, op, words, None, |a, b| *a |= b);
        bm.words_mut().copy_from_slice(&reduced);
    }

    /// Sum a scalar across the scope.
    pub fn allreduce_sum(&mut self, scope: Scope, op: &str, x: u64) -> u64 {
        self.allreduce_with(scope, op, vec![x], None, |a, b| *a += b)[0]
    }

    /// Max of a scalar across the scope.
    pub fn allreduce_max(&mut self, scope: Scope, op: &str, x: u64) -> u64 {
        self.allreduce_with(scope, op, vec![x], None, |a, b| *a = (*a).max(*b))[0]
    }

    /// Logical OR of a flag across the scope.
    pub fn allreduce_any(&mut self, scope: Scope, op: &str, x: bool) -> bool {
        self.allreduce_with(scope, op, vec![x as u8], None, |a, b| *a |= b)[0] != 0
    }

    fn scope_pos(&self, scope: Scope) -> usize {
        match scope {
            Scope::World => self.rank,
            Scope::Row => self.col(),
            Scope::Col => self.row(),
        }
    }

    fn scope_members(&self, scope: Scope) -> Vec<usize> {
        match scope {
            Scope::World => self.shared.world.members.clone(),
            Scope::Row => self.shared.rows[self.row()].members.clone(),
            Scope::Col => self.shared.cols[self.col()].members.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(rows: usize, cols: usize) -> Cluster {
        Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway())
    }

    #[test]
    fn run_returns_rank_ordered_results() {
        let c = small_cluster(2, 3);
        let out = c.run(|ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn alltoallv_world_routes_correctly() {
        let c = small_cluster(2, 2);
        let out = c.run(|ctx| {
            let n = ctx.nranks();
            // Rank r sends the value r*100+d to rank d.
            let send: Vec<Vec<u64>> = (0..n)
                .map(|d| vec![(ctx.rank() * 100 + d) as u64])
                .collect();
            ctx.alltoallv(Scope::World, "comm.alltoallv", send)
        });
        for (d, recv) in out.iter().enumerate() {
            for (s, msgs) in recv.iter().enumerate() {
                assert_eq!(msgs, &vec![(s * 100 + d) as u64]);
            }
        }
    }

    #[test]
    fn row_and_col_scopes_are_disjoint() {
        let c = small_cluster(2, 2);
        let out = c.run(|ctx| {
            let row_sum = ctx.allreduce_sum(Scope::Row, "rowsum", ctx.rank() as u64);
            let col_sum = ctx.allreduce_sum(Scope::Col, "colsum", ctx.rank() as u64);
            (row_sum, col_sum)
        });
        // Mesh: ranks 0,1 / 2,3. Rows sum to 1 and 5; cols to 2 and 4.
        assert_eq!(out, vec![(1, 2), (1, 4), (5, 2), (5, 4)]);
    }

    #[test]
    fn allgatherv_collects_in_member_order() {
        let c = small_cluster(1, 3);
        let out = c.run(|ctx| {
            ctx.allgatherv(
                Scope::World,
                "comm.allgather",
                vec![ctx.rank() as u32; ctx.rank() + 1],
            )
        });
        for recv in out {
            assert_eq!(recv, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
        }
    }

    #[test]
    fn allreduce_or_bitmap_unions_across_ranks() {
        let c = small_cluster(2, 2);
        let out = c.run(|ctx| {
            let mut bm = Bitmap::new(256);
            bm.set(ctx.rank() as u64 * 64);
            ctx.allreduce_or_bitmap(Scope::World, "orbits", &mut bm);
            bm.count_ones()
        });
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn clocks_advance_and_skew_is_recorded() {
        let c = small_cluster(1, 2);
        let out = c.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.charge("compute", SimTime::secs(1.0));
            }
            ctx.barrier(Scope::World);
            (
                ctx.now().as_secs(),
                ctx.accumulator().get("comm.imbalance").as_secs(),
            )
        });
        // Both ranks end at t=1.0; rank 1 waited 1.0s at the barrier.
        assert!((out[0].0 - 1.0).abs() < 1e-12);
        assert!((out[1].0 - 1.0).abs() < 1e-12);
        assert!((out[0].1 - 0.0).abs() < 1e-12);
        assert!((out[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn communication_costs_clock_time() {
        let c = small_cluster(2, 2);
        let out = c.run(|ctx| {
            let send: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 1 << 16]).collect();
            ctx.alltoallv(Scope::World, "comm.alltoallv", send);
            ctx.now().as_secs()
        });
        for t in out {
            assert!(t > 0.0, "alltoallv must cost simulated time");
        }
    }

    #[test]
    fn mismatched_collectives_panic_not_deadlock() {
        let c = small_cluster(1, 2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            c.run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.allreduce_sum(Scope::World, "op_a", 1);
                } else {
                    ctx.allreduce_max(Scope::World, "op_b", 1);
                }
            })
        }));
        assert!(r.is_err(), "collective mismatch must fail loudly");
    }

    #[test]
    fn rank_panic_tears_down_cluster() {
        let c = small_cluster(2, 2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            c.run(|ctx| {
                if ctx.rank() == 2 {
                    panic!("injected fault on rank 2");
                }
                // Other ranks head into a collective and must be released
                // by poisoning rather than hanging.
                ctx.barrier(Scope::World);
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn single_rank_cluster_works() {
        let c = small_cluster(1, 1);
        let out = c.run(|ctx| {
            let s = ctx.allreduce_sum(Scope::World, "s", 7);
            let g = ctx.allgatherv(Scope::World, "g", vec![1u8, 2]);
            let a = ctx.alltoallv(Scope::World, "a", vec![vec![9u64]]);
            (s, g, a)
        });
        assert_eq!(out[0].0, 7);
        assert_eq!(out[0].1, vec![vec![1, 2]]);
        assert_eq!(out[0].2, vec![vec![9]]);
    }

    #[test]
    fn comm_stats_record_per_scope_counts_and_bytes() {
        let c = small_cluster(2, 2);
        let out = c.run(|ctx| {
            ctx.allreduce_sum(Scope::Row, "rowsum", 1);
            ctx.allreduce_sum(Scope::Row, "rowsum", 2);
            ctx.allreduce_sum(Scope::Col, "colsum", 3);
            let send: Vec<Vec<u64>> = (0..4).map(|_| vec![0u64; 8]).collect();
            ctx.alltoallv(Scope::World, "comm.alltoallv.x", send);
            ctx.take_comm_stats()
        });
        for stats in &out {
            assert_eq!(
                stats.get(Scope::Row, "rowsum"),
                CommOpStats {
                    count: 2,
                    bytes: 16
                }
            );
            assert_eq!(
                stats.get(Scope::Col, "colsum"),
                CommOpStats { count: 1, bytes: 8 }
            );
            assert_eq!(
                stats.get(Scope::World, "comm.alltoallv.x"),
                CommOpStats {
                    count: 1,
                    bytes: 4 * 8 * 8
                }
            );
            assert_eq!(stats.total_with_prefix("row/").count, 2);
        }
        // diff isolates a phase; merge adds ranks.
        let mut merged = CommStats::new();
        for s in &out {
            merged.merge(s);
        }
        assert_eq!(merged.get(Scope::Row, "rowsum").count, 8);
        let d = merged.diff(&out[0]);
        assert_eq!(d.get(Scope::Row, "rowsum").count, 6);
        // JSON rendering is deterministic and keyed by scope/op.
        let js = out[0].to_json().render();
        assert!(
            js.contains("\"row/rowsum\":{\"count\":2,\"bytes\":16}"),
            "got {js}"
        );
    }

    #[test]
    fn run_panic_aggregates_every_failing_rank() {
        let c = small_cluster(2, 2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            c.run(|ctx| {
                if ctx.rank() == 1 || ctx.rank() == 3 {
                    panic!("boom on rank {}", ctx.rank());
                }
                ctx.barrier(Scope::World);
            })
        }));
        let payload = r.expect_err("failing ranks must panic the run");
        let msg = payload
            .downcast_ref::<String>()
            .expect("aggregate panic is a String")
            .clone();
        // Both root causes are named, not just the lowest rank.
        assert!(msg.contains("rank 1: panic: boom on rank 1"), "got: {msg}");
        assert!(msg.contains("rank 3: panic: boom on rank 3"), "got: {msg}");
    }

    #[test]
    fn run_fallible_types_failures_and_preserves_survivors() {
        let c = small_cluster(2, 2);
        let results = c.run_fallible(|ctx| {
            if ctx.rank() == 2 {
                panic!("dead rank");
            }
            ctx.barrier(Scope::World);
            ctx.rank()
        });
        assert_eq!(results.len(), 4);
        let failing: Vec<usize> = results
            .iter()
            .filter_map(|r| r.as_ref().err().map(|f| f.rank))
            .collect();
        assert!(failing.contains(&2));
        for r in &results {
            if let Err(f) = r {
                assert_eq!(
                    f.rank == 2,
                    f.is_root_cause(),
                    "only rank 2 is a root cause"
                );
                if f.rank == 2 {
                    assert!(
                        matches!(&f.kind, FailureKind::Panic { message } if message.contains("dead rank"))
                    );
                } else {
                    assert!(matches!(f.kind, FailureKind::BarrierPoisoned));
                }
            }
        }
    }

    #[test]
    fn spmd_violation_is_typed_and_names_scope_and_op() {
        let c = small_cluster(1, 2);
        let results = c.run_fallible(|ctx| {
            if ctx.rank() == 0 {
                ctx.allreduce_sum(Scope::World, "op_a", 1);
            } else {
                ctx.allreduce_max(Scope::World, "op_b", 1);
            }
        });
        let violation = results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .find_map(|f| match &f.kind {
                FailureKind::Violation(v) => Some(v.clone()),
                _ => None,
            })
            .expect("a tag mismatch must surface as a typed SpmdViolation");
        assert_eq!(violation.kind, SpmdViolationKind::TagMismatch);
        assert_eq!(violation.scope, Scope::World);
        assert!(violation.op == "op_a" || violation.op == "op_b");
    }

    #[test]
    fn injected_panic_fires_once_and_cluster_heals_for_retry() {
        use crate::fault::{FaultEvent, FaultKind};
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 1,
            op_index: 1,
            kind: FaultKind::Panic,
        }]);
        let c = Cluster::with_faults(MeshShape::new(2, 2), MachineConfig::new_sunway(), plan);
        let work = |ctx: &mut RankCtx| {
            ctx.barrier(Scope::World);
            ctx.allreduce_sum(Scope::World, "sum", ctx.rank() as u64)
        };
        let first = c.run_fallible(work);
        let inj = first
            .iter()
            .filter_map(|r| r.as_ref().err())
            .find(|f| matches!(f.kind, FailureKind::Injected { .. }))
            .expect("the injected panic must be typed");
        assert_eq!(inj.rank, 1);
        assert!(matches!(
            &inj.kind,
            FailureKind::Injected { op_index: 1, op } if op == "sum"
        ));
        // Transient-fault model: the retry on the same cluster succeeds.
        let second = c.run_fallible(work);
        for r in second {
            assert_eq!(r.expect("retry must succeed"), 6);
        }
        let log = c.fault_log();
        assert_eq!(log.len(), 1);
        assert_eq!((log[0].rank, log[0].op_index), (1, 1));
    }

    #[test]
    fn straggler_delay_charges_peer_imbalance_and_logs() {
        use crate::fault::{FaultEvent, FaultKind};
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 0,
            op_index: 0,
            kind: FaultKind::Straggler { secs: 2.0 },
        }]);
        let c = Cluster::with_faults(MeshShape::new(1, 2), MachineConfig::new_sunway(), plan);
        let out = c.run_fallible(|ctx| {
            ctx.barrier(Scope::World);
            (
                ctx.now().as_secs(),
                ctx.accumulator().get("comm.imbalance").as_secs(),
                ctx.accumulator().get("fault.straggler").as_secs(),
            )
        });
        let out: Vec<_> = out.into_iter().map(|r| r.expect("no failure")).collect();
        // The straggler carries the delay; the peer records it as skew.
        assert!((out[0].0 - 2.0).abs() < 1e-12);
        assert!((out[0].2 - 2.0).abs() < 1e-12);
        assert!((out[1].1 - 2.0).abs() < 1e-12);
        let log = c.fault_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].applied);
    }

    #[test]
    fn truncation_corruption_is_detected_and_healed_by_retransmit() {
        use crate::fault::{CorruptMode, FaultEvent, FaultKind};
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 1,
            op_index: 0,
            kind: FaultKind::Corrupt {
                mode: CorruptMode::Truncate,
            },
        }]);
        let c = Cluster::with_faults(MeshShape::new(1, 2), MachineConfig::new_sunway(), plan);
        let results = c.run_fallible(|ctx| {
            ctx.allreduce_with(Scope::World, "red", vec![1u64, 2, 3], None, |a, b| *a += b)
        });
        for r in results {
            assert_eq!(
                r.expect("truncation is healed at the exchange layer"),
                vec![2, 4, 6],
                "healed run computes the fault-free reduction"
            );
        }
        assert!(c.fault_log()[0].applied);
        let retrans = c.retransmit_log();
        assert_eq!(retrans.len(), 1);
        assert_eq!((retrans[0].from, retrans[0].attempt), (1, 1));
        assert_eq!(retrans[0].op_index, 0);
    }

    #[test]
    fn bitflip_corruption_is_detected_and_healed_with_time_charged() {
        use crate::fault::{CorruptMode, FaultEvent, FaultKind};
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 0,
            op_index: 0,
            kind: FaultKind::Corrupt {
                mode: CorruptMode::BitFlip,
            },
        }]);
        let c = Cluster::with_faults(MeshShape::new(1, 2), MachineConfig::new_sunway(), plan);
        let out = c.run_fallible(|ctx| {
            let sum = ctx.allreduce_sum(Scope::World, "sum", 8u64);
            (sum, ctx.accumulator().get("comm.retransmit").as_secs())
        });
        for r in out {
            let (sum, heal_secs) = r.expect("bitflip is healed, not silent");
            assert_eq!(sum, 8 + 8, "the pristine payload is what gets reduced");
            assert!(
                heal_secs > 0.0,
                "every member charges the retransmit heal time"
            );
        }
        assert_eq!(c.retransmit_log().len(), 1);
        assert_eq!(c.retransmit_log()[0].from, 0);
    }

    #[test]
    fn duplicate_corrupt_events_defeat_retransmits_then_heal() {
        use crate::fault::{CorruptMode, FaultEvent, FaultKind};
        // Two duplicates: the initial deposit and the first
        // retransmission are both corrupted; the second retransmission
        // goes through clean.
        let event = FaultEvent {
            rank: 1,
            op_index: 0,
            kind: FaultKind::Corrupt {
                mode: CorruptMode::BitFlip,
            },
        };
        let plan = FaultPlan::from_events(vec![event, event]);
        let c = Cluster::with_faults(MeshShape::new(1, 2), MachineConfig::new_sunway(), plan);
        let out = c.run_fallible(|ctx| ctx.allreduce_sum(Scope::World, "sum", 4u64));
        for r in out {
            assert_eq!(r.expect("two rounds heal within budget"), 8);
        }
        let retrans = c.retransmit_log();
        assert_eq!(retrans.len(), 2, "both rounds are logged");
        assert_eq!(
            retrans.iter().map(|r| r.attempt).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(c.fault_log().len(), 2, "both duplicates fired");
    }

    #[test]
    fn persistent_corruption_exhausts_budget_and_escalates_typed() {
        use crate::fault::{CorruptMode, FaultEvent, FaultKind};
        // 1 initial + MAX_RETRANSMITS re-corruptions exhaust the
        // budget; the 5th duplicate stays for the retry run.
        let event = FaultEvent {
            rank: 0,
            op_index: 0,
            kind: FaultKind::Corrupt {
                mode: CorruptMode::BitFlip,
            },
        };
        let plan = FaultPlan::from_events(vec![event; 5]);
        let c = Cluster::with_faults(MeshShape::new(1, 2), MachineConfig::new_sunway(), plan);
        let results = c.run_fallible(|ctx| ctx.allreduce_sum(Scope::World, "sum", 4u64));
        for r in results {
            let failure = r.expect_err("persistent corruption must escalate");
            match &failure.kind {
                FailureKind::CorruptPayload {
                    from,
                    op_index,
                    attempts,
                    ..
                } => {
                    assert_eq!(*from, 0, "the corrupt sender is blamed");
                    assert_eq!(*op_index, 0);
                    assert_eq!(*attempts, MAX_RETRANSMITS);
                }
                other => panic!("expected CorruptPayload, got {other:?}"),
            }
            assert!(failure.is_root_cause());
        }
        assert_eq!(
            c.retransmit_log().len(),
            MAX_RETRANSMITS as usize,
            "every burned retransmit round is logged"
        );
        // The healed cluster retries; the one leftover duplicate is a
        // transient corruption absorbed by a single retransmission.
        let retry = c.run_fallible(|ctx| ctx.allreduce_sum(Scope::World, "sum", 4u64));
        for r in retry {
            assert_eq!(r.expect("retry heals the leftover event"), 8);
        }
        assert_eq!(c.retransmit_log().len(), MAX_RETRANSMITS as usize + 1);
    }

    #[test]
    fn reduce_scatter_and_allgather_categories_charged() {
        let c = small_cluster(1, 4);
        let out = c.run(|ctx| {
            ctx.allreduce_with(Scope::World, "hub", vec![0u64; 1024], None, |a, b| *a |= b);
            let acc = ctx.accumulator();
            (
                acc.total_with_prefix("comm.reduce_scatter").as_secs(),
                acc.total_with_prefix("comm.allgather").as_secs(),
            )
        });
        for (rs, ag) in out {
            assert!(rs > 0.0 && (rs - ag).abs() < 1e-15);
        }
    }
}
